"""Experiment X9 — concept clustering ("data clustering and mining").

Clusters a mixed concept set from the corpus — persons, organizations
and publications drawn from three ontologies — with agglomerative
clustering over an SST similarity matrix, and checks that the flat
clusters recover the domain grouping.  Also writes the similarity
heatmap (the future-work "more advanced result visualization").
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.cluster import ConceptClusterer
from repro.core.registry import Measure

PERSON_CONCEPTS = [
    ("univ-bench_owl", "Professor"),
    ("univ-bench_owl", "Student"),
    ("base1_0_daml", "Professor"),
]
ORGANIZATION_CONCEPTS = [
    ("univ-bench_owl", "University"),
    ("univ-bench_owl", "Department"),
]
PUBLICATION_CONCEPTS = [
    ("univ-bench_owl", "Article"),
    ("univ-bench_owl", "Book"),
]

ALL_CONCEPTS = (PERSON_CONCEPTS + ORGANIZATION_CONCEPTS
                + PUBLICATION_CONCEPTS)


def test_clustering_recovers_domains(benchmark, corpus_sst, results_dir):
    clusterer = ConceptClusterer(corpus_sst, Measure.TFIDF)
    groups = benchmark(clusterer.cluster, ALL_CONCEPTS, 0.20)

    dendrogram = clusterer.dendrogram(ALL_CONCEPTS)
    record(results_dir, "x9_clustering.txt", dendrogram)

    def group_of(concept):
        for group in groups:
            if concept in group:
                return tuple(sorted(group))
        raise AssertionError(f"{concept} missing from clusters")

    # Same-domain concepts land together; cross-domain ones split.
    assert group_of(("univ-bench_owl", "Professor")) == group_of(
        ("base1_0_daml", "Professor"))
    assert group_of(("univ-bench_owl", "Article")) == group_of(
        ("univ-bench_owl", "Book"))
    assert group_of(("univ-bench_owl", "Professor")) != group_of(
        ("univ-bench_owl", "Article"))
    assert group_of(("univ-bench_owl", "University")) != group_of(
        ("univ-bench_owl", "Book"))


def test_similarity_heatmap(benchmark, corpus_sst, results_dir):
    chart = benchmark(corpus_sst.get_matrix_plot, ALL_CONCEPTS,
                      Measure.TFIDF)
    paths = chart.save(results_dir, stem="x9_heatmap")
    assert all(path.exists() for path in paths)
    # Diagonal dominance: each concept is most similar to itself.
    for row_index, row in enumerate(chart.matrix):
        assert row[row_index] == max(row)
