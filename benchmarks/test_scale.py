"""Experiment S1 — million-concept scale: warm-start vs recompile.

Walks a ladder of WordNet-shaped corpora (1k / 10k / 100k synsets) and
times, per size:

* the **cold** leg — compiling the graph index from the parent map and
  persisting the ``.sstidx`` artifact (what the first ``sst`` run over
  a new corpus pays), split into its compile and save components;
* the **warm** leg — memory-loading the persisted artifact through
  :func:`repro.soqa.indexstore.load_index`'s lazy mmap-backed columns
  (what every later run pays instead);
* the one-time ``sst import`` cost of streaming the corpus into a
  sqlite ontology store, and the resulting file sizes;
* the process peak RSS high-water mark after the size finished
  (``ru_maxrss`` is monotonic, so the ladder runs smallest first and
  each row reports the high-water *so far*).

Hard gates, **both modes**:

* the warm-loaded index must answer sampled queries bit-identically to
  the freshly compiled one, and
* at the ``GATE_SIZE`` rung (10k — present in quick and full ladders)
  the warm leg must run at least ``SPEEDUP_TARGET`` (5x) faster than
  the cold leg.

Results land in ``BENCH_scale.json`` (schema ``sst/bench-scale/v1``).
Two modes:

* quick (``SST_BENCH_QUICK=1``, the CI mode): 1k + 10k rungs only;
  records to ``benchmarks/results/`` and never touches the committed
  repo-root artifact.
* full (default, nightly): adds the 100k rung — the ROADMAP's
  WordNet-scale acceptance size — and refreshes the repo-root
  ``BENCH_scale.json``.
"""

from __future__ import annotations

import json
import os
import resource
import time

from benchmarks.conftest import record, record_root
from repro.ontologies.generator import generate_wordnet_taxonomy
from repro.soqa.indexstore import IndexStore
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata
from repro.soqa.sqlstore import SqliteOntologyStore

#: Bump when the BENCH_scale.json layout changes.
SCHEMA = "sst/bench-scale/v1"

QUICK = os.environ.get("SST_BENCH_QUICK", "").strip() not in ("", "0")
SIZES = (1_000, 10_000) if QUICK else (1_000, 10_000, 100_000)
WARM_REPEATS = 3

#: The acceptance gate: at this rung (present in both modes) the warm
#: artifact load must beat the cold compile+persist leg by this factor.
GATE_SIZE = 10_000
SPEEDUP_TARGET = 5.0

#: Query-parity sample: this many nodes, all pairs.
PARITY_NODES = 12


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _materialize(parents: dict[str, list[str]], name: str) -> Ontology:
    concepts = [Concept(name=node, superconcept_names=list(node_parents))
                for node, node_parents in parents.items()]
    return Ontology(OntologyMetadata(name=name, language="OWL"), concepts)


def _assert_parity(compiled, loaded, parents) -> None:
    nodes = sorted(parents)[:PARITY_NODES]
    assert loaded.nodes() == compiled.nodes()
    assert loaded.max_depth() == compiled.max_depth()
    for first in nodes:
        assert loaded.depth(first) == compiled.depth(first)
        assert loaded.descendant_count(first) \
            == compiled.descendant_count(first)
        assert loaded.ancestors_with_distance(first) \
            == compiled.ancestors_with_distance(first)
        for second in nodes:
            assert loaded.mrca(first, second) == compiled.mrca(first,
                                                               second)


def _bench_size(size: int, tmp_path) -> dict:
    parents = generate_wordnet_taxonomy(size, seed=0)
    fingerprint = _materialize(parents, f"wn{size}").content_digest()
    directory = tmp_path / f"idx-{size}"
    store = IndexStore(directory)

    # Cold: compile from the parent map and persist the artifact.
    started = time.perf_counter()
    compiled, provenance = store.load_or_compile(parents, fingerprint)
    cold_seconds = time.perf_counter() - started
    assert provenance["source"] == "compiled"
    compile_seconds = provenance["seconds"]
    artifact_bytes = store.artifact_path(fingerprint).stat().st_size

    # Warm: best-of-N artifact loads through fresh IndexStore instances.
    warm_seconds = None
    loaded = None
    for _ in range(WARM_REPEATS):
        started = time.perf_counter()
        loaded, provenance = IndexStore(directory).load_or_compile(
            parents, fingerprint)
        elapsed = time.perf_counter() - started
        assert provenance["source"] == "artifact"
        warm_seconds = elapsed if warm_seconds is None \
            else min(warm_seconds, elapsed)
    _assert_parity(compiled, loaded, parents)

    # One-time sqlite import of the same corpus.
    db_path = tmp_path / f"wn{size}.sstdb"
    started = time.perf_counter()
    sql_store = SqliteOntologyStore.create(db_path)
    summary = sql_store.import_ontology(_materialize(parents, f"wn{size}"))
    import_seconds = time.perf_counter() - started
    assert summary["concepts"] == size
    sql_store.close()

    return {
        "nodes": size,
        "cold_seconds": round(cold_seconds, 6),
        "compile_seconds": round(compile_seconds, 6),
        "save_seconds": round(cold_seconds - compile_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds else None,
        "artifact_bytes": artifact_bytes,
        "import_seconds": round(import_seconds, 6),
        "store_bytes": db_path.stat().st_size,
        "peak_rss_kb_after": _peak_rss_kb(),
    }


def test_warm_start_scale_ladder(results_dir, tmp_path):
    ladder = {str(size): _bench_size(size, tmp_path) for size in SIZES}

    gate_row = ladder[str(GATE_SIZE)]
    payload = {
        "schema": SCHEMA,
        "quick": QUICK,
        "sizes": list(SIZES),
        "warm_repeats": WARM_REPEATS,
        "gate": {"size": GATE_SIZE, "target": SPEEDUP_TARGET,
                 "enforced": True,
                 "measured_speedup": gate_row["speedup"]},
        "ladder": ladder,
        "identical": True,
    }
    text = json.dumps(payload, indent=2) + "\n"
    record(results_dir, "BENCH_scale.json", text)
    if not QUICK:
        # Only the full ladder — the one carrying the 100k WordNet-scale
        # rung — may refresh the committed repo-root artifact.
        record_root("BENCH_scale.json", text)

    # Hard gate, both modes: warm start must clear the absolute floor.
    assert gate_row["speedup"] is not None \
        and gate_row["speedup"] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x warm-start speedup at "
            f"{GATE_SIZE} nodes, measured {gate_row['speedup']}x")
