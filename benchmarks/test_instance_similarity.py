"""Experiment X8 — instance-level similarity services.

The paper's resource model covers individuals as well as concepts
(section 2.2).  Times the three instance views (feature, text, concept)
on the corpus's individuals and records the k-most-similar-instances
table for one professor individual.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.core.instances import InstanceSimilarityService
from repro.viz.ascii import render_table


@pytest.fixture(scope="module")
def service(corpus_sst) -> InstanceSimilarityService:
    return InstanceSimilarityService(corpus_sst)


@pytest.mark.parametrize("view", ["features", "text", "concepts"])
def test_instance_pairwise(benchmark, service, view):
    value = benchmark(service.get_similarity, "Professor0",
                      "univ-bench_owl", "jhendler", "base1_0_daml", view)
    assert 0.0 <= value <= 1.0


def test_instance_k_most_similar(benchmark, service, results_dir):
    entries = benchmark(service.get_most_similar_instances, "Professor0",
                        "univ-bench_owl", 5, "text")
    rows = [[str(index + 1), entry.instance_name, entry.ontology_name,
             entry.concept_name, f"{entry.similarity:.4f}"]
            for index, entry in enumerate(entries)]
    record(results_dir, "x8_instance_similarity.txt", render_table(
        ["rank", "instance", "ontology", "concept", "similarity"], rows))
    assert len(entries) == 5
    values = [entry.similarity for entry in entries]
    assert values == sorted(values, reverse=True)
    # The other professor individuals top the list for a professor query.
    assert entries[0].concept_name in ("AssistantProfessor",
                                       "FullProfessor", "Professor")
