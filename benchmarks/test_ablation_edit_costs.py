"""Experiment X4 — ablation: the edit cost function of Eq. 4.

The paper argues the cost function should satisfy
``c(delete) + c(insert) >= c(replace)``.  This bench contrasts the
weighted default (1, 1, 1.5) with uniform unit costs on mapping-M2
sequences from the corpus.  Measured effect: the replacement discount
lowers transformation costs across the board, so the weighted function
reports uniformly higher similarities (related and unrelated alike)
while both cost functions separate related from unrelated pairs by a
wide margin; the choice shifts the similarity scale, not the ranking.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.core.results import QualifiedConcept
from repro.simpack.sequence import EditCosts, sequence_similarity
from repro.viz.ascii import render_table

RELATED_PAIRS = [
    (QualifiedConcept("base1_0_daml", "Professor"),
     QualifiedConcept("base1_0_daml", "AssistantProfessor")),
    (QualifiedConcept("univ-bench_owl", "Professor"),
     QualifiedConcept("univ-bench_owl", "Lecturer")),
    (QualifiedConcept("SUMO_owl_txt", "Dog"),
     QualifiedConcept("SUMO_owl_txt", "Wolf")),
]

UNRELATED_PAIRS = [
    (QualifiedConcept("base1_0_daml", "Professor"),
     QualifiedConcept("SUMO_owl_txt", "Hammer")),
    (QualifiedConcept("univ-bench_owl", "Professor"),
     QualifiedConcept("SUMO_owl_txt", "Raining")),
    (QualifiedConcept("COURSES", "EXAM"),
     QualifiedConcept("SUMO_owl_txt", "Whale")),
]


def contrast(sst, costs: EditCosts) -> tuple[float, float, float]:
    """(mean related, mean unrelated, contrast ratio) under ``costs``."""
    def mean(pairs):
        total = 0.0
        for first, second in pairs:
            total += sequence_similarity(
                sst.wrapper.string_sequence(first),
                sst.wrapper.string_sequence(second), costs)
        return total / len(pairs)

    related = mean(RELATED_PAIRS)
    unrelated = mean(UNRELATED_PAIRS)
    ratio = related / unrelated if unrelated else float("inf")
    return related, unrelated, ratio


def test_ablation_edit_costs(benchmark, corpus_sst, results_dir):
    def compute():
        return (contrast(corpus_sst, EditCosts()),
                contrast(corpus_sst, EditCosts.uniform()))

    weighted, uniform = benchmark(compute)

    record(results_dir, "x4_edit_cost_ablation.txt", render_table(
        ["cost function", "mean related", "mean unrelated", "contrast"],
        [["weighted (1, 1, 1.5)", f"{weighted[0]:.4f}",
          f"{weighted[1]:.4f}", f"{weighted[2]:.2f}x"],
         ["uniform (1, 1, 1)", f"{uniform[0]:.4f}",
          f"{uniform[1]:.4f}", f"{uniform[2]:.2f}x"]]))

    # Both cost functions separate related from unrelated pairs widely.
    assert weighted[0] > 2 * weighted[1]
    assert uniform[0] > 2 * uniform[1]
    # The replacement discount lifts the similarity scale: weighted
    # scores dominate uniform scores for related and unrelated pairs.
    assert weighted[0] >= uniform[0]
    assert weighted[1] >= uniform[1]
