"""Experiment X3 — ablation: IC from subclass counts vs instance corpus.

The paper (section 2.2) proposes estimating concept probabilities from
subclass counts when the instance space is sparse (the Semantic Web
case) and from instance frequencies when "many instances are available".
This bench computes Lin under both estimators on the corpus — whose
ontologies carry only a handful of instances, exactly the sparse regime
the paper describes — and shows why subclass counting is the default:
the instance estimator collapses most of the taxonomy onto near-uniform
smoothed probabilities.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.simpack.infocontent import lin_similarity
from repro.viz.ascii import render_table

PAIRS = [
    (("base1_0_daml", "Professor"), ("base1_0_daml",
                                     "AssistantProfessor")),
    (("base1_0_daml", "Professor"), ("base1_0_daml", "Student")),
    (("univ-bench_owl", "Professor"), ("univ-bench_owl", "Lecturer")),
    (("SUMO_owl_txt", "Human"), ("SUMO_owl_txt", "Mammal")),
    (("SUMO_owl_txt", "Dog"), ("SUMO_owl_txt", "Wolf")),
]


def compute(sst) -> list[tuple[float, float]]:
    subclass_ic = sst.wrapper.information_content("subclasses")
    instance_ic = sst.wrapper.information_content("instances")
    rows = []
    for (first_onto, first), (second_onto, second) in PAIRS:
        first_node = f"{first_onto}:{first}"
        second_node = f"{second_onto}:{second}"
        rows.append((
            lin_similarity(subclass_ic, first_node, second_node),
            lin_similarity(instance_ic, first_node, second_node),
        ))
    return rows


def test_ablation_ic_source(benchmark, corpus_sst, results_dir):
    rows = benchmark(compute, corpus_sst)

    text_rows = [[f"{first[0]}:{first[1]} vs {second[0]}:{second[1]}",
                  f"{subclass_value:.4f}", f"{instance_value:.4f}"]
                 for (first, second), (subclass_value, instance_value)
                 in zip(PAIRS, rows)]
    record(results_dir, "x3_ic_source_ablation.txt", render_table(
        ["pair", "Lin (subclass IC)", "Lin (instance IC)"], text_rows))

    subclass_values = [row[0] for row in rows]
    instance_values = [row[1] for row in rows]
    # Both estimators keep related pairs similar...
    assert all(value > 0.0 for value in subclass_values)
    assert all(value > 0.0 for value in instance_values)
    # ...but the sparse instance corpus flattens the spread: the
    # subclass estimator discriminates related pairs far better.
    subclass_spread = max(subclass_values) - min(subclass_values)
    instance_spread = max(instance_values) - min(instance_values)
    assert subclass_spread > instance_spread
