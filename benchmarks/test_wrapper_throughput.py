"""Experiment X7 — SOQA wrapper parse throughput.

Times each language wrapper on its bundled corpus file (plus generated
SUMO at full size), measuring the cost of SOQA's language independence:
loading any of the five ontologies is a parse through the respective
wrapper into the shared meta model.
"""

from __future__ import annotations

import pytest

from repro.ontologies.generator import generate_sumo_owl
from repro.ontologies.library import data_text
from repro.soqa.wrappers import (
    DAMLWrapper,
    OWLWrapper,
    PowerLoomWrapper,
    WordNetWrapper,
)

CASES = {
    "univ-bench (OWL, 43)": (OWLWrapper, "univ-bench.owl"),
    "course (PowerLoom, 22)": (PowerLoomWrapper, "course.ploom"),
    "univ1.0 (DAML, 35)": (DAMLWrapper, "univ1.0.daml"),
    "swrc (OWL, 54)": (OWLWrapper, "swrc.owl"),
    "wordnet (WN, 40)": (WordNetWrapper, "wordnet-nouns.wn"),
}


@pytest.mark.parametrize("label", list(CASES))
def test_wrapper_parse(benchmark, label):
    wrapper_class, filename = CASES[label]
    text = data_text(filename)
    wrapper = wrapper_class()
    ontology = benchmark(wrapper.parse, text, "bench")
    assert len(ontology) > 0


def test_wrapper_parse_sumo_789(benchmark):
    text = generate_sumo_owl(789)
    wrapper = OWLWrapper()
    ontology = benchmark(wrapper.parse, text, "SUMO")
    assert len(ontology) == 789


def test_turtle_parse_equivalent_ontology(benchmark):
    """Turtle serialization of a univ-bench-sized class list."""
    from repro.ontologies.generator import sumo_class_list
    from repro.soqa.wrappers.owl import OWLTurtleWrapper

    lines = ["@prefix owl: <http://www.w3.org/2002/07/owl#> .",
             "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .",
             "@prefix : <http://example.org/sumo#> ."]
    for name, parent, gloss in sumo_class_list(200):
        lines.append(f":{name} a owl:Class ;")
        if parent is not None:
            parents = (parent,) if isinstance(parent, str) else parent
            for parent_name in parents:
                lines.append(f"    rdfs:subClassOf :{parent_name} ;")
        escaped = gloss.replace('"', "'")
        lines.append(f'    rdfs:comment "{escaped}" .')
    text = "\n".join(lines)
    ontology = benchmark(OWLTurtleWrapper().parse, text, "sumo-ttl")
    assert len(ontology) == 200
