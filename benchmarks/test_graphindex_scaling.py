"""Experiment G1 — compiled graph index vs naive BFS + L2 warm start.

Times the hot taxonomy queries behind the distance-based and
information-theoretic measures (``mrca``, ``shortest_path_length`` under
both policies, ``descendant_count``, ``max_depth``) on three 10k-node
synthetic shapes, naive (``index_threshold=-1``) versus the
:class:`~repro.soqa.graphindex.CompiledTaxonomy` path
(``index_threshold=0``), and records the trajectory into
``BENCH_graphindex.json`` (also mirrored at the repo root for the
benchmark tracker).  Every query's results are compared element by
element — **the compiled index must be bit-identical to naive BFS** —
and a similarity matrix computed under both thresholds must match
exactly.

The second test exercises the persistent tier end to end: two ``sst
matrix`` subprocesses share one ``SST_CACHE_DIR`` and the warm run must
report a >90% disk hit rate with byte-identical stdout.

Two modes:

* full (default): 10k-node taxonomies, 400 query pairs; asserts the
  >= 5x speedup for MRCA/via-ancestor path queries on the
  multiple-inheritance DAG shape and that the warm CLI run beats cold.
* quick (``SST_BENCH_QUICK=1``, the CI smoke mode): 1.5k nodes, 100
  pairs; equality and the warm hit rate are still gated, timings are
  recorded but no speedup is demanded.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time

from benchmarks.conftest import REPO_ROOT, record, record_root
from repro.core.registry import Measure
from repro.ontologies.generator import (generate_random_dag,
                                        generate_sumo_owl,
                                        generate_synthetic_taxonomy,
                                        generate_wordnet_taxonomy)
from repro.soqa.graph import Taxonomy
from repro.soqa.graphindex import INDEX_THRESHOLD_ENV

#: Bump when the BENCH_graphindex.json layout changes.
SCHEMA = "sst/bench-graphindex/v1"

QUICK = os.environ.get("SST_BENCH_QUICK", "").strip() not in ("", "0")
SIZE = 1_500 if QUICK else 10_000
PAIRS = 100 if QUICK else 400
ANY_PAIRS = 20 if QUICK else 60
REPEATS = 3

#: The acceptance gate: MRCA/path queries on the >= 10k-node synthetic
#: DAG must run at least this much faster through the compiled index.
SPEEDUP_TARGET = 5.0
GATED_SHAPE = "synthetic-dag"
GATED_QUERIES = ("mrca", "path_via_ancestor")

#: Taxonomy shapes; the multi-parent DAG is the gated one — its large
#: ancestor sets are exactly what the ancestor bitsets precompute away.
SHAPES = (
    (GATED_SHAPE, lambda: generate_random_dag(SIZE, seed=1, max_parents=3)),
    ("balanced-tree", lambda: generate_synthetic_taxonomy(SIZE)),
    ("wordnet", lambda: generate_wordnet_taxonomy(SIZE, seed=1)),
)

MATRIX_ONTOLOGY_SIZE = 110  # minimum for the SUMO upper structure
MATRIX_LIMIT = 8 if QUICK else 12
MATRIX_MEASURE = str(int(Measure.TREE_EDIT))

_HIT_LINE = re.compile(r"disk cache: (\d+)/(\d+) hits \(([\d.]+)%\)")


def _sample_pairs(parents: dict) -> list[tuple[str, str]]:
    import random

    rng = random.Random(7)
    nodes = list(parents)
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(PAIRS)]


def _queries(parents: dict) -> dict:
    pairs = _sample_pairs(parents)
    nodes = list(parents)
    return {
        "mrca": lambda tax: [tax.mrca(a, b) for a, b in pairs],
        "path_via_ancestor": lambda tax: [
            tax.shortest_path_length(a, b) for a, b in pairs],
        "path_any": lambda tax: [
            tax.shortest_path_length(a, b, "any")
            for a, b in pairs[:ANY_PAIRS]],
        "descendant_count": lambda tax: [
            tax.descendant_count(node) for node in nodes],
        "max_depth": lambda tax: [tax.max_depth() for _ in range(200)],
    }


def _bench_shape(name: str, parents: dict) -> dict:
    compiled = Taxonomy(parents, index_threshold=0)
    start = time.perf_counter()
    compiled.compile()
    compile_seconds = time.perf_counter() - start

    queries = _queries(parents)
    shape_report: dict = {"nodes": len(parents),
                          "compile_seconds": round(compile_seconds, 6),
                          "queries": {}}
    for query_name, query in queries.items():
        naive_best = compiled_best = None
        naive_result = compiled_result = None
        for _ in range(REPEATS):
            # A fresh naive instance per repeat: every repeat pays the
            # BFS the compiled index precomputed once.
            naive = Taxonomy(parents, index_threshold=-1)
            start = time.perf_counter()
            naive_result = query(naive)
            elapsed = time.perf_counter() - start
            naive_best = elapsed if naive_best is None else min(
                naive_best, elapsed)
            start = time.perf_counter()
            compiled_result = query(compiled)
            elapsed = time.perf_counter() - start
            compiled_best = elapsed if compiled_best is None else min(
                compiled_best, elapsed)
        # Hard gate, both modes: the compiled index must return exactly
        # what naive BFS returns, element by element.
        assert compiled_result == naive_result, (
            f"{name}/{query_name}: compiled index diverged from naive BFS")
        shape_report["queries"][query_name] = {
            "naive_seconds": round(naive_best, 6),
            "compiled_seconds": round(compiled_best, 6),
            "speedup": round(naive_best / compiled_best, 2)
            if compiled_best else None,
        }
    shape_report["identical"] = True
    return shape_report


def _matrix_is_bit_identical() -> bool:
    """A similarity matrix must not change when the index kicks in."""
    from repro.core.facade import SOQASimPackToolkit
    from repro.soqa.api import SOQA

    matrices = []
    for threshold in ("-1", "0"):
        os.environ[INDEX_THRESHOLD_ENV] = threshold
        try:
            soqa = SOQA()
            soqa.load_text(generate_sumo_owl(MATRIX_ONTOLOGY_SIZE),
                           "sumo", "OWL")
            sst = SOQASimPackToolkit(soqa, cache=False)
            concepts = [("sumo", concept.name)
                        for concept in soqa.ontology("sumo")][:MATRIX_LIMIT]
            matrices.append(sst.get_similarity_matrix(
                concepts, Measure.CONCEPTUAL_SIMILARITY))
        finally:
            os.environ.pop(INDEX_THRESHOLD_ENV, None)
    return matrices[0] == matrices[1]


def test_graphindex_speedups(results_dir, monkeypatch):
    # The shapes must exceed the compile threshold legitimately; pin the
    # default so an ambient override cannot skew the naive baseline.
    monkeypatch.delenv(INDEX_THRESHOLD_ENV, raising=False)

    shapes: dict = {}
    for name, build in SHAPES:
        shapes[name] = _bench_shape(name, build())

    matrix_identical = _matrix_is_bit_identical()
    assert matrix_identical, (
        "similarity matrix diverged between naive and compiled index")

    payload = {
        "schema": SCHEMA,
        "quick": QUICK,
        "size": SIZE,
        "pairs": PAIRS,
        "repeats": REPEATS,
        "gate": {"shape": GATED_SHAPE, "queries": list(GATED_QUERIES),
                 "target": SPEEDUP_TARGET, "enforced": not QUICK},
        "shapes": shapes,
        "matrix_identical": matrix_identical,
    }
    text = json.dumps(payload, indent=2) + "\n"
    record(results_dir, "BENCH_graphindex.json", text)
    if not QUICK:
        # Only a full-mode run — the one whose speedup gate below is
        # enforced — may refresh the committed root artifact, so the
        # tree never carries a baseline stamped "enforced": false.
        record_root("BENCH_graphindex.json", text)

    if not QUICK:
        for query_name in GATED_QUERIES:
            speedup = shapes[GATED_SHAPE]["queries"][query_name]["speedup"]
            assert speedup >= SPEEDUP_TARGET, (
                f"expected >= {SPEEDUP_TARGET}x compiled speedup for "
                f"{GATED_SHAPE}/{query_name}, measured {speedup}x")


def _run_cli_matrix(owl_path, env) -> tuple[subprocess.CompletedProcess,
                                            float]:
    argv = [sys.executable, "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "--ontology-file", str(owl_path),
            "matrix", "--from-ontology", "sumo",
            "--limit", str(MATRIX_LIMIT), "-m", MATRIX_MEASURE]
    start = time.perf_counter()
    process = subprocess.run(argv, capture_output=True, text=True, env=env)
    return process, time.perf_counter() - start


def test_disk_cache_warm_start(tmp_path, results_dir):
    owl_path = tmp_path / "sumo.owl"
    owl_path.write_text(generate_sumo_owl(MATRIX_ONTOLOGY_SIZE),
                        encoding="utf-8")
    env = dict(os.environ)
    env.pop("SST_NO_CACHE", None)
    env["SST_CACHE_DIR"] = str(tmp_path / "cache")
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))

    cold, cold_seconds = _run_cli_matrix(owl_path, env)
    assert cold.returncode == 0, cold.stderr
    warm, warm_seconds = _run_cli_matrix(owl_path, env)
    assert warm.returncode == 0, warm.stderr

    cold_hits = _HIT_LINE.search(cold.stderr)
    warm_hits = _HIT_LINE.search(warm.stderr)
    assert cold_hits and warm_hits, (
        f"missing disk-cache report; cold={cold.stderr!r} "
        f"warm={warm.stderr!r}")
    warm_rate = float(warm_hits.group(3))
    # Hard gates, both modes: the second run must be served from disk
    # and print byte-identical results.
    assert warm_rate > 90.0, f"warm hit rate only {warm_rate}%"
    assert warm.stdout == cold.stdout

    report = {
        "ontology_size": MATRIX_ONTOLOGY_SIZE,
        "matrix_limit": MATRIX_LIMIT,
        "measure": int(MATRIX_MEASURE),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_hit_rate": float(cold_hits.group(3)),
        "warm_hit_rate": warm_rate,
        "warm_faster": warm_seconds < cold_seconds,
    }

    # Fold the warm-start numbers into this run's shared artifact (or
    # the committed root copy, or a minimal payload, when the speedup
    # test was deselected).  Only full mode touches the root copy —
    # quick mode must not overwrite the enforced full-mode baseline.
    run_artifact = results_dir / "BENCH_graphindex.json"
    root_artifact = REPO_ROOT / "BENCH_graphindex.json"
    if run_artifact.exists():
        payload = json.loads(run_artifact.read_text(encoding="utf-8"))
    elif root_artifact.exists():
        payload = json.loads(root_artifact.read_text(encoding="utf-8"))
    else:
        payload = {"schema": SCHEMA, "quick": QUICK}
    payload["disk_cache"] = report
    text = json.dumps(payload, indent=2) + "\n"
    record(results_dir, "BENCH_graphindex.json", text)
    if not QUICK:
        record_root("BENCH_graphindex.json", text)

    if not QUICK:
        assert warm_seconds < cold_seconds, (
            f"warm run ({warm_seconds:.3f}s) not faster than cold "
            f"({cold_seconds:.3f}s)")
