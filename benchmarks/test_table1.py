"""Experiment T1 — regenerate Table 1 of the paper.

Comparisons of ``base1_0_daml:Professor`` with concepts from the other
ontologies under the six measures (Conceptual Similarity, Levenshtein,
Lin, Resnik, Shortest Path, TFIDF).  Absolute values differ from the
paper (different IC corpus, re-authored ontology text); the asserted
*shape* — self-similarity maximal, cross-ontology Lin/Resnik zero,
university concepts above SUMO biology, Human above Mammal — matches.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.core.registry import Measure, TABLE1_MEASURES
from repro.viz.ascii import render_table

ANCHOR = ("Professor", "base1_0_daml")

ROWS = (
    ("Professor", "base1_0_daml"),
    ("AssistantProfessor", "univ-bench_owl"),
    ("EMPLOYEE", "COURSES"),
    ("Human", "SUMO_owl_txt"),
    ("Mammal", "SUMO_owl_txt"),
)


def compute_table(sst) -> list[list[float]]:
    return [[sst.get_similarity(*ANCHOR, concept, ontology, measure)
             for measure in TABLE1_MEASURES]
            for concept, ontology in ROWS]


def test_table1(benchmark, corpus_sst, results_dir):
    values = benchmark(compute_table, corpus_sst)

    headers = ["Concept"] + [corpus_sst.runner(measure).name
                             for measure in TABLE1_MEASURES]
    text_rows = [[f"{ontology}:{concept}"]
                 + [f"{value:.4f}" for value in row]
                 for (concept, ontology), row in zip(ROWS, values)]
    record(results_dir, "table1.txt", render_table(headers, text_rows))

    by_row = dict(zip(ROWS, values))
    by_measure = dict(zip(TABLE1_MEASURES, by_row[ROWS[0]]))

    # Diagonal: every normalized measure reports 1.0; Resnik reports the
    # raw IC of Professor (the paper shows 12.7 bits; ours is smaller
    # because the probability corpus is the 943-concept tree).
    for measure, value in by_measure.items():
        if corpus_sst.runner(measure).is_normalized():
            assert value == 1.0
    assert by_measure[Measure.RESNIK] > 1.0

    for concept_row in ROWS[1:]:
        row = dict(zip(TABLE1_MEASURES, by_row[concept_row]))
        # Lin and Resnik collapse to zero across ontologies (the common
        # subsumer is Super Thing, whose IC is 0) — as in the paper.
        assert row[Measure.LIN] == 0.0
        assert row[Measure.RESNIK] == 0.0
        # All other scores are strictly below the diagonal.
        for measure in (Measure.CONCEPTUAL_SIMILARITY, Measure.LEVENSHTEIN,
                        Measure.SHORTEST_PATH, Measure.TFIDF):
            assert 0.0 <= row[measure] < by_measure[measure]

    # Orderings the paper's numbers imply.
    def value(row_key, measure):
        return dict(zip(TABLE1_MEASURES, by_row[row_key]))[measure]

    for measure in (Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH,
                    Measure.LEVENSHTEIN, Measure.TFIDF):
        assert value(ROWS[1], measure) > value(ROWS[4], measure)  # AP>Mammal
        assert value(ROWS[3], measure) > value(ROWS[4], measure)  # Hum>Mam
