"""Experiment SV2 — service throughput and overload posture.

Drives a live in-process ``sst serve`` two ways and records the
trajectory into ``BENCH_serve.json`` (schema ``sst/bench-serve/v1``):

* **keep-alive vs close throughput** — the same request stream over
  one persistent connection versus a fresh connection per request.
  The ratio is the measured value of PR 10's keep-alive support.
* **shed latency under 4x overload** — a burst of four times the
  server's admission capacity (workers + queue), with every admitted
  request slowed server-side so the burst genuinely saturates.  The
  p99 latency of a *shed* (typed 429) answers how quickly an
  overloaded server turns traffic away — load shedding only protects
  the service if rejection is much cheaper than service.

Unlike the kernel/scale benches this one is **non-gating**: raw HTTP
throughput on a shared CI runner is too noisy to band.  Correctness is
still asserted hard — byte-identical responses, typed 429s with
``Retry-After``, zero 500s — so the bench doubles as an overload
regression test; only the timings are informational.

Two modes: quick (``SST_BENCH_QUICK=1``, CI/committed artifact) uses a
smaller ontology and stream; full (nightly) records to the results
directory only.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

from benchmarks.conftest import record, record_root
from repro.core.facade import SOQASimPackToolkit
from repro.core.resilience import injected_faults
from repro.core.server import ServerConfig, serve_in_thread
from repro.ontologies.generator import generate_sumo_owl
from repro.soqa.api import SOQA

#: Bump when the BENCH_serve.json layout changes.
SCHEMA = "sst/bench-serve/v1"

QUICK = os.environ.get("SST_BENCH_QUICK", "").strip() not in ("", "0")
SIZE = 300 if QUICK else 1_000
STREAM = 150 if QUICK else 600

#: Overload shape: a burst of OVERLOAD_FACTOR x (workers + queue)
#: concurrent requests, each admitted one slowed by SLOW_SECONDS.
WORKERS = 2
QUEUE_LIMIT = 2
OVERLOAD_FACTOR = 4
SLOW_SECONDS = 0.25


def _toolkit() -> tuple[SOQASimPackToolkit, bytes]:
    soqa = SOQA()
    soqa.load_text(generate_sumo_owl(SIZE), "sumo", "OWL")
    names = [concept.name
             for concept in soqa.ontology("sumo").concepts()[:2]]
    body = json.dumps({"first": ["sumo", names[0]],
                       "second": ["sumo", names[1]]}).encode()
    return SOQASimPackToolkit(soqa, cache=False), body


def _post(host: str, port: int, body: bytes,
          close: bool = False) -> tuple[int, bytes, float, str | None]:
    headers = {"Connection": "close"} if close else {}
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        started = time.perf_counter()
        connection.request("POST", "/v1/similarity", body=body,
                           headers=headers)
        response = connection.getresponse()
        payload = response.read()
        return (response.status, payload, time.perf_counter() - started,
                response.getheader("Retry-After"))
    finally:
        connection.close()


def _stream_keep_alive(host: str, port: int, body: bytes) -> float:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        started = time.perf_counter()
        for _ in range(STREAM):
            connection.request("POST", "/v1/similarity", body=body)
            response = connection.getresponse()
            assert response.status == 200
            response.read()
        return time.perf_counter() - started
    finally:
        connection.close()


def _stream_close(host: str, port: int, body: bytes) -> float:
    started = time.perf_counter()
    for _ in range(STREAM):
        status, _payload, _seconds, _retry = _post(host, port, body,
                                                   close=True)
        assert status == 200
    return time.perf_counter() - started


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(fraction * (len(ordered) - 1) + 0.5))]


def test_serve_throughput_and_overload(results_dir):
    toolkit, body = _toolkit()

    # -- keep-alive vs close throughput ---------------------------------
    config = ServerConfig(port=0, workers=WORKERS,
                          max_requests_per_connection=STREAM + 1)
    with serve_in_thread(toolkit, config) as handle:
        status, baseline, _, _ = _post(handle.host, handle.port, body)
        assert status == 200
        keep_seconds = _stream_keep_alive(handle.host, handle.port, body)
        close_seconds = _stream_close(handle.host, handle.port, body)
        status, replay, _, _ = _post(handle.host, handle.port, body)
        assert status == 200 and replay == baseline

    # -- shed latency under 4x overload ---------------------------------
    capacity = WORKERS + QUEUE_LIMIT
    burst = OVERLOAD_FACTOR * capacity
    overload_config = ServerConfig(port=0, workers=WORKERS,
                                   queue_limit=QUEUE_LIMIT,
                                   max_queue_wait=2 * SLOW_SECONDS)
    results: list[tuple[int, bytes, float, str | None]] = []
    lock = threading.Lock()

    def one_request(host: str, port: int) -> None:
        outcome = _post(host, port, body)
        with lock:
            results.append(outcome)

    with injected_faults(f"server.slow={burst}@{SLOW_SECONDS}"):
        with serve_in_thread(toolkit, overload_config) as handle:
            threads = [threading.Thread(target=one_request,
                                        args=(handle.host, handle.port))
                       for _ in range(burst)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)

    assert len(results) == burst
    statuses = sorted({outcome[0] for outcome in results})
    # Overload must answer with service or a typed shed — never a 500.
    assert set(statuses) <= {200, 429}, statuses
    completed = [r for r in results if r[0] == 200]
    shed = [r for r in results if r[0] == 429]
    assert completed and shed, statuses
    for _status, payload, _seconds, retry_after in shed:
        error = json.loads(payload)["error"]
        assert error["code"] == "overloaded"
        assert retry_after is not None and retry_after.isdigit()
    shed_latencies = [outcome[2] for outcome in shed]

    payload = {
        "schema": SCHEMA,
        "quick": QUICK,
        "size": SIZE,
        "stream": STREAM,
        "gate": {"enforced": False,
                 "note": "informational; correctness asserted, "
                         "timings never gate"},
        "keep_alive": {
            "seconds": round(keep_seconds, 6),
            "requests_per_second": round(STREAM / keep_seconds, 1),
        },
        "close": {
            "seconds": round(close_seconds, 6),
            "requests_per_second": round(STREAM / close_seconds, 1),
        },
        "keepalive_speedup": round(close_seconds / keep_seconds, 2),
        "overload": {
            "workers": WORKERS,
            "queue_limit": QUEUE_LIMIT,
            "burst": burst,
            "slow_seconds": SLOW_SECONDS,
            "completed": len(completed),
            "shed": len(shed),
            "server_errors": 0,
            "shed_p50_ms": round(_percentile(shed_latencies, 0.5) * 1e3,
                                 3),
            "shed_p99_ms": round(_percentile(shed_latencies, 0.99) * 1e3,
                                 3),
        },
    }
    text = json.dumps(payload, indent=2) + "\n"
    record(results_dir, "BENCH_serve.json", text)
    if QUICK:
        # Only quick mode refreshes the repo-root copy (the committed
        # configuration); the full-mode nightly records results only.
        record_root("BENCH_serve.json", text)
