"""Experiment X2 — latency of every SST facade service (section 3's
service inventory) on the full 943-concept corpus, one timing per
Table-1 measure and per service shape (S1 pairwise, S2 k-most, lists,
subtrees, matrices, S3 plots)."""

from __future__ import annotations

import pytest

from repro.core.registry import Measure, TABLE1_MEASURES

PAIR = ("Professor", "base1_0_daml", "AssistantProfessor",
        "univ-bench_owl")


@pytest.mark.parametrize("measure", TABLE1_MEASURES,
                         ids=lambda measure: measure.name.lower())
def test_s1_pairwise_similarity(benchmark, corpus_sst, measure):
    corpus_sst.get_similarity(*PAIR, measure)  # warm caches
    value = benchmark(corpus_sst.get_similarity, *PAIR, measure)
    assert value >= 0.0


def test_s1_measure_list(benchmark, corpus_sst):
    values = benchmark(corpus_sst.get_similarities, *PAIR)
    assert len(values) == len(TABLE1_MEASURES)


def test_s2_most_similar_full_corpus(benchmark, corpus_sst):
    corpus_sst.get_similarity(*PAIR, Measure.SHORTEST_PATH)
    entries = benchmark(corpus_sst.get_most_similar_concepts,
                        "Professor", "base1_0_daml", None, None, 10,
                        Measure.SHORTEST_PATH)
    assert len(entries) == 10


def test_s2_most_similar_subtree(benchmark, corpus_sst):
    entries = benchmark(
        corpus_sst.get_most_similar_concepts, "Professor", "base1_0_daml",
        "Person", "univ-bench_owl", 5, Measure.SHORTEST_PATH)
    assert len(entries) == 5
    assert all(entry.ontology_name == "univ-bench_owl"
               for entry in entries)


def test_s2_most_dissimilar(benchmark, corpus_sst):
    entries = benchmark(corpus_sst.get_most_dissimilar_concepts,
                        "Professor", "base1_0_daml", None, None, 10,
                        Measure.SHORTEST_PATH)
    assert len(entries) == 10


def test_similarity_to_set(benchmark, corpus_sst):
    concepts = [("univ-bench_owl", "Person"), ("COURSES", "EMPLOYEE"),
                ("SUMO_owl_txt", "Human")]
    entries = benchmark(corpus_sst.get_similarity_to_set, "Professor",
                        "base1_0_daml", concepts, Measure.TFIDF)
    assert len(entries) == 3


def test_similarity_matrix(benchmark, corpus_sst):
    concepts = [("base1_0_daml", "Professor"),
                ("univ-bench_owl", "Professor"),
                ("COURSES", "PROFESSOR"),
                ("swrc_owl", "FullProfessor")]
    matrix = benchmark(corpus_sst.get_similarity_matrix, concepts,
                       Measure.TFIDF)
    assert len(matrix) == 4


def test_s3_similarity_plot(benchmark, corpus_sst):
    chart = benchmark(corpus_sst.get_similarity_plot, *PAIR)
    assert len(chart.values) == len(TABLE1_MEASURES)


def test_soqaql_query_latency(benchmark, corpus_sst):
    from repro.soqa.soqaql.evaluator import SOQAQLEngine

    engine = SOQAQLEngine(corpus_sst.soqa)
    result = benchmark(
        engine.execute,
        "SELECT name, ontology FROM concepts WHERE documentation "
        "LIKE '%professor%' ORDER BY name")
    assert len(result) > 0
