"""Experiment P1 — serial vs parallel batch similarity scaling.

Times `get_similarity_matrix` over the largest bundled ontology
(``SUMO_owl_txt``, 789 concepts) under all three execution strategies of
:mod:`repro.core.parallel` and records the wall-clock trajectory into a
stable JSON artifact (``BENCH_parallel.json``), so future PRs can chart
the perf trend.  The run **fails if any parallel cell diverges from the
serial matrix** — parallelism must never change a result.

Two modes:

* full (default): a 32-concept Tree-Edit matrix (528 symmetric pairs,
  ~6 ms/pair serial) — enough work for the pools to amortize; asserts
  the >= 2x speedup with 4 process workers when the host has >= 4 CPUs.
* quick (``SST_BENCH_QUICK=1``, the CI smoke mode): a 12-concept
  matrix; equality across strategies is still asserted cell by cell,
  timings are recorded but no speedup is demanded.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import record
from repro.core.parallel import PROCESS, SERIAL, STRATEGIES, THREAD
from repro.core.registry import Measure

#: Bump when the BENCH_parallel.json layout changes.
SCHEMA = "sst/bench-parallel/v1"

ONTOLOGY = "SUMO_owl_txt"  # the largest bundled ontology (789 concepts)
MEASURE = Measure.TREE_EDIT
WORKERS = 4

QUICK = os.environ.get("SST_BENCH_QUICK", "").strip() not in ("", "0")
MATRIX_SIZE = 12 if QUICK else 32

#: Hosts with fewer cores than this record the speedup without
#: asserting it (a 1-core runner cannot physically go faster).
MIN_CPUS_FOR_ASSERT = 4
SPEEDUP_TARGET = 2.0


def _timed_matrix(sst, concepts, workers, strategy):
    start = time.perf_counter()
    matrix = sst.get_similarity_matrix(concepts, MEASURE, workers=workers,
                                       strategy=strategy)
    return matrix, time.perf_counter() - start


def test_parallel_scaling(corpus_sst, results_dir):
    concepts = [(ONTOLOGY, concept.name)
                for concept in corpus_sst.soqa.ontology(ONTOLOGY)]
    concepts = concepts[:MATRIX_SIZE]
    assert len(concepts) == MATRIX_SIZE

    # Warm the lazily built wrapper state (taxonomy, subtrees) outside
    # the timed region, so every strategy times pure pair scoring.
    corpus_sst.get_similarity_matrix(concepts[:2], MEASURE)

    matrices, timings = {}, {}
    matrices[SERIAL], timings[SERIAL] = _timed_matrix(
        corpus_sst, concepts, 1, SERIAL)
    matrices[THREAD], timings[THREAD] = _timed_matrix(
        corpus_sst, concepts, WORKERS, THREAD)
    matrices[PROCESS], timings[PROCESS] = _timed_matrix(
        corpus_sst, concepts, WORKERS, PROCESS)

    # Hard gate: parallel output must be bit-identical to serial —
    # every cell, every strategy.
    for strategy in (THREAD, PROCESS):
        assert matrices[strategy] == matrices[SERIAL], (
            f"{strategy} matrix diverged from serial")

    pair_count = MATRIX_SIZE * (MATRIX_SIZE + 1) // 2
    payload = {
        "schema": SCHEMA,
        "quick": QUICK,
        "ontology": ONTOLOGY,
        "measure": corpus_sst.runner(MEASURE).name,
        "matrix_size": MATRIX_SIZE,
        "pairs": pair_count,
        "workers": WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "strategies": list(STRATEGIES),
        "seconds": {strategy: round(timings[strategy], 6)
                    for strategy in STRATEGIES},
        "speedup": {strategy: round(timings[SERIAL] / timings[strategy], 3)
                    for strategy in (THREAD, PROCESS)},
        "identical": True,
    }
    record(results_dir, "BENCH_parallel.json",
           json.dumps(payload, indent=2) + "\n")

    if not QUICK and payload["cpu_count"] >= MIN_CPUS_FOR_ASSERT:
        assert payload["speedup"][PROCESS] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x process speedup with "
            f"{WORKERS} workers, measured {payload['speedup'][PROCESS]}x")
