"""Experiment F5 — Figure 5: the ten most similar concepts for
``base1_0_daml:Professor``, as a bar chart.

Regenerates the ranked series, writes the Gnuplot script + data file SST
hands to the ``gnuplot`` binary in the paper, plus the SVG and ASCII
renderings, and asserts the ranking shape: the professor family of the
anchor's own ontology dominates the top ranks.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.core.registry import Measure

ANCHOR = ("Professor", "base1_0_daml")
K = 10


def compute_top_k(sst):
    return sst.get_most_similar_concepts(*ANCHOR, k=K,
                                         measure=Measure.SHORTEST_PATH)


def test_fig5_most_similar_concepts(benchmark, corpus_sst, results_dir):
    entries = benchmark(compute_top_k, corpus_sst)

    chart = corpus_sst.get_most_similar_plot(
        *ANCHOR, k=K, measure=Measure.SHORTEST_PATH)
    record(results_dir, "fig5_most_similar.txt", chart.to_ascii())
    chart.save(results_dir, stem="fig5_most_similar")

    assert len(entries) == K
    values = [entry.similarity for entry in entries]
    assert values == sorted(values, reverse=True)
    # Fig. 5's winners: the professor specializations and Faculty from
    # the anchor's own DAML ontology.
    top_names = {entry.concept_name for entry in entries}
    assert {"AssistantProfessor", "AssociateProfessor", "FullProfessor",
            "Faculty"} <= top_names
    assert all(entry.ontology_name == "base1_0_daml" for entry in entries)


def test_fig5_with_tfidf_spans_ontologies(benchmark, corpus_sst,
                                          results_dir):
    """The same service under TFIDF surfaces cross-ontology hits —
    the toolkit's headline capability."""

    def compute():
        return corpus_sst.get_most_similar_concepts(
            *ANCHOR, k=K, measure=Measure.TFIDF)

    entries = benchmark(compute)
    chart = corpus_sst.get_most_similar_plot(*ANCHOR, k=K,
                                             measure=Measure.TFIDF)
    record(results_dir, "fig5_most_similar_tfidf.txt", chart.to_ascii())

    ontologies = {entry.ontology_name for entry in entries}
    assert len(ontologies) >= 2
    names = [entry.concept_name.lower() for entry in entries]
    assert any("professor" in name for name in names)
