"""Experiment K1 — batch kernel vs per-pair naive matrix scoring.

Times full similarity matrices over a synthetic SUMO-shaped ontology
for every batchable measure, ``engine="naive"`` (the per-pair runner
loop) versus ``engine="kernel"`` (:mod:`repro.core.kernel`), plus the
k-most-similar and similarity-to-set services, and records the
trajectory into ``BENCH_kernel.json`` (schema ``sst/bench-kernel/v1``).

Hard gates, **both modes**:

* every matrix cell must be bit-identical between the engines, and
* the batchable-measure sweep must run at least ``SPEEDUP_TARGET``
  (5x) faster through the kernel.

Regression gate: when the committed repo-root ``BENCH_kernel.json``
was produced under the same mode and sizes, the measured sweep speedup
must stay within ``SPEEDUP_BAND`` of it and the kernel throughput
within ``THROUGHPUT_BAND`` — so the CI ``bench-kernel`` job fails when
a change erodes the kernel's advantage, not only when it falls under
the absolute floor.

Two modes:

* quick (``SST_BENCH_QUICK=1``, the CI mode): 1.5k-node ontology,
  120-concept panel.  This is the configuration of the committed
  artifact, so CI runs compare apples to apples.
* full (default, nightly): 6k nodes, 200-concept panel; records to the
  results directory only, leaving the committed quick-mode artifact
  alone.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import REPO_ROOT, record, record_root
from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.ontologies.generator import generate_sumo_owl
from repro.soqa.api import SOQA

#: Bump when the BENCH_kernel.json layout changes.
SCHEMA = "sst/bench-kernel/v1"

QUICK = os.environ.get("SST_BENCH_QUICK", "").strip() not in ("", "0")
SIZE = 1_500 if QUICK else 6_000
PANEL = 120 if QUICK else 200
REPEATS = 3
K = 10

#: The acceptance gate: the all-measure matrix sweep must run at least
#: this much faster through the kernel, in both modes.
SPEEDUP_TARGET = 5.0

#: Regression bands against the committed artifact: the sweep speedup
#: may not drop below half the committed value, the kernel throughput
#: not below a quarter (throughput is machine-absolute, so the band is
#: wide; the speedup ratio is machine-relative and tighter).
SPEEDUP_BAND = 0.5
THROUGHPUT_BAND = 0.25

#: Every measure with a kernel batch form.
MEASURES = (
    Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH, Measure.EDGE,
    Measure.LEACOCK_CHODOROW, Measure.LIN, Measure.RESNIK,
    Measure.RESNIK_NORMALIZED, Measure.JIANG_CONRATH,
    Measure.EXTENSIONAL,
)


def _toolkit() -> tuple[SOQASimPackToolkit, list[tuple[str, str]]]:
    soqa = SOQA()
    soqa.load_text(generate_sumo_owl(SIZE), "sumo", "OWL")
    sst = SOQASimPackToolkit(soqa, cache=False)
    names = [concept.name for concept in soqa.ontology("sumo").concepts()]
    # The panel is the first PANEL concepts — the upper, general part of
    # the taxonomy, i.e. the shape of the toolkit's browsing/alignment
    # matrices.  General concepts carry the large ancestor/descendant
    # sets that dominate per-pair naive cost, which is exactly the
    # regime the batch kernel exists for.
    panel = [("sumo", name) for name in names[:PANEL]]
    return sst, panel


def _best_of(callable_):
    best = result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _bench_matrices(sst, panel) -> tuple[dict, float, float]:
    measures: dict = {}
    naive_total = kernel_total = 0.0
    for measure in MEASURES:
        # Build lazy structures (compiled index, IC, kernel tables)
        # outside the timed region — both engines share them.
        sst.get_similarity_matrix(panel[:2], measure, engine="kernel")
        naive_best, naive_matrix = _best_of(
            lambda: sst.get_similarity_matrix(panel, measure,
                                              engine="naive"))
        kernel_best, kernel_matrix = _best_of(
            lambda: sst.get_similarity_matrix(panel, measure,
                                              engine="kernel"))
        # Hard gate, both modes: every cell bit-identical.
        assert kernel_matrix == naive_matrix, (
            f"{measure.name}: kernel matrix diverged from naive")
        naive_total += naive_best
        kernel_total += kernel_best
        measures[measure.name] = {
            "naive_seconds": round(naive_best, 6),
            "kernel_seconds": round(kernel_best, 6),
            "speedup": round(naive_best / kernel_best, 2)
            if kernel_best else None,
        }
    return measures, naive_total, kernel_total


def _bench_services(sst, panel) -> dict:
    anchor_ontology, anchor_name = panel[0]
    others = panel[1:]
    report: dict = {}

    naive_best, naive_ranked = _best_of(
        lambda: sst.get_most_similar_concepts(
            anchor_name, anchor_ontology, k=K, measure=Measure.LIN,
            engine="naive"))
    kernel_best, kernel_ranked = _best_of(
        lambda: sst.get_most_similar_concepts(
            anchor_name, anchor_ontology, k=K, measure=Measure.LIN,
            engine="kernel"))
    assert kernel_ranked == naive_ranked, "k-most rankings diverged"
    report["most_similar"] = {
        "k": K, "naive_seconds": round(naive_best, 6),
        "kernel_seconds": round(kernel_best, 6),
        "speedup": round(naive_best / kernel_best, 2)
        if kernel_best else None,
    }

    naive_best, naive_set = _best_of(
        lambda: sst.get_similarity_to_set(
            anchor_name, anchor_ontology, others,
            Measure.JIANG_CONRATH, engine="naive"))
    kernel_best, kernel_set = _best_of(
        lambda: sst.get_similarity_to_set(
            anchor_name, anchor_ontology, others,
            Measure.JIANG_CONRATH, engine="kernel"))
    assert kernel_set == naive_set, "set-similarity scores diverged"
    report["similarity_to_set"] = {
        "candidates": len(others), "naive_seconds": round(naive_best, 6),
        "kernel_seconds": round(kernel_best, 6),
        "speedup": round(naive_best / kernel_best, 2)
        if kernel_best else None,
    }
    return report


def _committed_baseline() -> dict | None:
    """The committed artifact, when comparable to this run's config."""
    root_artifact = REPO_ROOT / "BENCH_kernel.json"
    if not root_artifact.exists():
        return None
    try:
        committed = json.loads(root_artifact.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    comparable = (committed.get("schema") == SCHEMA
                  and committed.get("quick") == QUICK
                  and committed.get("size") == SIZE
                  and committed.get("panel") == PANEL)
    return committed if comparable else None


def test_kernel_matrix_speedup(results_dir):
    sst, panel = _toolkit()
    measures, naive_total, kernel_total = _bench_matrices(sst, panel)
    services = _bench_services(sst, panel)

    pair_count = len(panel) * (len(panel) + 1) // 2
    pairs_scored = pair_count * len(MEASURES)
    sweep_speedup = round(naive_total / kernel_total, 2) \
        if kernel_total else None
    throughput = round(pairs_scored / kernel_total, 1) \
        if kernel_total else None

    payload = {
        "schema": SCHEMA,
        "quick": QUICK,
        "size": SIZE,
        "panel": PANEL,
        "repeats": REPEATS,
        "gate": {"target": SPEEDUP_TARGET, "enforced": True,
                 "speedup_band": SPEEDUP_BAND,
                 "throughput_band": THROUGHPUT_BAND},
        "sweep": {
            "pairs_scored": pairs_scored,
            "naive_seconds": round(naive_total, 6),
            "kernel_seconds": round(kernel_total, 6),
            "speedup": sweep_speedup,
            "kernel_pairs_per_second": throughput,
        },
        "measures": measures,
        "services": services,
        "identical": True,
    }
    committed = _committed_baseline()
    text = json.dumps(payload, indent=2) + "\n"
    record(results_dir, "BENCH_kernel.json", text)
    if QUICK:
        # Only quick mode refreshes the repo-root copy: that is the
        # configuration the committed artifact (and CI) uses, so a
        # full-mode nightly run cannot clobber the comparison baseline.
        record_root("BENCH_kernel.json", text)

    # Hard gate, both modes: the kernel must clear the absolute floor.
    assert sweep_speedup is not None and sweep_speedup >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x kernel sweep speedup, measured "
        f"{sweep_speedup}x")

    # Regression gate against the committed artifact (same mode/sizes).
    if committed is not None:
        committed_sweep = committed.get("sweep", {})
        committed_speedup = committed_sweep.get("speedup")
        if committed_speedup:
            floor = max(SPEEDUP_TARGET, committed_speedup * SPEEDUP_BAND)
            assert sweep_speedup >= floor, (
                f"sweep speedup regressed: measured {sweep_speedup}x, "
                f"committed {committed_speedup}x, floor {floor:.2f}x")
        committed_throughput = committed_sweep.get("kernel_pairs_per_second")
        if committed_throughput and throughput is not None:
            floor = committed_throughput * THROUGHPUT_BAND
            assert throughput >= floor, (
                f"kernel throughput regressed: measured {throughput} "
                f"pairs/s, committed {committed_throughput}, floor "
                f"{floor:.1f}")
