"""Experiment X5 — measure latency vs ontology size.

Synthetic complete 4-ary taxonomies of 50..2000 concepts; for each size,
one distance-based and one information-theoretic computation.  Records
the latency series so the toolkit's scalability envelope is visible.
"""

from __future__ import annotations

import pytest

from repro.ontologies.generator import generate_synthetic_taxonomy
from repro.simpack.graphdist import wu_palmer_similarity
from repro.simpack.infocontent import InformationContent, lin_similarity
from repro.soqa.graph import Taxonomy

SIZES = (50, 200, 800, 2000)


def build(size: int) -> Taxonomy:
    return Taxonomy(generate_synthetic_taxonomy(size))


@pytest.mark.parametrize("size", SIZES)
def test_scaling_taxonomy_build(benchmark, size):
    taxonomy = benchmark(build, size)
    assert len(taxonomy) == size


@pytest.mark.parametrize("size", SIZES)
def test_scaling_wu_palmer(benchmark, size):
    taxonomy = build(size)
    deep_first = f"Node{size - 1}"
    deep_second = f"Node{size - 2}"
    value = benchmark(wu_palmer_similarity, taxonomy, deep_first,
                      deep_second)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("size", SIZES)
def test_scaling_lin(benchmark, size):
    taxonomy = build(size)
    ic = InformationContent(taxonomy)
    deep_first = f"Node{size - 1}"
    deep_second = f"Node{size - 2}"
    value = benchmark(lin_similarity, ic, deep_first, deep_second)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("size", SIZES)
def test_scaling_mrca_cold_cache(benchmark, size):
    """MRCA without warm caches: rebuilds the taxonomy each round."""
    deep_first = f"Node{size - 1}"
    deep_second = f"Node{size - 2}"

    def compute():
        taxonomy = build(size)
        return taxonomy.mrca(deep_first, deep_second)

    meeting = benchmark(compute)
    assert meeting is not None
