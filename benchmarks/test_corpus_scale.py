"""Experiment X1 — the running example's scale: five ontologies in three
languages, 943 concepts, loaded through SOQA into one toolkit."""

from __future__ import annotations

from benchmarks.conftest import record
from repro.ontologies.library import PAPER_CONCEPT_COUNT, load_corpus
from repro.viz.ascii import render_table


def test_corpus_load(benchmark, results_dir):
    soqa = benchmark(load_corpus)

    rows = [[name, soqa.ontology(name).language,
             str(len(soqa.ontology(name)))]
            for name in soqa.ontology_names()]
    rows.append(["TOTAL", "-", str(soqa.concept_count())])
    record(results_dir, "x1_corpus_scale.txt",
           render_table(["ontology", "language", "concepts"], rows))

    assert soqa.concept_count() == PAPER_CONCEPT_COUNT == 943
    assert len(soqa.ontology_names()) == 5
    assert set(soqa.languages_in_use()) == {"OWL", "PowerLoom", "DAML"}


def test_unified_tree_build(benchmark, corpus_sst):
    """Building the Super-Thing tree over all 943 concepts."""
    from repro.core.unified import UnifiedTree

    tree = benchmark(UnifiedTree, corpus_sst.soqa)
    assert len(tree.taxonomy) > 943  # concepts + virtual roots
    assert tree.taxonomy.roots() == ["Super Thing"]


def test_tfidf_index_build(benchmark, corpus_sst):
    """Indexing all 943 concept descriptions for the TFIDF measure."""
    from repro.core.unified import UnifiedTree
    from repro.core.wrapper import SOQAWrapperForSimPack

    def build():
        wrapper = SOQAWrapperForSimPack(
            corpus_sst.soqa, UnifiedTree(corpus_sst.soqa))
        return wrapper.vector_space()

    space = benchmark(build)
    assert space.index.document_count == 943
