"""Experiment F3 — Figure 3's tree-building ablation.

Super Thing vs merged Thing on a two-domain corpus (university +
ornithology): under merged Thing, ``Student`` is as similar to
``Professor`` as to ``Blackbird`` (the paper's exact complaint); under
Super Thing the domains stay separated.  Also contrasts the two
shortest-path policies of section 2.2 (via-ancestor vs any path).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.unified import MERGED_THING, SUPER_THING
from repro.soqa.api import SOQA
from repro.viz.ascii import render_table

UNIVERSITY_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/ontology1">
  <owl:Class rdf:ID="Student"/>
  <owl:Class rdf:ID="Professor"/>
</rdf:RDF>
"""

ORNITHOLOGY_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/ontology2">
  <owl:Class rdf:ID="Blackbird"/>
  <owl:Class rdf:ID="Sparrow"/>
</rdf:RDF>
"""


@pytest.fixture(scope="module")
def two_domain_soqa() -> SOQA:
    soqa = SOQA()
    soqa.load_text(UNIVERSITY_OWL, "ontology1", "OWL")
    soqa.load_text(ORNITHOLOGY_OWL, "ontology2", "OWL")
    return soqa


def compute_ablation(soqa) -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for strategy in (SUPER_THING, MERGED_THING):
        sst = SOQASimPackToolkit(soqa, strategy=strategy)
        results[strategy] = {
            "student_professor": sst.get_similarity(
                "Student", "ontology1", "Professor", "ontology1",
                Measure.SHORTEST_PATH),
            "student_blackbird": sst.get_similarity(
                "Student", "ontology1", "Blackbird", "ontology2",
                Measure.SHORTEST_PATH),
        }
    return results


def test_fig3_tree_ablation(benchmark, two_domain_soqa, results_dir):
    results = benchmark(compute_ablation, two_domain_soqa)

    rows = [[strategy,
             f"{values['student_professor']:.4f}",
             f"{values['student_blackbird']:.4f}"]
            for strategy, values in results.items()]
    record(results_dir, "fig3_tree_ablation.txt", render_table(
        ["strategy", "sim(Student, Professor)", "sim(Student, Blackbird)"],
        rows))

    merged = results[MERGED_THING]
    unified = results[SUPER_THING]
    # Fig. 3(b): under merged Thing, Student is as similar to Professor
    # as to Blackbird.
    assert merged["student_professor"] == pytest.approx(
        merged["student_blackbird"])
    # Fig. 3(a): Super Thing keeps the domains separated.
    assert unified["student_professor"] > unified["student_blackbird"]


def test_fig3_path_policy(benchmark, two_domain_soqa, results_dir):
    """The via-ancestor vs any-path policy choice (section 2.2)."""
    sst = SOQASimPackToolkit(two_domain_soqa)
    wrapper = sst.wrapper
    from repro.core.results import QualifiedConcept

    student = QualifiedConcept("ontology1", "Student")
    blackbird = QualifiedConcept("ontology2", "Blackbird")

    def compute():
        return (wrapper.distance(student, blackbird,
                                 policy="via_ancestor"),
                wrapper.distance(student, blackbird, policy="any"))

    via, any_path = benchmark(compute)
    record(results_dir, "fig3_path_policy.txt",
           f"via_ancestor distance: {via}\nany-path distance: {any_path}\n")
    # Without common descendants the two policies agree.
    assert via == any_path
