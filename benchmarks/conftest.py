"""Shared fixtures and result recording for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md section 2).  Besides the pytest-benchmark timings, each bench
writes its regenerated artifact (table text, chart SVG, gnuplot inputs)
into ``benchmarks/results/`` so the outputs survive the run and can be
diffed against the paper.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.facade import SOQASimPackToolkit
from repro.core.resilience import atomic_write_text
from repro.ontologies.library import load_corpus

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache(monkeypatch):
    """Timing benches must not warm-start from a user's ``~/.cache/sst``.

    Benches that exercise the persistent tier explicitly (the
    graph-index bench) point ``SST_CACHE_DIR`` at their own temp dirs.
    """
    monkeypatch.delenv("SST_CACHE_DIR", raising=False)


@pytest.fixture(scope="session")
def corpus_sst() -> SOQASimPackToolkit:
    """The paper's 943-concept corpus behind an SST facade."""
    return SOQASimPackToolkit(load_corpus(), cache_dir=None)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Write one regenerated artifact and echo it to stdout.

    Atomically — an interrupted benchmark run must never leave a
    truncated artifact behind for the regression gate to misread.
    """
    atomic_write_text(results_dir / name, text)
    print(f"\n===== {name} =====\n{text}")


def record_root(name: str, text: str) -> None:
    """Also surface an artifact at the repo root.

    ``BENCH_*.json`` files at the root feed the benchmark trajectory
    tracker; ``benchmarks/results/`` only survives as a CI artifact.
    """
    atomic_write_text(REPO_ROOT / name, text)
