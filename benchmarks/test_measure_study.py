"""Experiment X6 — the paper's announced measure evaluation study.

Section 6 names "a thorough evaluation to find the best performing
similarity measures in different task domains" as future work; this
bench runs that study for the alignment task domain on the corpus:
every normalized measure scores the univ-bench ↔ DAML-university
alignment against a reference, ranked by F-measure.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.align.study import MeasureStudy
from repro.core.registry import Measure

#: Reference alignment between univ-bench_owl and base1_0_daml
#: (identical domain, largely identical naming).
REFERENCE = [
    ("Person", "Person"), ("Employee", "Employee"),
    ("Faculty", "Faculty"), ("Professor", "Professor"),
    ("AssistantProfessor", "AssistantProfessor"),
    ("AssociateProfessor", "AssociateProfessor"),
    ("FullProfessor", "FullProfessor"), ("Lecturer", "Lecturer"),
    ("Chair", "Chair"), ("Dean", "Dean"), ("Student", "Student"),
    ("GraduateStudent", "GraduateStudent"),
    ("UndergraduateStudent", "UndergraduateStudent"),
    ("TeachingAssistant", "TeachingAssistant"),
    ("ResearchAssistant", "ResearchAssistant"),
    ("Organization", "Organization"), ("University", "University"),
    ("Department", "Department"), ("ResearchGroup", "ResearchGroup"),
    ("Course", "Course"), ("GraduateCourse", "GraduateCourse"),
    ("Research", "Research"), ("Publication", "Publication"),
    ("Article", "Article"), ("Book", "Book"),
    ("TechnicalReport", "TechnicalReport"),
    ("AdministrativeStaff", "AdministrativeStaff"),
]

#: A representative measure per family, to keep the bench tractable.
STUDIED_MEASURES = (
    Measure.NAME_LEVENSHTEIN,
    Measure.JARO_WINKLER,
    Measure.QGRAM,
    Measure.TFIDF,
    Measure.LEVENSHTEIN,
    Measure.CONCEPTUAL_SIMILARITY,
    Measure.SHORTEST_PATH,
    Measure.LIN,
    Measure.EXTENDED_JACCARD,
    Measure.TREE_EDIT,
)


def test_measure_study(benchmark, corpus_sst, results_dir):
    study = MeasureStudy(corpus_sst, "univ-bench_owl", "base1_0_daml",
                         REFERENCE, thresholds=(0.3, 0.5, 0.7, 0.9))
    results = benchmark.pedantic(study.run, args=(STUDIED_MEASURES,),
                                 rounds=1, iterations=1)
    record(results_dir, "x6_measure_study.txt", study.report(results))

    assert len(results) == len(STUDIED_MEASURES)
    best = results[0]
    # On a same-domain pair with near-identical naming conventions, the
    # lexical measures dominate: some measure reaches F >= 0.9 and the
    # winner is a name/text-based one.
    assert best.quality.f_measure >= 0.9
    assert best.measure_name in ("Name Levenshtein", "Jaro-Winkler",
                                 "QGram", "TFIDF")
    # Purely structural measures cannot distinguish same-depth siblings
    # across ontologies, so they trail the lexical family.
    structural = {"Conceptual Similarity", "Shortest Path", "Lin",
                  "Tree Edit"}
    best_structural = max(
        (result.quality.f_measure for result in results
         if result.measure_name in structural), default=0.0)
    assert best_structural < best.quality.f_measure
