"""Experiment X10 — free-text semantic discovery over the corpus.

"Semantic Web (service) discovery" is one of the paper's application
areas: find the right concept for a natural-language need.  This bench
runs free-text queries against the 943-concept corpus through the
facade's search service (TFIDF and BM25 schemes) and asserts that the
expected concepts surface.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.viz.ascii import render_table

QUERIES = {
    "someone who teaches courses at a university": {
        "TeachingAssistant", "Faculty", "TEACHING-ASSISTANT",
        "ACADEMIC-STAFF", "Course", "Professor", "Lecturer", "teacher"},
    "warm blooded animal covered with fur": {
        "Mammal", "WarmBloodedVertebrate", "Vertebrate"},
    "a thesis submitted for a doctoral degree": {
        "PhDThesis", "Thesis", "MasterThesis", "PHD-STUDENT"},
    "an organization pursuing scientific research": {
        "ResearchGroup", "Institute", "ResearchProject", "Research"},
}


@pytest.mark.parametrize("scheme", ["tfidf", "bm25"])
def test_semantic_search(benchmark, corpus_sst, results_dir, scheme):
    def run_all():
        return {query: corpus_sst.search_concepts(query, k=5,
                                                  scheme=scheme)
                for query in QUERIES}

    results = benchmark(run_all)

    rows = []
    for query, hits in results.items():
        for rank, hit in enumerate(hits, start=1):
            rows.append([query if rank == 1 else "", str(rank),
                         hit.concept_name, hit.ontology_name,
                         f"{hit.similarity:.4f}"])
    record(results_dir, f"x10_semantic_search_{scheme}.txt",
           render_table(["query", "rank", "concept", "ontology",
                         "relevance"], rows))

    for query, expected in QUERIES.items():
        hit_names = {hit.concept_name for hit in results[query]}
        assert hit_names & expected, (scheme, query, hit_names)
        # Ranked best-first.
        values = [hit.similarity for hit in results[query]]
        assert values == sorted(values, reverse=True)
