"""Experiment F6 — Figure 6: the SST Browser's Similarity Tab.

The paper's screenshot shows the k most similar concepts for
``univ-bench_owl:Person`` under the TFIDF measure, rendered as a table
by the browser.  This bench drives the actual browser view code
non-interactively and asserts the ranking shape.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.browser.views import render_similarity_tab
from repro.core.registry import Measure

ANCHOR = ("Person", "univ-bench_owl")
K = 10


def test_fig6_similarity_tab(benchmark, corpus_sst, results_dir):
    table = benchmark(render_similarity_tab, corpus_sst, ANCHOR[0],
                      ANCHOR[1], K, Measure.TFIDF)
    record(results_dir, "fig6_similarity_tab.txt", table)

    assert "10 most similar concepts" in table
    assert "TFIDF" in table

    entries = corpus_sst.get_most_similar_concepts(
        *ANCHOR, k=K, measure=Measure.TFIDF)
    # Person-like concepts from several ontologies top the list, as in
    # the screenshot.
    top_names = [entry.concept_name.lower() for entry in entries]
    assert "person" in top_names[:3]
    assert len({entry.ontology_name for entry in entries}) >= 2
    values = [entry.similarity for entry in entries]
    assert values == sorted(values, reverse=True)
    assert all(0.0 <= value <= 1.0 for value in values)


def test_fig6_browser_command_loop(benchmark, corpus_sst, results_dir):
    """The same interaction through the browser's command shell."""
    import io

    from repro.browser.shell import run_browser

    def drive():
        output = io.StringIO()
        run_browser(corpus_sst,
                    lines=["ksim univ-bench_owl Person 10 TFIDF"],
                    stdout=output)
        return output.getvalue()

    text = benchmark(drive)
    record(results_dir, "fig6_browser_session.txt", text)
    assert "Person" in text
    assert "rank" in text
