# Local invocations that match the CI jobs (.github/workflows/ci.yml)
# exactly — CI calls these same targets.

PY ?= python
export PYTHONPATH := src

.PHONY: test lint analyze coverage chaos serve-test bench-smoke \
	bench-graphindex bench-kernel bench-scale bench-serve bench

# Tier-1 test suite (the CI "tests" job).
test:
	$(PY) -m pytest -x -q

# Chaos suite: fault-injected CLI runs must stay bit-identical to clean
# serial runs (the CI "chaos" job).
chaos:
	$(PY) -m pytest tests/chaos -q

# Service battery: byte-for-byte CLI parity, coalescing/concurrency
# hammers and HTTP fuzz over a live `sst serve`, plus chaos under
# traffic and lifecycle chaos (real SIGTERM drains, kill -9 imports;
# the CI "serve" job).
serve-test:
	$(PY) -m pytest tests/server tests/chaos/test_serve_chaos.py \
		tests/chaos/test_lifecycle_chaos.py -q

# Tier-1 suite under coverage with the ratcheted minimum (the CI
# "coverage" job).  The threshold lives in pyproject.toml
# ([tool.coverage.report] fail_under); needs `pip install -e ".[test,cov]"`.
coverage:
	@$(PY) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run: pip install -e '.[test,cov]'"; exit 1; }
	$(PY) -m pytest --cov=repro --cov-report=term-missing \
		--cov-report=xml:coverage.xml -q

# Static analysis over the bundled ontology corpus (the CI "lint" job).
# `python -m repro.cli` is the module form of the installed `sst` command.
lint:
	$(PY) -m repro.cli lint --fail-on error

# Code rules over the toolkit's own source (the CI "analyze" job).
# Fails on any NEW warning-or-worse finding not accepted by the
# committed .sst-analyze-baseline.json.
analyze:
	$(PY) -m repro.cli analyze src/repro --fail-on warning

# Fast benchmark subset with JSON artifacts (the CI "bench-smoke" job).
bench-smoke:
	SST_BENCH_QUICK=1 $(PY) -m pytest benchmarks/test_table1.py benchmarks/test_parallel_scaling.py -q

# Graph-index + disk-cache benchmark, quick mode (the CI
# "bench-graphindex" job).  Fails on any naive/compiled divergence or a
# cold warm-start; run without SST_BENCH_QUICK=1 to also enforce the
# 5x speedup gate and regenerate BENCH_graphindex.json at the root.
bench-graphindex:
	SST_BENCH_QUICK=1 $(PY) -m pytest benchmarks/test_graphindex_scaling.py -q

# Batch-kernel benchmark, quick mode (the CI "bench-kernel" job).
# Hard-gates bit-identical kernel/naive matrices and the 5x sweep
# speedup, and compares against the committed BENCH_kernel.json; run
# without SST_BENCH_QUICK=1 for the nightly full-size configuration.
bench-kernel:
	SST_BENCH_QUICK=1 $(PY) -m pytest benchmarks/test_kernel_scaling.py -q

# Warm-start scale ladder, quick mode (the CI "bench-scale" job).
# Hard-gates bit-identical loaded/compiled indexes and the 5x
# warm-start speedup at the 10k rung; run without SST_BENCH_QUICK=1 to
# add the 100k WordNet-scale rung and regenerate BENCH_scale.json at
# the root.
bench-scale:
	SST_BENCH_QUICK=1 $(PY) -m pytest benchmarks/test_scale.py -q

# Service throughput + overload posture, quick mode.  Non-gating on
# timings (loopback HTTP is too noisy to band) but hard on overload
# correctness: typed 429s with Retry-After, zero 500s.  Regenerates
# BENCH_serve.json at the root; run without SST_BENCH_QUICK=1 for the
# nightly full-size configuration (results directory only).
bench-serve:
	SST_BENCH_QUICK=1 $(PY) -m pytest benchmarks/test_serve_overload.py -q

# The full benchmark suite (not run in CI; slow).
bench:
	$(PY) -m pytest benchmarks -q
