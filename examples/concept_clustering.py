#!/usr/bin/env python3
"""Concept clustering with SST — the "data clustering and mining"
application area (paper sections 1 and 3).

Takes a mixed bag of concepts from four ontologies, computes an SST
similarity matrix, renders it as a heatmap, and clusters it
agglomeratively — recovering the person / organization / publication
domains without being told about them.

Run:  python examples/concept_clustering.py
"""

from pathlib import Path

from repro import Measure, SOQASimPackToolkit, load_corpus
from repro.cluster import ConceptClusterer

OUTPUT_DIR = Path(__file__).parent / "output"

CONCEPTS = [
    ("univ-bench_owl", "Professor"),
    ("univ-bench_owl", "Lecturer"),
    ("base1_0_daml", "Professor"),
    ("swrc_owl", "PhDStudent"),
    ("univ-bench_owl", "University"),
    ("univ-bench_owl", "Department"),
    ("swrc_owl", "Institute"),
    ("univ-bench_owl", "Article"),
    ("univ-bench_owl", "Book"),
    ("swrc_owl", "InProceedings"),
]


def main() -> None:
    sst = SOQASimPackToolkit(load_corpus())
    clusterer = ConceptClusterer(sst, Measure.TFIDF, linkage="average")

    print("Similarity heatmap (TFIDF):\n")
    chart = sst.get_matrix_plot(CONCEPTS, Measure.TFIDF)
    print(chart.to_ascii())
    paths = chart.save(OUTPUT_DIR, stem="clustering_heatmap")
    print("\nheatmap artifacts:", ", ".join(str(path) for path in paths))

    print("\nDendrogram:\n")
    print(clusterer.dendrogram(CONCEPTS))

    print("\nFlat clusters (threshold 0.16):\n")
    for index, group in enumerate(clusterer.cluster(CONCEPTS,
                                                    threshold=0.16),
                                  start=1):
        members = ", ".join(f"{ontology}:{concept}"
                            for ontology, concept in group)
        print(f"  cluster {index}: {members}")


if __name__ == "__main__":
    main()
