#!/usr/bin/env python3
"""The paper's announced measure evaluation study (section 6).

"Besides, we intend to do a thorough evaluation to find the best
performing similarity measures in different task domains" — this example
runs that study for two task domains and prints ranked results:

1. **Alignment**: which measure best aligns univ-bench with the DAML
   University ontology (same domain, similar naming)?
2. **Retrieval**: which measure best retrieves the professor family when
   querying with base1_0_daml:Professor (precision@10 against a
   hand-made relevance set)?

Run:  python examples/measure_study.py
"""

from repro import Measure, SOQASimPackToolkit, load_corpus
from repro.align.study import MeasureStudy

ALIGNMENT_REFERENCE = [
    ("Person", "Person"), ("Employee", "Employee"),
    ("Faculty", "Faculty"), ("Professor", "Professor"),
    ("AssistantProfessor", "AssistantProfessor"),
    ("AssociateProfessor", "AssociateProfessor"),
    ("FullProfessor", "FullProfessor"), ("Lecturer", "Lecturer"),
    ("Chair", "Chair"), ("Dean", "Dean"), ("Student", "Student"),
    ("GraduateStudent", "GraduateStudent"),
    ("UndergraduateStudent", "UndergraduateStudent"),
    ("Organization", "Organization"), ("University", "University"),
    ("Department", "Department"), ("Course", "Course"),
    ("Publication", "Publication"), ("Article", "Article"),
    ("Book", "Book"),
]

STUDIED_MEASURES = (
    Measure.NAME_LEVENSHTEIN, Measure.JARO_WINKLER, Measure.QGRAM,
    Measure.MONGE_ELKAN, Measure.TFIDF, Measure.LEVENSHTEIN,
    Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH, Measure.LIN,
    Measure.EXTENSIONAL,
)

#: Concepts counted as relevant when retrieving for
#: base1_0_daml:Professor across all five ontologies.
RELEVANT_FOR_PROFESSOR = {
    ("base1_0_daml", "Professor"),
    ("base1_0_daml", "AssistantProfessor"),
    ("base1_0_daml", "AssociateProfessor"),
    ("base1_0_daml", "FullProfessor"),
    ("base1_0_daml", "EmeritusProfessor"),
    ("base1_0_daml", "Faculty"),
    ("base1_0_daml", "Lecturer"),
    ("univ-bench_owl", "Professor"),
    ("univ-bench_owl", "AssistantProfessor"),
    ("univ-bench_owl", "AssociateProfessor"),
    ("univ-bench_owl", "FullProfessor"),
    ("univ-bench_owl", "VisitingProfessor"),
    ("univ-bench_owl", "Faculty"),
    ("COURSES", "PROFESSOR"),
    ("swrc_owl", "FullProfessor"),
    ("swrc_owl", "AssociateProfessor"),
    ("swrc_owl", "AssistantProfessor"),
    ("swrc_owl", "FacultyMember"),
}


def alignment_study(sst: SOQASimPackToolkit) -> None:
    print("Task domain 1 — alignment "
          "(univ-bench_owl vs base1_0_daml):\n")
    study = MeasureStudy(sst, "univ-bench_owl", "base1_0_daml",
                         ALIGNMENT_REFERENCE)
    results = study.run(STUDIED_MEASURES)
    print(study.report(results))


def retrieval_study(sst: SOQASimPackToolkit) -> None:
    print("\nTask domain 2 — retrieval "
          "(precision@10 for base1_0_daml:Professor):\n")
    scored = []
    for measure in STUDIED_MEASURES:
        top = sst.get_most_similar_concepts("Professor", "base1_0_daml",
                                            k=10, measure=measure)
        hits = sum(1 for entry in top
                   if (entry.ontology_name,
                       entry.concept_name) in RELEVANT_FOR_PROFESSOR)
        scored.append((hits / 10.0, sst.runner(measure).name))
    scored.sort(reverse=True)
    for rank, (precision, measure_name) in enumerate(scored, start=1):
        print(f"  {rank:2d}. {measure_name:24s} precision@10 = "
              f"{precision:.2f}")


def main() -> None:
    sst = SOQASimPackToolkit(load_corpus())
    alignment_study(sst)
    retrieval_study(sst)
    print("\nTakeaway: lexical measures dominate when naming conventions "
          "agree;\nstructural measures only separate concepts *within* a "
          "taxonomy, which is\nexactly the division of labor the paper's "
          "measure families suggest.")


if __name__ == "__main__":
    main()
