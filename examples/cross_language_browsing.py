#!/usr/bin/env python3
"""Cross-language similarity and declarative querying.

Reproduces two capabilities the paper singles out:

* comparing concepts across *languages* — "Student from the PowerLoom
  Course Ontology can be compared with Researcher from WordNet"
  (section 3), and
* unified inspection of ontologies with SOQA-QL and the browser views,
  independent of the ontology language (section 4).

Run:  python examples/cross_language_browsing.py
"""

from repro import Measure, SOQASimPackToolkit
from repro.browser.views import render_hierarchy, render_metadata
from repro.ontologies import load_course_ontology, load_wordnet
from repro.soqa.api import SOQA
from repro.soqa.soqaql import SOQAQLEngine


def main() -> None:
    # A PowerLoom ontology and a WordNet lexical ontology side by side.
    soqa = SOQA()
    load_course_ontology(soqa)
    load_wordnet(soqa)
    sst = SOQASimPackToolkit(soqa)

    print("The paper's cross-language example — COURSES:STUDENT vs "
          "WordNet concepts:\n")
    for wordnet_concept in ("researcher", "student", "professor",
                            "scholar", "blackbird"):
        values = sst.get_similarities(
            "STUDENT", "COURSES", wordnet_concept, "wordnet",
            [Measure.SHORTEST_PATH, Measure.TFIDF,
             Measure.NAME_LEVENSHTEIN])
        rendered = "  ".join(f"{name}={value:.3f}"
                             for name, value in values.items())
        print(f"  wordnet:{wordnet_concept:12s} {rendered}")

    print("\nWordNet's own neighborhood of 'researcher' "
          "(Conceptual Similarity):")
    for entry in sst.get_most_similar_concepts(
            "researcher", "wordnet",
            subtree_root_concept_name="person",
            subtree_ontology_name="wordnet",
            k=5, measure=Measure.CONCEPTUAL_SIMILARITY):
        print(f"  {entry}")

    # --- Browser panes, language independent ------------------------------
    print("\n" + render_metadata(sst, "COURSES"))
    print("\n" + render_hierarchy(sst, "COURSES", root="PERSON"))

    # --- SOQA-QL -----------------------------------------------------------
    engine = SOQAQLEngine(soqa)
    print("\nSOQA-QL: all WordNet concepts glossed as persons:\n")
    result = engine.execute(
        "SELECT name, documentation FROM concepts IN wordnet "
        "WHERE documentation LIKE '%person%' ORDER BY name LIMIT 8")
    print(result.to_text())

    print("\nSOQA-QL: PowerLoom relations and their arity:\n")
    result = engine.execute(
        "SELECT name, concept, arity FROM relationships IN 'COURSES' "
        "ORDER BY name")
    print(result.to_text())


if __name__ == "__main__":
    main()
