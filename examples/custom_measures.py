#!/usr/bin/env python3
"""Extending the toolkit: custom MeasureRunners, combined measures, and a
custom ontology-language wrapper.

The paper stresses both extension axes (section 6): "further ontology
languages can easily be integrated into SOQA by providing supplementary
SOQA wrappers, and ... additional similarity measures by supplying
further MeasureRunner implementations."  This example does both:

1. a supplementary MeasureRunner (documentation-token Dice overlap),
2. an Ehrig-style combined measure amalgamating three runners,
3. a new SOQA wrapper for a toy CSV taxonomy format, used in the very
   same similarity calculations as the bundled OWL ontology.

Run:  python examples/custom_measures.py
"""

from repro import Measure, SOQASimPackToolkit
from repro.core.runners import MeasureRunner
from repro.ontologies import load_univ_bench
from repro.simpack.text.tokenizer import tokenize
from repro.soqa.api import SOQA
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata
from repro.soqa.wrapper import OntologyWrapper, default_registry


# --- 1. A supplementary MeasureRunner -------------------------------------


class DocumentationDiceRunner(MeasureRunner):
    """Dice overlap of the concepts' documentation token sets."""

    name = "Documentation Dice"
    description = "2*|A∩B| / (|A|+|B|) over documentation tokens"

    def _tokens(self, concept) -> set[str]:
        meta_concept = self.wrapper.soqa.concept(concept.concept_name,
                                                 concept.ontology_name)
        return set(tokenize(meta_concept.documentation))

    def run(self, first, second) -> float:
        first_tokens = self._tokens(first)
        second_tokens = self._tokens(second)
        total = len(first_tokens) + len(second_tokens)
        if total == 0:
            return 1.0 if first == second else 0.0
        return 2.0 * len(first_tokens & second_tokens) / total


# --- 3. A supplementary SOQA wrapper ---------------------------------------


class CSVTaxonomyWrapper(OntologyWrapper):
    """A toy ontology language: ``concept,parent,documentation`` lines."""

    language = "CSVTaxonomy"
    suffixes = (".csvtax",)

    def parse(self, text: str, name: str) -> Ontology:
        concepts = []
        for line in text.strip().splitlines():
            if not line or line.startswith("#"):
                continue
            concept_name, parent, documentation = (
                part.strip() for part in line.split(",", 2))
            concepts.append(Concept(
                name=concept_name,
                documentation=documentation,
                superconcept_names=[parent] if parent else [],
            ))
        metadata = OntologyMetadata(name=name, language=self.language)
        return Ontology(metadata, concepts)


CSV_TAXONOMY = """
# concept, parent, documentation
Staff,,A member of the university staff
Academic,Staff,A staff member who teaches and researches
Prof,Academic,A senior academic holding a professorship
Postdoc,Academic,A researcher holding a recent doctorate
Admin,Staff,A staff member doing administration
"""


def main() -> None:
    # Register the custom wrapper alongside the bundled ones.
    registry = default_registry()
    registry.register(CSVTaxonomyWrapper())
    soqa = SOQA(registry)
    load_univ_bench(soqa)
    soqa.load_text(CSV_TAXONOMY, "csvtax", "CSVTaxonomy")
    sst = SOQASimPackToolkit(soqa)
    print("Loaded languages:", ", ".join(soqa.languages_in_use()))

    # Register the supplementary runner and a combined measure.
    doc_dice = sst.register_measure_runner("Documentation Dice",
                                           DocumentationDiceRunner)
    combined = sst.register_combined_measure(
        "doc+path+name",
        [doc_dice, Measure.SHORTEST_PATH, Measure.JARO_WINKLER],
        weights=[2.0, 1.0, 1.0])
    print("Registered measures:", doc_dice, "and", combined, "\n")

    pairs = [
        ("Professor", "univ-bench_owl", "Prof", "csvtax"),
        ("PostDoc", "univ-bench_owl", "Postdoc", "csvtax"),
        ("AdministrativeStaff", "univ-bench_owl", "Admin", "csvtax"),
        ("Course", "univ-bench_owl", "Prof", "csvtax"),
    ]
    header = (f"{'pair':55s} {'DocDice':>8s} {'Combined':>9s}")
    print(header)
    print("-" * len(header))
    for first, first_onto, second, second_onto in pairs:
        dice_value = sst.get_similarity(first, first_onto, second,
                                        second_onto, doc_dice)
        combined_value = sst.get_similarity(first, first_onto, second,
                                            second_onto, combined)
        label = f"{first_onto}:{first} vs {second_onto}:{second}"
        print(f"{label:55s} {dice_value:8.4f} {combined_value:9.4f}")

    print("\nMost similar univ-bench concepts for csvtax:Prof "
          "(combined measure):")
    for entry in sst.get_most_similar_concepts(
            "Prof", "csvtax",
            subtree_root_concept_name="Person",
            subtree_ontology_name="univ-bench_owl",
            k=5, measure=combined):
        print(f"  {entry}")


if __name__ == "__main__":
    main()
