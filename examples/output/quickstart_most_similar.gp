set title "10 most similar concepts for base1_0_daml:Professor (Shortest Path)"
set terminal png size 900,480
set output "quickstart_most_similar.png"
set style data histogram
set style fill solid 0.8 border -1
set boxwidth 0.8
set ylabel "similarity"
set yrange [0:*]
set xtics rotate by -35
set grid ytics
plot "chart.dat" using 2:xtic(1) notitle
