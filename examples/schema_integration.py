#!/usr/bin/env python3
"""The paper's running example: schema integration support.

Section 1's scenario: a developer of an integrated university
information system has database schema elements linked to concepts of
five different ontologies and must find semantically equivalent
elements.  This example models a handful of schema elements from three
"databases", each annotated with a concept from a different ontology,
and uses SST to propose integration candidates.

Run:  python examples/schema_integration.py
"""

from dataclasses import dataclass

from repro import Measure, SOQASimPackToolkit, load_corpus


@dataclass(frozen=True)
class SchemaElement:
    """A database schema element annotated with an ontology concept."""

    database: str
    table: str
    concept_name: str
    ontology_name: str

    def __str__(self) -> str:
        return (f"{self.database}.{self.table} "
                f"[{self.ontology_name}:{self.concept_name}]")


SCHEMA_ELEMENTS = [
    # Legacy student-administration database, annotated with univ-bench.
    SchemaElement("studentdb", "persons", "Person", "univ-bench_owl"),
    SchemaElement("studentdb", "professors", "FullProfessor",
                  "univ-bench_owl"),
    SchemaElement("studentdb", "grads", "GraduateStudent",
                  "univ-bench_owl"),
    # HR database, annotated with the PowerLoom Course ontology.
    SchemaElement("hrdb", "staff", "EMPLOYEE", "COURSES"),
    SchemaElement("hrdb", "lecturers", "LECTURER", "COURSES"),
    SchemaElement("hrdb", "phd_candidates", "PHD-STUDENT", "COURSES"),
    # Publications database, annotated with SWRC and the DAML ontology.
    SchemaElement("pubdb", "authors", "Person", "swrc_owl"),
    SchemaElement("pubdb", "faculty", "Professor", "base1_0_daml"),
    SchemaElement("pubdb", "theses", "PhDThesis", "swrc_owl"),
]

#: Pairs above this TFIDF similarity are proposed as integration
#: candidates.
THRESHOLD = 0.15


def main() -> None:
    sst = SOQASimPackToolkit(load_corpus())

    print("Schema elements and their ontology annotations:")
    for element in SCHEMA_ELEMENTS:
        print(f"  {element}")
    print()

    print(f"Integration candidates (TFIDF > {THRESHOLD}, across "
          "databases):\n")
    candidates = []
    for index, first in enumerate(SCHEMA_ELEMENTS):
        for second in SCHEMA_ELEMENTS[index + 1:]:
            if first.database == second.database:
                continue  # only cross-database matches are interesting
            similarity = sst.get_similarity(
                first.concept_name, first.ontology_name,
                second.concept_name, second.ontology_name, Measure.TFIDF)
            if similarity > THRESHOLD:
                candidates.append((similarity, first, second))
    candidates.sort(key=lambda entry: -entry[0])
    for similarity, first, second in candidates:
        print(f"  {similarity:.4f}  {first}")
        print(f"          ≈ {second}\n")

    # For one unmatched element, ask SST for the closest concepts of a
    # specific foreign ontology subtree to guide manual mapping.
    print("Closest univ-bench Person-subtree concepts for "
          "COURSES:PHD-STUDENT (Conceptual Similarity):")
    for entry in sst.get_most_similar_concepts(
            "PHD-STUDENT", "COURSES",
            subtree_root_concept_name="Person",
            subtree_ontology_name="univ-bench_owl",
            k=5, measure=Measure.CONCEPTUAL_SIMILARITY):
        print(f"  {entry}")


if __name__ == "__main__":
    main()
