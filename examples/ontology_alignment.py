#!/usr/bin/env python3
"""Ontology alignment with SST: univ-bench (OWL) vs the DAML University
ontology.

The paper motivates SST with ontology alignment and integration.  This
example runs the greedy matcher over three measures (TFIDF, name-based
Jaro-Winkler, and an Ehrig-style combination of both), evaluates each
alignment against a hand-made reference, and prints precision / recall /
F-measure — showing how combined measures beat single ones.

Run:  python examples/ontology_alignment.py
"""

from repro import Measure, SOQASimPackToolkit, load_corpus
from repro.align import OntologyMatcher, evaluate_alignment

#: Hand-made reference alignment between univ-bench and univ1.0.daml
#: (concept-name pairs; both ontologies model the university domain).
REFERENCE = [
    ("Person", "Person"),
    ("Employee", "Employee"),
    ("Faculty", "Faculty"),
    ("Professor", "Professor"),
    ("AssistantProfessor", "AssistantProfessor"),
    ("AssociateProfessor", "AssociateProfessor"),
    ("FullProfessor", "FullProfessor"),
    ("Lecturer", "Lecturer"),
    ("Chair", "Chair"),
    ("Dean", "Dean"),
    ("Student", "Student"),
    ("GraduateStudent", "GraduateStudent"),
    ("UndergraduateStudent", "UndergraduateStudent"),
    ("TeachingAssistant", "TeachingAssistant"),
    ("ResearchAssistant", "ResearchAssistant"),
    ("Organization", "Organization"),
    ("University", "University"),
    ("Department", "Department"),
    ("ResearchGroup", "ResearchGroup"),
    ("Course", "Course"),
    ("GraduateCourse", "GraduateCourse"),
    ("Research", "Research"),
    ("Publication", "Publication"),
    ("Article", "Article"),
    ("Book", "Book"),
    ("TechnicalReport", "TechnicalReport"),
    ("AdministrativeStaff", "AdministrativeStaff"),
]


def run_matcher(sst, measure, threshold: float, label: str) -> None:
    matcher = OntologyMatcher(sst, measure=measure, threshold=threshold)
    alignment = matcher.match("univ-bench_owl", "base1_0_daml")
    quality = evaluate_alignment(alignment, REFERENCE)
    print(f"{label:34s} {len(alignment):3d} correspondences   {quality}")
    return alignment


def main() -> None:
    sst = SOQASimPackToolkit(load_corpus())

    print("Aligning univ-bench_owl (OWL, 43 concepts) with base1_0_daml "
          "(DAML, 35 concepts)\n")
    print(f"{'matcher':34s} {'size':>3s}")

    run_matcher(sst, Measure.TFIDF, 0.30, "TFIDF (descriptions)")
    run_matcher(sst, Measure.JARO_WINKLER, 0.90, "Jaro-Winkler (names)")

    combined_id = sst.register_combined_measure(
        "align-combined", [Measure.TFIDF, Measure.JARO_WINKLER],
        weights=[1.0, 2.0])
    alignment = run_matcher(sst, combined_id, 0.75,
                            "Combined (TFIDF + 2x Jaro-Winkler)")

    print("\nSample correspondences of the combined matcher:")
    for correspondence in alignment[:8]:
        print(f"  {correspondence}")

    print("\nTop candidates for one tricky concept "
          "(univ-bench_owl:College has no DAML counterpart):")
    matcher = OntologyMatcher(sst, measure=combined_id)
    for candidate in matcher.top_candidates("College", "univ-bench_owl",
                                            "base1_0_daml", k=3):
        print(f"  {candidate}")


if __name__ == "__main__":
    main()
