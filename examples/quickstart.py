#!/usr/bin/env python3
"""Quickstart: similarity detection over the paper's five-ontology corpus.

Loads the 943-concept corpus (Lehigh univ-bench, SIRUP Course ontology,
DAML University, SWRC, SUMO — three different ontology languages), then
walks through the core SST services:

* the similarity of two concepts under one measure and under all six
  Table-1 measures (signature S1),
* the k most similar / most dissimilar concepts (signature S2),
* a similarity chart, saved as SVG + Gnuplot inputs (signature S3).

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import Measure, SOQASimPackToolkit, load_corpus

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    print("Loading the five-ontology corpus through SOQA...")
    sst = SOQASimPackToolkit(load_corpus())
    for name in sst.ontology_names():
        ontology = sst.soqa.ontology(name)
        print(f"  {name:16s} {ontology.language:10s} "
              f"{len(ontology):4d} concepts")
    print(f"  total: {sst.concept_count()} concepts\n")

    # --- Signature S1: similarity of two concepts -------------------------
    value = sst.get_similarity("Professor", "base1_0_daml",
                               "AssistantProfessor", "univ-bench_owl",
                               Measure.TFIDF)
    print("TFIDF(base1_0_daml:Professor, univ-bench_owl:AssistantProfessor)"
          f" = {value:.4f}\n")

    print("All Table-1 measures for the same pair:")
    values = sst.get_similarities("Professor", "base1_0_daml",
                                  "AssistantProfessor", "univ-bench_owl")
    for measure_name, measure_value in values.items():
        print(f"  {measure_name:22s} {measure_value:.4f}")
    print()

    # --- Signature S2: the k most similar concepts ------------------------
    print("The 5 most similar concepts for base1_0_daml:Professor "
          "(Shortest Path):")
    for entry in sst.get_most_similar_concepts(
            "Professor", "base1_0_daml", k=5,
            measure=Measure.SHORTEST_PATH):
        print(f"  {entry}")
    print()

    print("...and the 3 most dissimilar (TFIDF):")
    for entry in sst.get_most_dissimilar_concepts(
            "Professor", "base1_0_daml", k=3, measure=Measure.TFIDF):
        print(f"  {entry}")
    print()

    # --- Signature S3: visualization --------------------------------------
    chart = sst.get_most_similar_plot("Professor", "base1_0_daml", k=10,
                                      measure=Measure.SHORTEST_PATH)
    print(chart.to_ascii())
    paths = chart.save(OUTPUT_DIR, stem="quickstart_most_similar")
    print("\nChart artifacts written:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
