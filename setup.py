from setuptools import setup

# Metadata lives in pyproject.toml; this stub enables legacy editable
# installs (`pip install -e .`) on machines without the `wheel` package.
setup()
