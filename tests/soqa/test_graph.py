"""Unit tests for the taxonomy graph algorithms."""

import pytest

from repro.errors import UnknownConceptError
from repro.soqa.graph import Taxonomy


@pytest.fixture
def tree() -> Taxonomy:
    """Thing -> (Person -> (Employee -> Professor, Student),
    Animal -> Bird -> Blackbird)."""
    return Taxonomy({
        "Thing": [],
        "Person": ["Thing"],
        "Employee": ["Person"],
        "Professor": ["Employee"],
        "Student": ["Person"],
        "Animal": ["Thing"],
        "Bird": ["Animal"],
        "Blackbird": ["Bird"],
    })


@pytest.fixture
def dag() -> Taxonomy:
    """A diamond with an extra deep chain for max-depth checks."""
    return Taxonomy({
        "Root": [],
        "A": ["Root"],
        "B": ["Root"],
        "C": ["A", "B"],
        "D": ["C"],
        "Deep1": ["Root"],
        "Deep2": ["Deep1"],
        "Deep3": ["Deep2"],
        "Deep4": ["Deep3"],
    })


class TestStructure:
    def test_roots_and_leaves(self, tree):
        assert tree.roots() == ["Thing"]
        assert set(tree.leaves()) == {"Professor", "Student", "Blackbird"}

    def test_parents_children(self, tree):
        assert tree.parents("Professor") == ("Employee",)
        assert tree.children("Person") == ["Employee", "Student"]

    def test_unknown_node_raises(self, tree):
        with pytest.raises(UnknownConceptError):
            tree.depth("Ghost")
        with pytest.raises(UnknownConceptError):
            tree.parents("Ghost")

    def test_unknown_parent_rejected_at_construction(self):
        with pytest.raises(UnknownConceptError):
            Taxonomy({"A": ["Missing"]})

    def test_len_and_contains(self, tree):
        assert len(tree) == 8
        assert "Bird" in tree
        assert "Fish" not in tree


class TestDepth:
    def test_depth_of_root_is_zero(self, tree):
        assert tree.depth("Thing") == 0

    def test_depth_counts_edges(self, tree):
        assert tree.depth("Professor") == 3
        assert tree.depth("Blackbird") == 3

    def test_depth_uses_shortest_parent_path(self, dag):
        assert dag.depth("C") == 2
        assert dag.depth("D") == 3

    def test_max_depth_is_longest_path(self, dag):
        assert dag.max_depth() == 4  # Root -> Deep1..Deep4

    def test_max_depth_single_node(self):
        assert Taxonomy({"Only": []}).max_depth() == 0


class TestAncestors:
    def test_ancestors_with_distance(self, tree):
        distances = tree.ancestors_with_distance("Professor")
        assert distances == {"Professor": 0, "Employee": 1, "Person": 2,
                             "Thing": 3}

    def test_common_ancestors(self, tree):
        assert tree.common_ancestors("Professor", "Student") == {
            "Person", "Thing"}

    def test_mrca_minimizes_total_distance(self, tree):
        assert tree.mrca("Professor", "Student") == ("Person", 2, 1)

    def test_mrca_of_node_with_itself(self, tree):
        assert tree.mrca("Bird", "Bird") == ("Bird", 0, 0)

    def test_mrca_with_ancestor(self, tree):
        assert tree.mrca("Professor", "Person") == ("Person", 2, 0)

    def test_mrca_none_for_separate_components(self):
        forest = Taxonomy({"A": [], "B": []})
        assert forest.mrca("A", "B") is None

    def test_mrca_tie_breaks_deterministically(self, dag):
        # C's parents A and B both give total distance 2 and equal depth.
        ancestor, n1, n2 = dag.mrca("A", "B")
        assert ancestor == "Root"
        # From C, both A and B are ancestors at distance 1; ties on the
        # key pick the lexicographically smaller name.
        ancestor_c, _, _ = dag.mrca("C", "C")
        assert ancestor_c == "C"


class TestShortestPath:
    def test_identity_distance_zero(self, tree):
        assert tree.shortest_path_length("Bird", "Bird") == 0

    def test_via_ancestor_distance(self, tree):
        assert tree.shortest_path_length("Professor", "Student") == 3
        assert tree.shortest_path_length("Professor", "Blackbird") == 6

    def test_any_path_equals_via_ancestor_in_tree(self, tree):
        for pair in [("Professor", "Student"), ("Student", "Blackbird")]:
            assert tree.shortest_path_length(*pair, policy="any") == \
                tree.shortest_path_length(*pair, policy="via_ancestor")

    def test_any_path_can_beat_via_ancestor_in_dag(self):
        # X and Y share only the root upward, but share the child C:
        # via_ancestor = 2 + 2 = wait, both distance 1 from Root -> 2;
        # build a case where the descendant path is shorter.
        taxonomy = Taxonomy({
            "R": [],
            "M1": ["R"], "M2": ["M1"],
            "X": ["M2"],
            "Y": ["R"],
            "C": ["X", "Y"],
        })
        via = taxonomy.shortest_path_length("X", "Y")
        any_path = taxonomy.shortest_path_length("X", "Y", policy="any")
        assert via == 4  # X -> M2 -> M1 -> R -> Y
        assert any_path == 2  # X -> C -> Y through the common descendant

    def test_unreachable_returns_none(self):
        forest = Taxonomy({"A": [], "B": []})
        assert forest.shortest_path_length("A", "B") is None
        assert forest.shortest_path_length("A", "B", policy="any") is None

    def test_unknown_policy_raises(self, tree):
        with pytest.raises(ValueError):
            tree.shortest_path_length("Bird", "Thing", policy="warp")


class TestSubtreeStatistics:
    def test_descendant_count_includes_self(self, tree):
        assert tree.descendant_count("Professor") == 1
        assert tree.descendant_count("Person") == 4
        assert tree.descendant_count("Thing") == 8

    def test_descendant_count_no_double_count_in_dag(self, dag):
        assert dag.descendant_count("Root") == 9

    def test_descendants_excludes_self(self, tree):
        assert tree.descendants("Animal") == {"Bird", "Blackbird"}

    def test_path_to_root_deterministic(self, dag):
        # C has parents A and B at equal depth; the lexicographically
        # smaller (A) is chosen.
        assert dag.path_to_root("D") == ["D", "C", "A", "Root"]

    def test_path_to_root_of_root(self, tree):
        assert tree.path_to_root("Thing") == ["Thing"]
