"""Unit tests for the Ontolingua, SHOE and RDFS wrappers."""

import pytest

from repro.errors import OntologyParseError
from repro.soqa.wrappers.ontolingua import OntolinguaWrapper
from repro.soqa.wrappers.rdfs import RDFSWrapper
from repro.soqa.wrappers.shoe import SHOEWrapper

ONTOLINGUA_TEXT = """
;;; A small university frame ontology in Ontolingua/KIF style.
(define-ontology University-Ontology
  :documentation "Frames for universities" :version "2.1")

(define-class Person (?x)
  :documentation "A human being")

(define-class Employee (?x)
  :def (and (Person ?x))
  :documentation "A person employed by the university")

(define-class Professor (?x)
  :def (and (Employee ?x) (Has-Tenure ?x Department))
  :documentation "A senior academic")

(define-relation Teaches (?prof ?course)
  :def (and (Professor ?prof) (Course ?course))
  :documentation "The professor teaches the course")

(define-relation Name-Of (?person ?name)
  :def (and (Person ?person) (String ?name)))

(define-function Salary-Of (?emp) :-> ?amount
  :def (and (Employee ?emp) (Number ?amount))
  :documentation "The employee's salary")

(define-class Course (?c))

(define-instance KR-101 (Course)
  :documentation "Introduction to knowledge representation")
"""

SHOE_TEXT = """
<ONTOLOGY ID="university-ont" VERSION="1.0">
  <USE-ONTOLOGY ID="base-ontology" VERSION="1.0" PREFIX="base">
  <DEF-CATEGORY NAME="Person" SHORT="a human being">
  <DEF-CATEGORY NAME="Employee" ISA="Person"
                SHORT="a person employed by the university">
  <DEF-CATEGORY NAME="Professor" ISA="Employee" SHORT="a senior academic">
  <DEF-CATEGORY NAME="Chair" ISA="Professor Employee">
  <DEF-CATEGORY NAME="Course" SHORT="a university course">
  <DEF-RELATION NAME="teaches" SHORT="who teaches what">
    <DEF-ARG POS="1" TYPE="Professor">
    <DEF-ARG POS="2" TYPE="Course">
  </DEF-RELATION>
  <DEF-RELATION NAME="name">
    <DEF-ARG POS="1" TYPE="Person">
    <DEF-ARG POS="2" TYPE=".STRING">
  </DEF-RELATION>
  <DEF-CONSTANT NAME="cs101" CATEGORY="Course">
</ONTOLOGY>
"""

RDFS_TEXT = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xml:base="http://example.org/vocab">
  <rdfs:Class rdf:ID="Person">
    <rdfs:comment>A human being</rdfs:comment>
  </rdfs:Class>
  <rdfs:Class rdf:ID="Employee">
    <rdfs:subClassOf rdf:resource="#Person"/>
  </rdfs:Class>
  <rdf:Property rdf:ID="worksFor">
    <rdfs:domain rdf:resource="#Employee"/>
    <rdfs:range rdf:resource="#Person"/>
  </rdf:Property>
  <rdf:Property rdf:ID="name">
    <rdfs:domain rdf:resource="#Person"/>
    <rdfs:range rdf:resource="http://www.w3.org/2001/XMLSchema#string"/>
  </rdf:Property>
</rdf:RDF>
"""


class TestOntolinguaWrapper:
    @pytest.fixture
    def ontology(self):
        return OntolinguaWrapper().parse(ONTOLINGUA_TEXT, "univ-onto")

    def test_classes_and_hierarchy(self, ontology):
        assert ontology.concept("Professor").superconcept_names == [
            "Employee"]
        assert ontology.concept("Employee").superconcept_names == ["Person"]

    def test_metadata(self, ontology):
        assert ontology.metadata.documentation == "Frames for universities"
        assert ontology.metadata.version == "2.1"
        assert ontology.metadata.uri == "ontolingua:University-Ontology"
        assert ontology.language == "Ontolingua"

    def test_typed_relation_becomes_relationship(self, ontology):
        relationships = ontology.concept("Professor").relationships
        assert [r.name for r in relationships] == ["Teaches"]
        assert relationships[0].related_concept_names == ["Professor",
                                                          "Course"]

    def test_datatype_relation_becomes_attribute(self, ontology):
        attributes = ontology.concept("Person").attributes
        assert [a.name for a in attributes] == ["Name-Of"]
        assert attributes[0].data_type == "string"

    def test_function_becomes_method(self, ontology):
        methods = ontology.concept("Employee").methods
        assert [m.name for m in methods] == ["Salary-Of"]
        assert methods[0].return_type == "number"

    def test_instance(self, ontology):
        instances = ontology.concept("Course").instances
        assert [i.name for i in instances] == ["KR-101"]

    def test_def_without_and_wrapper(self):
        text = "(define-class B (?x) :def (A ?x))\n(define-class A (?x))"
        ontology = OntolinguaWrapper().parse(text, "o")
        assert ontology.concept("B").superconcept_names == ["A"]

    def test_malformed_define_class_raises(self):
        with pytest.raises(OntologyParseError):
            OntolinguaWrapper().parse("(define-class)", "bad")

    def test_malformed_relation_raises(self):
        with pytest.raises(OntologyParseError):
            OntolinguaWrapper().parse("(define-relation R)", "bad")


class TestSHOEWrapper:
    @pytest.fixture
    def ontology(self):
        return SHOEWrapper().parse(SHOE_TEXT, "univ-shoe")

    def test_categories_and_hierarchy(self, ontology):
        assert ontology.concept("Professor").superconcept_names == [
            "Employee"]
        assert ontology.concept("Person").documentation == "a human being"

    def test_multiple_isa_parents(self, ontology):
        assert ontology.concept("Chair").superconcept_names == [
            "Professor", "Employee"]

    def test_metadata(self, ontology):
        assert ontology.metadata.version == "1.0"
        assert ontology.metadata.uri == "shoe:university-ont"
        assert ontology.language == "SHOE"

    def test_typed_relation(self, ontology):
        relationships = ontology.concept("Professor").relationships
        assert [r.name for r in relationships] == ["teaches"]
        assert relationships[0].related_concept_names == ["Professor",
                                                          "Course"]

    def test_datatype_relation_becomes_attribute(self, ontology):
        attributes = ontology.concept("Person").attributes
        assert [a.name for a in attributes] == ["name"]
        assert attributes[0].data_type == "string"

    def test_constant_becomes_instance(self, ontology):
        assert [i.name
                for i in ontology.concept("Course").instances] == ["cs101"]

    def test_prefixed_isa_stripped(self):
        text = ('<ONTOLOGY ID="o" VERSION="1">'
                '<DEF-CATEGORY NAME="Base">'
                '<DEF-CATEGORY NAME="Derived" ISA="base.Base">'
                "</ONTOLOGY>")
        ontology = SHOEWrapper().parse(text, "o")
        assert ontology.concept("Derived").superconcept_names == ["Base"]

    def test_ontology_inside_html(self):
        text = f"<html><body>{SHOE_TEXT}</body></html>"
        ontology = SHOEWrapper().parse(text, "o")
        assert "Professor" in ontology

    def test_missing_ontology_element_raises(self):
        with pytest.raises(OntologyParseError, match="ONTOLOGY"):
            SHOEWrapper().parse("<html><body>nope</body></html>", "bad")

    def test_category_without_name_raises(self):
        text = '<ONTOLOGY ID="o"><DEF-CATEGORY SHORT="x"></ONTOLOGY>'
        with pytest.raises(OntologyParseError, match="NAME"):
            SHOEWrapper().parse(text, "bad")


class TestRDFSWrapper:
    @pytest.fixture
    def ontology(self):
        return RDFSWrapper().parse(RDFS_TEXT, "vocab")

    def test_classes(self, ontology):
        assert ontology.concept("Employee").superconcept_names == ["Person"]
        assert ontology.language == "RDFS"

    def test_object_valued_property_is_relationship(self, ontology):
        relationships = ontology.concept("Employee").relationships
        assert [r.name for r in relationships] == ["worksFor"]

    def test_datatype_property_is_attribute(self, ontology):
        attributes = ontology.concept("Person").attributes
        assert [a.name for a in attributes] == ["name"]
        assert attributes[0].data_type == "string"


class TestSevenLanguageRegistry:
    def test_all_languages_registered(self):
        from repro.soqa.wrapper import default_registry

        assert default_registry().languages() == [
            "DAML", "N-Triples", "OWL", "OWL-Turtle", "Ontolingua",
            "PowerLoom", "RDFS", "SHOE", "SQLiteStore", "WordNet"]

    def test_suffix_dispatch(self):
        from repro.soqa.wrapper import default_registry

        registry = default_registry()
        assert isinstance(registry.for_path("a.onto"), OntolinguaWrapper)
        assert isinstance(registry.for_path("a.shoe"), SHOEWrapper)
        assert isinstance(registry.for_path("a.rdfs"), RDFSWrapper)

    def test_cross_language_similarity_with_new_wrappers(self):
        """Concepts from Ontolingua and SHOE in one calculation."""
        from repro.core.facade import SOQASimPackToolkit
        from repro.core.registry import Measure
        from repro.soqa.api import SOQA

        soqa = SOQA()
        soqa.load_text(ONTOLINGUA_TEXT, "kif", "Ontolingua")
        soqa.load_text(SHOE_TEXT, "shoe", "SHOE")
        sst = SOQASimPackToolkit(soqa)
        value = sst.get_similarity("Professor", "kif", "Professor", "shoe",
                                   Measure.TFIDF)
        assert value > 0.0
        top = sst.get_most_similar_concepts("Professor", "kif", k=3,
                                            measure=Measure.TFIDF)
        assert any(entry.ontology_name == "shoe" for entry in top)
