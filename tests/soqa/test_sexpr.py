"""Unit tests for the s-expression reader."""

import pytest

from repro.errors import OntologyParseError
from repro.soqa.sexpr import Symbol, read_forms, tokenize


class TestTokenize:
    def test_parens_and_atoms(self):
        kinds = [kind for kind, _, _ in tokenize("(a b)")]
        assert kinds == ["(", "atom", "atom", ")"]

    def test_strings_capture_content(self):
        tokens = tokenize('(doc "hello world")')
        assert ("string", "hello world") in [(k, v) for k, v, _ in tokens]

    def test_comments_skipped(self):
        tokens = tokenize("; a comment\n(a)")
        assert [v for _, v, _ in tokens] == ["(", "a", ")"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("(a\nb)")
        lines = {value: line for _, value, line in tokens}
        assert lines["a"] == 1
        assert lines["b"] == 2

    def test_escaped_quote_inside_string(self):
        tokens = tokenize(r'("say \"hi\"")')
        assert tokens[1] == ("string", 'say "hi"', 1)

    def test_unterminated_string_raises(self):
        with pytest.raises(OntologyParseError, match="unterminated"):
            tokenize('("oops')


class TestReadForms:
    def test_nested_structure(self):
        forms = read_forms("(defconcept A (?x B) :documentation \"doc\")")
        assert len(forms) == 1
        form = forms[0]
        assert form[0] == Symbol("defconcept")
        assert form[1] == Symbol("A")
        assert form[2] == [Symbol("?x"), Symbol("B")]
        assert form[3] == Symbol(":documentation")
        assert form[4] == "doc"

    def test_numbers_parsed(self):
        forms = read_forms("(assert (salary bob 50000) (rate 1.5))")
        statement = forms[0]
        assert statement[1][2] == 50000
        assert statement[2][1] == 1.5

    def test_multiple_top_level_forms(self):
        assert len(read_forms("(a) (b) (c)")) == 3

    def test_unbalanced_open_raises(self):
        with pytest.raises(OntologyParseError, match="unbalanced"):
            read_forms("(a (b)")

    def test_unbalanced_close_raises(self):
        with pytest.raises(OntologyParseError, match="unbalanced"):
            read_forms("(a))")

    def test_empty_input_yields_no_forms(self):
        assert read_forms("  ; only a comment\n") == []

    def test_symbol_str(self):
        assert str(Symbol("defconcept")) == "defconcept"
