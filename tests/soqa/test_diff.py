"""Unit tests for the ontology diff."""

from repro.soqa.diff import diff_ontologies
from repro.soqa.metamodel import (
    Attribute,
    Concept,
    Instance,
    Method,
    Ontology,
    OntologyMetadata,
    Relationship,
)


def build(version: str, *concepts: Concept) -> Ontology:
    return Ontology(OntologyMetadata(name="o", language="OWL",
                                     version=version), concepts)


class TestDiff:
    def test_identical_versions_empty(self):
        old = build("1", Concept("A", documentation="d"))
        new = build("1", Concept("A", documentation="d"))
        result = diff_ontologies(old, new)
        assert result.is_empty
        assert result.to_text() == "no differences"

    def test_added_and_removed_concepts(self):
        old = build("1", Concept("A"), Concept("Gone"))
        new = build("1", Concept("A"), Concept("New"))
        result = diff_ontologies(old, new)
        assert result.added_concepts == ["New"]
        assert result.removed_concepts == ["Gone"]
        assert "+ New" in result.to_text()
        assert "- Gone" in result.to_text()

    def test_superconcept_change(self):
        old = build("1", Concept("A"), Concept("B"),
                    Concept("C", superconcept_names=["A"]))
        new = build("1", Concept("A"), Concept("B"),
                    Concept("C", superconcept_names=["B"]))
        result = diff_ontologies(old, new)
        assert len(result.changed_concepts) == 1
        assert "superconcepts" in result.changed_concepts[0].changes[0]

    def test_documentation_change(self):
        old = build("1", Concept("A", documentation="x"))
        new = build("1", Concept("A", documentation="y"))
        result = diff_ontologies(old, new)
        assert ("documentation changed",) == \
            result.changed_concepts[0].changes

    def test_attribute_added_removed_retyped(self):
        old = build("1", Concept("A", attributes=[
            Attribute("kept", "A", data_type="string"),
            Attribute("gone", "A")]))
        new = build("1", Concept("A", attributes=[
            Attribute("kept", "A", data_type="int"),
            Attribute("fresh", "A")]))
        changes = diff_ontologies(old, new).changed_concepts[0].changes
        assert "attribute +fresh" in changes
        assert "attribute -gone" in changes
        assert any("kept: type string -> int" in change
                   for change in changes)

    def test_method_and_relationship_changes(self):
        old = build("1", Concept("A", methods=[Method("m", "A")]))
        new = build("1", Concept("A", relationships=[Relationship("r")]))
        changes = diff_ontologies(old, new).changed_concepts[0].changes
        assert "method -m" in changes
        assert "relationship +r" in changes

    def test_instance_changes(self):
        old = build("1", Concept("A", instances=[Instance("i1", "A")]))
        new = build("1", Concept("A", instances=[Instance("i2", "A")]))
        changes = diff_ontologies(old, new).changed_concepts[0].changes
        assert "instance +i2" in changes
        assert "instance -i1" in changes

    def test_metadata_version_change(self):
        old = build("1", Concept("A"))
        new = build("2", Concept("A"))
        result = diff_ontologies(old, new)
        assert any("version" in change
                   for change in result.metadata_changes)

    def test_name_change_ignored_in_metadata(self):
        old = build("1", Concept("A"))
        new = Ontology(OntologyMetadata(name="renamed", language="OWL",
                                        version="1"), [Concept("A")])
        assert diff_ontologies(old, new).is_empty

    def test_cli_diff(self, capsys, tmp_path):
        from repro.cli import main
        from tests.conftest import MINI_OWL

        old_path = tmp_path / "old.owl"
        old_path.write_text(MINI_OWL, encoding="utf-8")
        new_path = tmp_path / "new.owl"
        new_path.write_text(MINI_OWL.replace(
            '<owl:Class rdf:ID="Course">',
            '<owl:Class rdf:ID="Seminar">'
            '<rdfs:comment>new class</rdfs:comment></owl:Class>'
            '<owl:Class rdf:ID="Course">'), encoding="utf-8")
        assert main(["--ontology-file", str(old_path), "diff",
                     str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "+ Seminar" in out
