"""Hypothesis fuzzing of the ontology readers.

The readers are the toolkit's untrusted-input boundary: whatever bytes
arrive as an "ontology file" must either parse or raise a *typed* error
(:class:`repro.errors.SSTError` subclass) — never an ``AttributeError``,
``IndexError``, ``RecursionError`` or the like, and never hang.  Three
input families are fuzzed: arbitrary text, valid documents with random
point mutations, and valid documents spliced/truncated at random.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SSTError
from repro.soqa.rdfxml import parse_rdfxml
from repro.soqa.sexpr import read_forms, tokenize
from repro.soqa.wrapper import default_registry
from tests.conftest import MINI_OWL, MINI_PLOOM

#: A generous cross-section of XML/Lisp metacharacters and text.
_CHARS = st.characters(codec="utf-8", exclude_categories=("Cs",))
_TEXT = st.text(alphabet=_CHARS, max_size=400)


def _mutate(document: str, position: int, replacement: str) -> str:
    """Replace one slice of ``document`` with ``replacement``."""
    position = position % (len(document) + 1)
    return document[:position] + replacement + document[position + 1:]


def _truncate(document: str, start: int, end: int) -> str:
    start = start % (len(document) + 1)
    end = end % (len(document) + 1)
    if end < start:
        start, end = end, start
    return document[:start] + document[end:]


def _parse_owl(text: str) -> None:
    default_registry().for_language("OWL").parse(text, "fuzz")


def _parse_powerloom(text: str) -> None:
    default_registry().for_language("PowerLoom").parse(text, "fuzz")


class TestRdfXmlFuzz:
    @given(_TEXT)
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_parses_or_raises_typed(self, text):
        try:
            parse_rdfxml(text)
        except SSTError:
            pass

    @given(st.integers(min_value=0), _TEXT)
    @settings(max_examples=120, deadline=None)
    def test_mutated_document(self, position, replacement):
        try:
            parse_rdfxml(_mutate(MINI_OWL, position, replacement))
        except SSTError:
            pass

    @given(st.integers(min_value=0), st.integers(min_value=0))
    @settings(max_examples=120, deadline=None)
    def test_truncated_document(self, start, end):
        try:
            parse_rdfxml(_truncate(MINI_OWL, start, end))
        except SSTError:
            pass

    @given(st.integers(min_value=0), _TEXT)
    @settings(max_examples=60, deadline=None)
    def test_owl_wrapper_survives_mutations(self, position, replacement):
        try:
            _parse_owl(_mutate(MINI_OWL, position, replacement))
        except SSTError:
            pass

    @pytest.mark.parametrize("text", [
        "", "<", "<a", "<a>", "<?xml?>", "<rdf:RDF/>", "&amp;", "<!---->",
        "<rdf:RDF xmlns:rdf='x'><owl:Class/></rdf:RDF>",
        "\x00", "<a>\x00</a>",
    ])
    def test_known_awkward_inputs(self, text):
        try:
            parse_rdfxml(text)
        except SSTError:
            pass


class TestSexprFuzz:
    @given(_TEXT)
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_reads_or_raises_typed(self, text):
        try:
            read_forms(text)
        except SSTError:
            pass

    @given(_TEXT)
    @settings(max_examples=120, deadline=None)
    def test_tokenize_arbitrary_text(self, text):
        try:
            tokenize(text)
        except SSTError:
            pass

    @given(st.integers(min_value=0), _TEXT)
    @settings(max_examples=120, deadline=None)
    def test_mutated_document(self, position, replacement):
        try:
            read_forms(_mutate(MINI_PLOOM, position, replacement))
        except SSTError:
            pass

    @given(st.integers(min_value=0), st.integers(min_value=0))
    @settings(max_examples=120, deadline=None)
    def test_truncated_document(self, start, end):
        try:
            read_forms(_truncate(MINI_PLOOM, start, end))
        except SSTError:
            pass

    @given(st.integers(min_value=0), _TEXT)
    @settings(max_examples=60, deadline=None)
    def test_powerloom_wrapper_survives_mutations(self, position,
                                                  replacement):
        try:
            _parse_powerloom(_mutate(MINI_PLOOM, position, replacement))
        except SSTError:
            pass

    @pytest.mark.parametrize("text", [
        "", "(", ")", "(()", "())", '"', '"unterminated', "(defconcept)",
        "(defconcept ())", "(in-module)", "(assert)", ";", "'",
        "(defconcept A (?x))", "(defmodule)",
    ])
    def test_known_awkward_inputs(self, text):
        try:
            _parse_powerloom(text)
        except SSTError:
            pass
