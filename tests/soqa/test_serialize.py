"""Unit and property tests for meta-model JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OntologyParseError
from repro.soqa.metamodel import (
    Attribute,
    Concept,
    Instance,
    Method,
    Ontology,
    OntologyMetadata,
    Parameter,
    Relationship,
)
from repro.soqa.serialize import (
    JSONWrapper,
    ontology_from_json,
    ontology_to_json,
)
from repro.soqa.wrappers.owl import OWLWrapper
from tests.conftest import MINI_OWL, MINI_PLOOM


def roundtrip(ontology: Ontology) -> Ontology:
    return ontology_from_json(ontology_to_json(ontology))


class TestRoundTrip:
    def test_owl_ontology_roundtrips(self):
        original = OWLWrapper().parse(MINI_OWL, "univ")
        restored = roundtrip(original)
        assert restored.concept_names() == original.concept_names()
        assert restored.metadata.as_dict() == original.metadata.as_dict()
        for concept in original:
            restored_concept = restored.concept(concept.name)
            assert restored_concept.superconcept_names == \
                concept.superconcept_names
            assert restored_concept.documentation == concept.documentation
            assert restored_concept.attribute_names() == \
                concept.attribute_names()
            assert restored_concept.relationship_names() == \
                concept.relationship_names()
            assert restored_concept.instance_names() == \
                concept.instance_names()

    def test_language_preserved(self):
        original = OWLWrapper().parse(MINI_OWL, "univ")
        assert roundtrip(original).language == "OWL"

    def test_powerloom_methods_roundtrip(self):
        from repro.soqa.wrappers.powerloom import PowerLoomWrapper

        original = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        restored = roundtrip(original)
        method = restored.concept("PERSON").methods[0]
        assert method.name == "full-name"
        assert method.return_type == "string"

    def test_instance_values_roundtrip(self):
        original = OWLWrapper().parse(MINI_OWL, "univ")
        restored = roundtrip(original)
        instance = restored.concept("Professor").instances[0]
        assert instance.attribute_values["name"] == "Prof. Smith"
        assert instance.relationship_targets["advises"] == ["jane"]

    def test_name_override(self):
        original = OWLWrapper().parse(MINI_OWL, "univ")
        restored = ontology_from_json(ontology_to_json(original),
                                      name="renamed")
        assert restored.name == "renamed"

    def test_serialization_is_stable(self):
        original = OWLWrapper().parse(MINI_OWL, "univ")
        assert ontology_to_json(original) == ontology_to_json(
            roundtrip(original))


class TestValidation:
    def test_malformed_json_rejected(self):
        with pytest.raises(OntologyParseError, match="malformed JSON"):
            ontology_from_json("{not json")

    def test_wrong_format_rejected(self):
        with pytest.raises(OntologyParseError, match="format"):
            ontology_from_json(json.dumps({"format": "other/9"}))

    def test_non_object_rejected(self):
        with pytest.raises(OntologyParseError):
            ontology_from_json("[1, 2, 3]")


class TestJSONWrapper:
    def test_load_file_via_soqa(self, tmp_path):
        from repro.soqa.api import SOQA
        from repro.soqa.wrapper import default_registry

        original = OWLWrapper().parse(MINI_OWL, "univ")
        path = tmp_path / "univ.soqajson"
        path.write_text(ontology_to_json(original), encoding="utf-8")

        registry = default_registry()
        registry.register(JSONWrapper())
        soqa = SOQA(registry)
        restored = soqa.load_file(path)
        assert restored.name == "univ"
        assert "Professor" in restored


# --- property tests over randomly generated ontologies ---------------------


@st.composite
def random_ontologies(draw) -> Ontology:
    size = draw(st.integers(min_value=1, max_value=12))
    names = [f"C{i}" for i in range(size)]
    concepts = []
    text = st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20)
    for index, name in enumerate(names):
        parent_count = draw(st.integers(0, min(2, index)))
        parents = draw(st.permutations(names[:index]))[:parent_count]
        attributes = [Attribute(f"a{i}", name,
                                data_type=draw(st.sampled_from(
                                    ["string", "number"])))
                      for i in range(draw(st.integers(0, 2)))]
        methods = [Method(f"m{i}", name,
                          parameters=[Parameter("p", "string")])
                   for i in range(draw(st.integers(0, 2)))]
        relationships = [Relationship(f"r{i}",
                                      related_concept_names=[name])
                         for i in range(draw(st.integers(0, 2)))]
        instances = [Instance(f"i{index}_{i}", name,
                              attribute_values={"k": draw(text)})
                     for i in range(draw(st.integers(0, 2)))]
        concepts.append(Concept(
            name=name,
            documentation=draw(text),
            definition=draw(text),
            superconcept_names=list(parents),
            attributes=attributes,
            methods=methods,
            relationships=relationships,
            instances=instances,
        ))
    metadata = OntologyMetadata(name="random", language="OWL",
                                author=draw(text), version=draw(text))
    return Ontology(metadata, concepts)


@given(random_ontologies())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_structure(ontology):
    restored = roundtrip(ontology)
    assert restored.concept_names() == ontology.concept_names()
    for concept in ontology:
        restored_concept = restored.concept(concept.name)
        assert restored_concept.superconcept_names == \
            concept.superconcept_names
        assert restored_concept.subconcept_names == \
            concept.subconcept_names
        assert len(restored_concept.attributes) == len(concept.attributes)
        assert len(restored_concept.methods) == len(concept.methods)
        assert len(restored_concept.instances) == len(concept.instances)
        assert restored_concept.documentation == concept.documentation


@given(random_ontologies())
@settings(max_examples=40, deadline=None)
def test_roundtrip_is_idempotent(ontology):
    once = ontology_to_json(roundtrip(ontology))
    twice = ontology_to_json(roundtrip(ontology_from_json(once)))
    assert once == twice
