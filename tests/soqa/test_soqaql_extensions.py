"""Tests for SOQA-QL DISTINCT and COUNT(*)."""

import pytest

from repro.errors import SOQAQLSyntaxError
from repro.soqa.soqaql.evaluator import SOQAQLEngine
from repro.soqa.soqaql.parser import parse_query


@pytest.fixture
def engine(mini_soqa):
    return SOQAQLEngine(mini_soqa)


class TestParsing:
    def test_distinct_flag(self):
        query = parse_query("SELECT DISTINCT ontology FROM concepts")
        assert query.distinct
        assert query.fields == ("ontology",)

    def test_count_flag(self):
        query = parse_query("SELECT COUNT(*) FROM concepts")
        assert query.count
        assert query.fields == ("count",)

    def test_count_requires_star(self):
        with pytest.raises(SOQAQLSyntaxError):
            parse_query("SELECT COUNT(name) FROM concepts")

    def test_count_requires_parentheses(self):
        with pytest.raises(SOQAQLSyntaxError):
            parse_query("SELECT COUNT * FROM concepts")


class TestEvaluation:
    def test_count_all_concepts(self, engine, mini_soqa):
        result = engine.execute("SELECT COUNT(*) FROM concepts")
        assert result.rows == [[mini_soqa.concept_count()]]
        assert result.columns == ["count"]

    def test_count_with_where(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM concepts IN univ WHERE is_root = true")
        assert result.rows == [[2]]  # Person and Course

    def test_count_of_instances(self, engine):
        result = engine.execute("SELECT COUNT(*) FROM instances IN univ")
        assert result.rows == [[3]]  # smith, jane, db1

    def test_distinct_collapses_duplicates(self, engine):
        plain = engine.execute("SELECT ontology FROM concepts")
        distinct = engine.execute("SELECT DISTINCT ontology FROM concepts")
        assert len(plain) > len(distinct)
        assert len(distinct) == 3  # univ, MINI, wn

    def test_distinct_with_limit(self, engine):
        result = engine.execute(
            "SELECT DISTINCT ontology FROM concepts LIMIT 2")
        assert len(result) == 2

    def test_distinct_preserves_first_occurrence_order(self, engine):
        result = engine.execute("SELECT DISTINCT ontology FROM concepts")
        assert result.column("ontology") == ["univ", "MINI", "wn"]

    def test_count_on_corpus(self, corpus_soqa):
        engine = SOQAQLEngine(corpus_soqa)
        result = engine.execute("SELECT COUNT(*) FROM concepts")
        assert result.rows == [[943]]
