"""Unit tests for the sqlite-backed lazy ontology store."""

import pickle

import pytest

from repro.errors import (OntologyParseError, SOQAError, UnknownConceptError,
                          UnknownOntologyError)
from repro.soqa.api import SOQA
from repro.soqa.sqlstore import (SqliteOntology, SqliteOntologyStore,
                                 SqliteWrapper)
from repro.soqa.wrappers import OWLWrapper
from tests.conftest import MINI_OWL


@pytest.fixture
def univ():
    return OWLWrapper().parse(MINI_OWL, "univ")


@pytest.fixture
def store(tmp_path, univ):
    store = SqliteOntologyStore.create(tmp_path / "corpus.sstdb")
    store.import_ontology(univ)
    yield store
    store.close()


class TestStoreLifecycle:
    def test_create_and_reopen(self, tmp_path, univ):
        path = tmp_path / "c.sstdb"
        SqliteOntologyStore.create(path).import_ontology(univ)
        reopened = SqliteOntologyStore(path)
        assert reopened.ontology_names() == ["univ"]

    def test_create_refuses_to_clobber(self, tmp_path):
        path = tmp_path / "c.sstdb"
        SqliteOntologyStore.create(path)
        with pytest.raises(SOQAError, match="already exists"):
            SqliteOntologyStore.create(path)
        SqliteOntologyStore.create(path, overwrite=True)  # explicit wins

    def test_missing_file_raises_parse_error(self, tmp_path):
        with pytest.raises(OntologyParseError, match="not found"):
            SqliteOntologyStore(tmp_path / "absent.sstdb")

    def test_non_store_file_raises_parse_error(self, tmp_path):
        path = tmp_path / "junk.sstdb"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.raises(OntologyParseError, match="not a readable"):
            SqliteOntologyStore(path)

    def test_wrong_format_stamp_rejected(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sstdb"
        SqliteOntologyStore.create(path).close()
        connection = sqlite3.connect(str(path))
        connection.execute(
            "UPDATE meta SET value='other-format/9' WHERE key='format'")
        connection.commit()
        connection.close()
        with pytest.raises(OntologyParseError, match="unsupported store"):
            SqliteOntologyStore(path)


class TestImport:
    def test_summary(self, tmp_path, univ):
        store = SqliteOntologyStore.create(tmp_path / "c.sstdb")
        summary = store.import_ontology(univ)
        assert summary["ontology"] == "univ"
        assert summary["language"] == "OWL"
        assert summary["concepts"] == len(univ)
        assert summary["fingerprint"]

    def test_duplicate_name_rejected(self, store, univ):
        with pytest.raises(SOQAError, match="already stored"):
            store.import_ontology(univ)

    def test_fingerprint_matches_in_memory_digest(self, store, univ):
        assert store.ontology().content_digest() == univ.content_digest()

    def test_stats(self, store, univ):
        stats = store.stats()
        assert stats["ontologies"] == {"univ": len(univ)}
        assert stats["concepts"] == len(univ)
        assert stats["size_bytes"] > 0


class TestLazyOntology:
    def test_indexed_lookup(self, store):
        ontology = store.ontology()
        assert ontology.concept("Professor").superconcept_names == [
            "Employee"]
        assert "Student" in ontology
        assert "Ghost" not in ontology

    def test_unknown_concept_raises(self, store):
        with pytest.raises(UnknownConceptError):
            store.ontology().concept("Ghost")

    def test_unknown_ontology_raises(self, store):
        with pytest.raises(UnknownOntologyError):
            store.ontology("absent")

    def test_iteration_preserves_definition_order(self, store, univ):
        lazy = store.ontology()
        assert [c.name for c in lazy] == [c.name for c in univ]
        assert lazy.concept_names() == [c.name for c in univ]
        assert len(lazy) == len(univ)

    def test_roots_and_leaves(self, store, univ):
        lazy = store.ontology()
        assert ([c.name for c in lazy.root_concepts()]
                == [c.name for c in univ.root_concepts()])
        assert ([c.name for c in lazy.leaf_concepts()]
                == [c.name for c in univ.leaf_concepts()])

    def test_subconcepts_derived_from_edges(self, store, univ):
        lazy = store.ontology()
        assert ([c.name for c in lazy.direct_subconcepts("Person")]
                == [c.name for c in univ.direct_subconcepts("Person")])
        assert (lazy.concept("Person").subconcept_names
                == univ.concept("Person").subconcept_names)

    def test_superconcept_map(self, store, univ):
        assert store.ontology().superconcept_map() == {
            concept.name: list(concept.superconcept_names)
            for concept in univ}

    def test_long_tail_round_trips(self, store, univ):
        concept = store.ontology().concept("Person")
        original = univ.concept("Person")
        assert [a.name for a in concept.attributes] == [
            a.name for a in original.attributes]
        assert concept.documentation == original.documentation


class TestPickling:
    def test_store_pickles_as_path_shell(self, store):
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.ontology_names() == ["univ"]

    def test_lazy_ontology_survives_via_soqa(self, store):
        # The facade hands whole SOQA corpora to process workers.
        soqa = SOQA()
        soqa.add_ontology(store.ontology())
        clone = pickle.loads(pickle.dumps(soqa))
        assert clone.concept("Professor", "univ").superconcept_names == [
            "Employee"]


class TestWrapper:
    def test_load_by_path(self, store):
        ontology = SqliteWrapper().load(store.path)
        assert isinstance(ontology, SqliteOntology)
        assert ontology.language == "OWL"

    def test_load_all(self, tmp_path, univ):
        store = SqliteOntologyStore.create(tmp_path / "two.sstdb")
        store.import_ontology(univ)
        other = OWLWrapper().parse(
            MINI_OWL.replace('rdf:about=""', 'rdf:about="#other"'), "univ2")
        store.import_ontology(other)
        names = [o.name for o in SqliteWrapper().load_all(store.path)]
        assert names == ["univ", "univ2"]

    def test_parse_refuses_text(self):
        with pytest.raises(OntologyParseError, match="binary"):
            SqliteWrapper().parse("text", "x")

    def test_multi_ontology_store_needs_explicit_name(self, tmp_path, univ):
        store = SqliteOntologyStore.create(tmp_path / "two.sstdb")
        store.import_ontology(univ)
        other = OWLWrapper().parse(
            MINI_OWL.replace('rdf:about=""', 'rdf:about="#other"'), "univ2")
        store.import_ontology(other)
        with pytest.raises(SOQAError, match="name one explicitly"):
            store.ontology()
        assert store.ontology("univ2").name == "univ2"

    def test_soqa_load_file_uses_load_all(self, store):
        soqa = SOQA()
        soqa.load_file(store.path)
        assert soqa.ontology_names() == ["univ"]
        assert "SQLiteStore" not in soqa.languages_in_use()  # real language
