"""Unit tests for the ontology validator."""

from repro.soqa.metamodel import (
    Concept,
    Instance,
    Ontology,
    OntologyMetadata,
    Relationship,
)
from repro.soqa.validate import validate_ontology


def build(*concepts: Concept) -> Ontology:
    return Ontology(OntologyMetadata(name="test", language="OWL"),
                    concepts)


def codes(ontology: Ontology) -> list[str]:
    return [diagnostic.code for diagnostic in validate_ontology(ontology)]


class TestWarnings:
    def test_missing_documentation(self):
        ontology = build(Concept("A"))
        assert "no-documentation" in codes(ontology)

    def test_documented_concept_clean(self):
        ontology = build(Concept("A", documentation="something"))
        assert codes(ontology) == []

    def test_isolated_concept_only_with_multiple_roots(self):
        connected = build(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "isolated-concept" not in codes(connected)
        forest = build(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]),
            Concept("Island", documentation="d"))
        assert "isolated-concept" in codes(forest)

    def test_dangling_equivalent(self):
        ontology = build(Concept("A", documentation="d",
                                 equivalent_concept_names=["Ghost"]))
        assert "dangling-equivalent" in codes(ontology)

    def test_dangling_antonym(self):
        ontology = build(Concept("A", documentation="d",
                                 antonym_concept_names=["Ghost"]))
        assert "dangling-antonym" in codes(ontology)

    def test_dangling_instance_target(self):
        ontology = build(Concept(
            "A", documentation="d",
            instances=[Instance("x", "A",
                                relationship_targets={"r": ["ghost"]})]))
        assert "dangling-instance-target" in codes(ontology)

    def test_resolved_instance_target_clean(self):
        ontology = build(Concept(
            "A", documentation="d",
            instances=[
                Instance("x", "A", relationship_targets={"r": ["y"]}),
                Instance("y", "A"),
            ]))
        assert "dangling-instance-target" not in codes(ontology)


class TestErrors:
    def test_unknown_related_concept(self):
        ontology = build(Concept(
            "A", documentation="d",
            relationships=[Relationship(
                "r", related_concept_names=["A", "Ghost"])]))
        assert "unknown-related-concept" in codes(ontology)

    def test_literal_typed_relationship_clean(self):
        ontology = build(Concept(
            "A", documentation="d",
            relationships=[Relationship(
                "r", related_concept_names=["A", "STRING"])]))
        assert "unknown-related-concept" not in codes(ontology)

    def test_duplicate_instance(self):
        ontology = build(
            Concept("A", documentation="d",
                    instances=[Instance("x", "A")]),
            Concept("B", documentation="d",
                    instances=[Instance("x", "B")]))
        assert "duplicate-instance" in codes(ontology)

    def test_errors_sorted_first(self):
        ontology = build(
            Concept("A",  # missing documentation (warning)
                    relationships=[Relationship(
                        "r", related_concept_names=["Ghost"])]))
        diagnostics = validate_ontology(ontology)
        assert diagnostics[0].severity == "error"

    def test_str_format(self):
        ontology = build(Concept("A"))
        text = str(validate_ontology(ontology)[0])
        assert text.startswith("warning[no-documentation] A:")


class TestOnRealOntologies:
    def test_bundled_corpus_has_no_errors(self, corpus_soqa):
        for name in corpus_soqa.ontology_names():
            diagnostics = validate_ontology(corpus_soqa.ontology(name))
            errors = [diagnostic for diagnostic in diagnostics
                      if diagnostic.severity == "error"]
            assert errors == [], (name, errors)

    def test_browser_validate_command(self, mini_sst):
        import io

        from repro.browser.shell import run_browser

        output = io.StringIO()
        run_browser(mini_sst, lines=["validate univ"], stdout=output)
        # MINI_OWL's Course concept stands alone next to the Person tree.
        assert "isolated-concept] Course" in output.getvalue()
