"""Property tests: CompiledTaxonomy is bit-identical to naive Taxonomy.

Two sources of randomized DAGs exercise the equivalence: a
hypothesis-generated family (small, adversarial shapes — diamonds,
multiple roots, disconnected components) and the seeded generators of
:mod:`repro.ontologies.generator` (larger, realistic shapes).  Every
query of the public Taxonomy API must agree exactly between a
naive-only instance (negative threshold) and an always-compiled one
(threshold zero), including tie-breaking and ``None`` results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontologies.generator import (generate_random_dag,
                                        generate_wordnet_taxonomy)
from repro.soqa.graph import ANY_PATH, VIA_ANCESTOR, Taxonomy


@st.composite
def random_dags(draw) -> dict[str, list[str]]:
    """A random DAG as ``{node: parents}`` (same family as the
    networkx-oracle tests; acyclic because parents precede children)."""
    size = draw(st.integers(min_value=1, max_value=25))
    nodes = [f"n{i}" for i in range(size)]
    parents: dict[str, list[str]] = {nodes[0]: []}
    for index in range(1, size):
        earlier = nodes[:index]
        count = draw(st.integers(min_value=0,
                                 max_value=min(3, len(earlier))))
        chosen = draw(st.permutations(earlier))[:count]
        parents[nodes[index]] = list(chosen)
    return parents


def assert_equivalent(parents: dict[str, list[str]],
                      pair_limit: int | None = None) -> None:
    """Every public query agrees between naive and compiled instances."""
    naive = Taxonomy(parents, index_threshold=-1)
    compiled = Taxonomy(parents, index_threshold=0)
    nodes = list(parents)
    assert naive.max_depth() == compiled.max_depth()
    assert compiled.is_compiled and not naive.is_compiled
    for node in nodes:
        assert naive.depth(node) == compiled.depth(node)
        assert naive.descendant_count(node) == compiled.descendant_count(node)
        assert naive.descendants(node) == compiled.descendants(node)
        assert naive.path_to_root(node) == compiled.path_to_root(node)
        assert (naive.ancestors_with_distance(node)
                == compiled.ancestors_with_distance(node))
    pair_nodes = nodes if pair_limit is None else nodes[:pair_limit]
    for first in pair_nodes:
        for second in pair_nodes:
            assert naive.mrca(first, second) == compiled.mrca(first, second)
            assert (naive.common_ancestors(first, second)
                    == compiled.common_ancestors(first, second))
            for policy in (VIA_ANCESTOR, ANY_PATH):
                assert (naive.shortest_path_length(first, second, policy)
                        == compiled.shortest_path_length(first, second,
                                                         policy))


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_compiled_matches_naive_on_hypothesis_dags(parents):
    assert_equivalent(parents)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_compiled_matches_naive_on_seeded_random_dags(seed):
    assert_equivalent(generate_random_dag(120, seed=seed), pair_limit=20)


@pytest.mark.parametrize("seed", [0, 7])
def test_compiled_matches_naive_on_wordnet_shape(seed):
    assert_equivalent(generate_wordnet_taxonomy(300, seed=seed),
                      pair_limit=15)


def test_generators_are_deterministic():
    assert generate_random_dag(80, seed=5) == generate_random_dag(80, seed=5)
    assert (generate_wordnet_taxonomy(80, seed=5)
            == generate_wordnet_taxonomy(80, seed=5))
    assert generate_random_dag(80, seed=5) != generate_random_dag(80, seed=6)
