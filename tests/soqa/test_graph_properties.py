"""Property-based tests for Taxonomy, checked against a networkx oracle."""

import networkx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soqa.graph import Taxonomy


@st.composite
def random_dags(draw) -> dict[str, list[str]]:
    """A random DAG as ``{node: parents}``.

    Nodes are created in order; each non-first node picks parents only
    among earlier nodes, which guarantees acyclicity, and may also be a
    root (no parents).
    """
    size = draw(st.integers(min_value=1, max_value=25))
    nodes = [f"n{i}" for i in range(size)]
    parents: dict[str, list[str]] = {nodes[0]: []}
    for index in range(1, size):
        earlier = nodes[:index]
        count = draw(st.integers(min_value=0,
                                 max_value=min(3, len(earlier))))
        chosen = draw(st.permutations(earlier))[:count]
        parents[nodes[index]] = list(chosen)
    return parents


def as_networkx(parents: dict[str, list[str]]) -> networkx.DiGraph:
    graph = networkx.DiGraph()
    graph.add_nodes_from(parents)
    for node, node_parents in parents.items():
        for parent in node_parents:
            graph.add_edge(node, parent)  # edge points child -> parent
    return graph


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_depth_matches_networkx_shortest_root_distance(parents):
    taxonomy = Taxonomy(parents)
    graph = as_networkx(parents)
    roots = [node for node, node_parents in parents.items()
             if not node_parents]
    for node in parents:
        expected = min(
            networkx.shortest_path_length(graph, node, root)
            for root in roots
            if networkx.has_path(graph, node, root))
        assert taxonomy.depth(node) == expected


@given(random_dags(), st.data())
@settings(max_examples=60, deadline=None)
def test_any_path_distance_matches_undirected_networkx(parents, data):
    taxonomy = Taxonomy(parents)
    graph = as_networkx(parents).to_undirected()
    nodes = sorted(parents)
    first = data.draw(st.sampled_from(nodes))
    second = data.draw(st.sampled_from(nodes))
    ours = taxonomy.shortest_path_length(first, second, policy="any")
    if networkx.has_path(graph, first, second):
        assert ours == networkx.shortest_path_length(graph, first, second)
    else:
        assert ours is None


@given(random_dags(), st.data())
@settings(max_examples=60, deadline=None)
def test_via_ancestor_distance_is_min_over_common_ancestors(parents, data):
    taxonomy = Taxonomy(parents)
    graph = as_networkx(parents)
    nodes = sorted(parents)
    first = data.draw(st.sampled_from(nodes))
    second = data.draw(st.sampled_from(nodes))
    ancestors_first = networkx.descendants(graph, first) | {first}
    ancestors_second = networkx.descendants(graph, second) | {second}
    common = ancestors_first & ancestors_second
    ours = taxonomy.shortest_path_length(first, second)
    if not common:
        assert ours is None
    else:
        expected = min(
            networkx.shortest_path_length(graph, first, ancestor)
            + networkx.shortest_path_length(graph, second, ancestor)
            for ancestor in common)
        assert ours == expected


@given(random_dags(), st.data())
@settings(max_examples=60, deadline=None)
def test_via_ancestor_never_shorter_than_any_path(parents, data):
    taxonomy = Taxonomy(parents)
    nodes = sorted(parents)
    first = data.draw(st.sampled_from(nodes))
    second = data.draw(st.sampled_from(nodes))
    via = taxonomy.shortest_path_length(first, second)
    any_path = taxonomy.shortest_path_length(first, second, policy="any")
    if via is not None:
        assert any_path is not None
        assert any_path <= via


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_descendant_count_matches_networkx(parents):
    taxonomy = Taxonomy(parents)
    graph = as_networkx(parents)
    for node in parents:
        expected = len(networkx.ancestors(graph, node)) + 1
        assert taxonomy.descendant_count(node) == expected


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_max_depth_matches_longest_path(parents):
    taxonomy = Taxonomy(parents)
    graph = as_networkx(parents)
    assert taxonomy.max_depth() == networkx.dag_longest_path_length(graph)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_path_to_root_ends_at_a_root_and_descends_in_depth(parents):
    taxonomy = Taxonomy(parents)
    for node in parents:
        path = taxonomy.path_to_root(node)
        assert path[0] == node
        assert not parents[path[-1]]
        for step, next_step in zip(path, path[1:]):
            assert next_step in parents[step]
