"""Unit tests for the core SOQA language wrappers."""

import pytest

from repro.errors import OntologyParseError, UnsupportedLanguageError
from repro.soqa.wrapper import WrapperRegistry, default_registry
from repro.soqa.wrappers import (
    DAMLWrapper,
    OWLWrapper,
    PowerLoomWrapper,
    WordNetWrapper,
)
from tests.conftest import MINI_OWL, MINI_PLOOM, MINI_WORDNET

DAML_TEXT = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:daml="http://www.daml.org/2001/03/daml+oil#"
         xml:base="http://example.org/daml-univ">
  <daml:Ontology rdf:about="">
    <daml:versionInfo>1.0</daml:versionInfo>
  </daml:Ontology>
  <daml:Class rdf:ID="Person"/>
  <daml:Class rdf:ID="Professor">
    <rdfs:subClassOf rdf:resource="#Person"/>
    <daml:sameClassAs rdf:resource="#Prof"/>
    <daml:disjointWith rdf:resource="#Course"/>
  </daml:Class>
  <daml:Class rdf:ID="Prof"/>
  <daml:Class rdf:ID="Course"/>
  <daml:ObjectProperty rdf:ID="teaches">
    <rdfs:domain rdf:resource="#Professor"/>
    <rdfs:range rdf:resource="#Course"/>
  </daml:ObjectProperty>
  <daml:DatatypeProperty rdf:ID="name">
    <rdfs:domain rdf:resource="#Person"/>
  </daml:DatatypeProperty>
</rdf:RDF>
"""


class TestOWLWrapper:
    def test_classes_and_hierarchy(self):
        ontology = OWLWrapper().parse(MINI_OWL, "univ")
        assert sorted(c.name for c in ontology) == [
            "Course", "Employee", "Person", "Professor", "Student"]
        assert ontology.concept("Professor").superconcept_names == [
            "Employee"]

    def test_metadata_from_ontology_header(self):
        ontology = OWLWrapper().parse(MINI_OWL, "univ")
        assert ontology.metadata.documentation == "Tiny university ontology"
        assert ontology.metadata.version == "0.1"
        assert ontology.language == "OWL"

    def test_datatype_property_becomes_attribute(self):
        ontology = OWLWrapper().parse(MINI_OWL, "univ")
        assert [a.name for a in ontology.concept("Person").attributes] == [
            "name"]

    def test_object_property_becomes_relationship(self):
        ontology = OWLWrapper().parse(MINI_OWL, "univ")
        relationship = ontology.concept("Professor").relationships[0]
        assert relationship.name == "advises"
        assert relationship.related_concept_names == ["Professor", "Student"]

    def test_individuals_become_instances(self):
        ontology = OWLWrapper().parse(MINI_OWL, "univ")
        instances = ontology.concept("Professor").instances
        assert [i.name for i in instances] == ["smith"]
        assert instances[0].attribute_values["name"] == "Prof. Smith"
        assert instances[0].relationship_targets["advises"] == ["jane"]

    def test_restriction_surfaces_property(self):
        text = MINI_OWL.replace(
            '<owl:Class rdf:ID="Course">',
            '<owl:Class rdf:ID="Course">'
            "<rdfs:subClassOf><owl:Restriction>"
            '<owl:onProperty rdf:resource="#taughtBy"/>'
            '<owl:someValuesFrom rdf:resource="#Professor"/>'
            "</owl:Restriction></rdfs:subClassOf>")
        ontology = OWLWrapper().parse(text, "univ")
        relationships = ontology.concept("Course").relationships
        assert any(r.name == "taughtBy" for r in relationships)

    def test_equivalent_and_disjoint_classes(self):
        text = MINI_OWL.replace(
            '<owl:Class rdf:ID="Student">',
            '<owl:Class rdf:ID="Student">'
            '<owl:equivalentClass rdf:resource="#Pupil"/>'
            '<owl:disjointWith rdf:resource="#Employee"/>')
        ontology = OWLWrapper().parse(text, "univ")
        student = ontology.concept("Student")
        assert student.equivalent_concept_names == ["Pupil"]
        assert student.antonym_concept_names == ["Employee"]


class TestDAMLWrapper:
    def test_classes_and_hierarchy(self):
        ontology = DAMLWrapper().parse(DAML_TEXT, "daml-univ")
        assert "Professor" in ontology
        assert ontology.concept("Professor").superconcept_names == ["Person"]
        assert ontology.language == "DAML"

    def test_same_class_as_becomes_equivalent(self):
        ontology = DAMLWrapper().parse(DAML_TEXT, "daml-univ")
        assert ontology.concept("Professor").equivalent_concept_names == [
            "Prof"]

    def test_disjoint_with_becomes_antonym(self):
        ontology = DAMLWrapper().parse(DAML_TEXT, "daml-univ")
        assert ontology.concept("Professor").antonym_concept_names == [
            "Course"]

    def test_properties(self):
        ontology = DAMLWrapper().parse(DAML_TEXT, "daml-univ")
        assert [r.name
                for r in ontology.concept("Professor").relationships] == [
            "teaches"]
        assert [a.name for a in ontology.concept("Person").attributes] == [
            "name"]

    def test_version_from_daml_header(self):
        ontology = DAMLWrapper().parse(DAML_TEXT, "daml-univ")
        assert ontology.metadata.version == "1.0"


class TestPowerLoomWrapper:
    def test_concepts_and_hierarchy(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        assert sorted(c.name for c in ontology) == [
            "COURSE", "EMPLOYEE", "PERSON", "STUDENT"]
        assert ontology.concept("EMPLOYEE").superconcept_names == ["PERSON"]

    def test_module_documentation(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        assert ontology.metadata.documentation == "Mini course module"
        assert ontology.metadata.version == "1.0"
        assert ontology.metadata.uri == "ploom:module/MINI"

    def test_literal_relation_becomes_attribute(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        attributes = ontology.concept("EMPLOYEE").attributes
        assert [a.name for a in attributes] == ["salary"]
        assert attributes[0].data_type == "number"

    def test_concept_relation_stays_relationship(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        relationships = ontology.concept("EMPLOYEE").relationships
        assert [r.name for r in relationships] == ["teaches"]
        assert relationships[0].related_concept_names == ["EMPLOYEE",
                                                          "COURSE"]

    def test_deffunction_becomes_method(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        methods = ontology.concept("PERSON").methods
        assert [m.name for m in methods] == ["full-name"]
        assert methods[0].return_type == "string"

    def test_assertions_become_instances_with_values(self):
        ontology = PowerLoomWrapper().parse(MINI_PLOOM, "MINI")
        instances = ontology.concept("EMPLOYEE").instances
        assert [i.name for i in instances] == ["bob"]
        assert instances[0].attribute_values["salary"] == "50000"
        assert instances[0].relationship_targets["teaches"] == ["algebra"]

    def test_forward_reference_allowed(self):
        text = "(defconcept B (?b A))\n(defconcept A)"
        ontology = PowerLoomWrapper().parse(text, "fw")
        assert ontology.concept("B").superconcept_names == ["A"]

    def test_malformed_defconcept_raises(self):
        with pytest.raises(OntologyParseError):
            PowerLoomWrapper().parse("(defconcept)", "bad")

    def test_defrelation_without_arguments_raises(self):
        with pytest.raises(OntologyParseError):
            PowerLoomWrapper().parse("(defrelation r ())", "bad")


class TestWordNetWrapper:
    def test_synsets_become_concepts(self):
        ontology = WordNetWrapper().parse(MINI_WORDNET, "wn")
        assert sorted(c.name for c in ontology) == [
            "being", "entity", "nonperson", "person", "researcher"]

    def test_hypernym_becomes_superconcept(self):
        ontology = WordNetWrapper().parse(MINI_WORDNET, "wn")
        assert ontology.concept("researcher").superconcept_names == [
            "person"]

    def test_antonym_pointer(self):
        ontology = WordNetWrapper().parse(MINI_WORDNET, "wn")
        assert ontology.concept("person").antonym_concept_names == [
            "nonperson"]

    def test_synonyms_become_equivalents(self):
        ontology = WordNetWrapper().parse(MINI_WORDNET, "wn")
        assert ontology.concept("being").equivalent_concept_names == [
            "organism"]

    def test_gloss_becomes_documentation(self):
        ontology = WordNetWrapper().parse(MINI_WORDNET, "wn")
        assert ontology.concept("entity").documentation == "that which exists"

    def test_duplicate_head_word_gets_sense_number(self):
        text = (MINI_WORDNET
                + "00009999 03 n 01 person 0 001 @ 00002137 n 0000 | other\n")
        ontology = WordNetWrapper().parse(text, "wn")
        assert "person.2" in ontology

    def test_duplicate_offset_rejected(self):
        text = MINI_WORDNET + MINI_WORDNET.splitlines()[0] + "\n"
        with pytest.raises(OntologyParseError, match="duplicate"):
            WordNetWrapper().parse(text, "wn")

    def test_truncated_line_rejected(self):
        with pytest.raises(OntologyParseError):
            WordNetWrapper().parse("00001740 03 n\n", "wn")

    def test_comment_lines_skipped(self):
        ontology = WordNetWrapper().parse("# comment\n" + MINI_WORDNET, "wn")
        assert len(ontology) == 5


class TestRegistry:
    def test_default_registry_languages(self):
        registry = default_registry()
        # The paper's four implemented wrappers plus the further
        # languages it names (Ontolingua, SHOE), plain RDFS, and the
        # toolkit's own sqlite store format.
        assert registry.languages() == ["DAML", "N-Triples", "OWL",
                                        "OWL-Turtle", "Ontolingua",
                                        "PowerLoom", "RDFS", "SHOE",
                                        "SQLiteStore", "WordNet"]

    def test_lookup_by_language_case_insensitive(self):
        registry = default_registry()
        assert isinstance(registry.for_language("owl"), OWLWrapper)

    def test_lookup_by_suffix(self):
        registry = default_registry()
        assert isinstance(registry.for_path("x/y/course.ploom"),
                          PowerLoomWrapper)
        assert isinstance(registry.for_path("a.daml"), DAMLWrapper)
        assert isinstance(registry.for_path("a.wn"), WordNetWrapper)

    def test_unknown_language_raises(self):
        with pytest.raises(UnsupportedLanguageError):
            default_registry().for_language("KIF")

    def test_unknown_suffix_raises(self):
        with pytest.raises(UnsupportedLanguageError):
            default_registry().for_path("x.unknown")

    def test_custom_wrapper_registration(self):
        class ToyWrapper(OWLWrapper):
            language = "Toy"
            suffixes = (".toy",)

        registry = WrapperRegistry()
        registry.register(ToyWrapper())
        assert isinstance(registry.for_language("toy"), ToyWrapper)
        assert registry.languages() == ["Toy"]

    def test_re_registration_replaces(self):
        registry = WrapperRegistry()
        first, second = OWLWrapper(), OWLWrapper()
        registry.register(first)
        registry.register(second)
        assert registry.for_language("OWL") is second
