"""Unit tests for the SOQA Ontology Meta Model."""

import pytest

from repro.errors import OntologyParseError, UnknownConceptError
from repro.soqa.metamodel import (
    Attribute,
    Concept,
    Instance,
    Method,
    Ontology,
    OntologyMetadata,
    Parameter,
    Relationship,
)


def build_ontology(*concepts: Concept) -> Ontology:
    return Ontology(OntologyMetadata(name="test", language="OWL"), concepts)


def diamond() -> Ontology:
    """A multiple-inheritance diamond: D -> B, C -> A."""
    return build_ontology(
        Concept("A"),
        Concept("B", superconcept_names=["A"]),
        Concept("C", superconcept_names=["A"]),
        Concept("D", superconcept_names=["B", "C"]),
    )


class TestConstruction:
    def test_len_counts_concepts(self):
        assert len(diamond()) == 4

    def test_contains_by_name(self):
        ontology = diamond()
        assert "A" in ontology
        assert "Z" not in ontology

    def test_iteration_preserves_definition_order(self):
        names = [concept.name for concept in diamond()]
        assert names == ["A", "B", "C", "D"]

    def test_duplicate_concept_rejected(self):
        with pytest.raises(OntologyParseError, match="duplicate"):
            build_ontology(Concept("A"), Concept("A"))

    def test_dangling_superconcept_rejected(self):
        with pytest.raises(OntologyParseError, match="unknown"):
            build_ontology(Concept("A", superconcept_names=["Missing"]))

    def test_cycle_rejected(self):
        with pytest.raises(OntologyParseError, match="cycle"):
            build_ontology(
                Concept("A", superconcept_names=["B"]),
                Concept("B", superconcept_names=["A"]),
            )

    def test_self_cycle_rejected(self):
        with pytest.raises(OntologyParseError, match="cycle"):
            build_ontology(Concept("A", superconcept_names=["A"]))

    def test_unknown_concept_lookup_raises(self):
        with pytest.raises(UnknownConceptError):
            diamond().concept("Nope")


class TestNavigation:
    def test_subconcepts_derived_from_supers(self):
        ontology = diamond()
        assert sorted(ontology.concept("A").subconcept_names) == ["B", "C"]

    def test_direct_superconcepts(self):
        ontology = diamond()
        names = [c.name for c in ontology.direct_superconcepts("D")]
        assert names == ["B", "C"]

    def test_indirect_superconcepts_breadth_first_no_duplicates(self):
        ontology = diamond()
        names = [c.name for c in ontology.superconcepts("D")]
        assert names == ["B", "C", "A"]  # A appears once despite two paths

    def test_indirect_subconcepts(self):
        ontology = diamond()
        names = [c.name for c in ontology.subconcepts("A")]
        assert names == ["B", "C", "D"]

    def test_roots_and_leaves(self):
        ontology = diamond()
        assert [c.name for c in ontology.root_concepts()] == ["A"]
        assert [c.name for c in ontology.leaf_concepts()] == ["D"]

    def test_coordinate_concepts_are_siblings(self):
        ontology = diamond()
        assert [c.name for c in ontology.coordinate_concepts("B")] == ["C"]

    def test_coordinate_concepts_of_root_are_other_roots(self):
        ontology = build_ontology(Concept("A"), Concept("B"))
        assert [c.name for c in ontology.coordinate_concepts("A")] == ["B"]

    def test_coordinate_concepts_no_duplicates_across_parents(self):
        ontology = build_ontology(
            Concept("A"),
            Concept("B", superconcept_names=["A"]),
            Concept("C", superconcept_names=["A"]),
            Concept("D", superconcept_names=["B", "C"]),
            Concept("E", superconcept_names=["B", "C"]),
        )
        assert [c.name for c in ontology.coordinate_concepts("D")] == ["E"]


class TestElements:
    def test_method_arity(self):
        method = Method("grade", "Student",
                        parameters=[Parameter("exam"), Parameter("term")])
        assert method.arity == 2

    def test_relationship_arity(self):
        relationship = Relationship("teaches",
                                    related_concept_names=["Prof", "Course"])
        assert relationship.arity == 2

    def test_feature_set_collects_all_structure(self):
        concept = Concept(
            "Student",
            superconcept_names=["Person"],
            attributes=[Attribute("name", "Student")],
            methods=[Method("gpa", "Student")],
            relationships=[Relationship("takes",
                                        related_concept_names=["Student",
                                                               "Course"])],
        )
        assert concept.feature_set() == frozenset(
            {"Person", "name", "gpa", "takes"})

    def test_instances_of_includes_subconcepts(self):
        ontology = build_ontology(
            Concept("Person"),
            Concept("Student", superconcept_names=["Person"],
                    instances=[Instance("jane", "Student")]),
        )
        assert [i.name for i in ontology.instances_of("Person")] == ["jane"]
        assert ontology.instances_of("Person",
                                     include_subconcepts=False) == []

    def test_all_extensions(self):
        ontology = build_ontology(
            Concept("A", attributes=[Attribute("x", "A")],
                    methods=[Method("m", "A")],
                    relationships=[Relationship("r")],
                    instances=[Instance("i", "A")]),
        )
        assert len(ontology.all_attributes()) == 1
        assert len(ontology.all_methods()) == 1
        assert len(ontology.all_relationships()) == 1
        assert len(ontology.all_instances()) == 1


class TestDescription:
    def test_concept_description_contains_structure(self):
        ontology = build_ontology(
            Concept("Person", documentation="A human being"),
            Concept("Student", documentation="Someone studying",
                    superconcept_names=["Person"],
                    attributes=[Attribute("name", "Student",
                                          documentation="full name")]),
        )
        text = ontology.concept_description("Student")
        for expected in ("Student", "Someone studying", "name",
                         "full name", "Person"):
            assert expected in text

    def test_metadata_as_dict_roundtrip(self):
        metadata = OntologyMetadata(name="o", language="OWL", author="a",
                                    version="1", uri="http://x")
        mapping = metadata.as_dict()
        assert mapping["name"] == "o"
        assert mapping["language"] == "OWL"
        assert mapping["author"] == "a"
        assert mapping["uri"] == "http://x"
