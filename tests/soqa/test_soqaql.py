"""Unit tests for SOQA-QL: lexer, parser, evaluator, shell."""

import io

import pytest

from repro.errors import SOQAQLEvaluationError, SOQAQLSyntaxError
from repro.soqa.soqaql.ast import (
    Comparison,
    DescribeQuery,
    LogicalOp,
    NotOp,
    SelectQuery,
    ShowOntologiesQuery,
)
from repro.soqa.soqaql.evaluator import SOQAQLEngine
from repro.soqa.soqaql.lexer import tokenize
from repro.soqa.soqaql.parser import parse_query
from repro.soqa.soqaql.shell import run_shell


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [(t.kind, t.value) for t in tokens] == [
            ("keyword", "SELECT"), ("keyword", "FROM"),
            ("keyword", "WHERE")]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(SOQAQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        values = [t.value for t in tokenize("= != <> < <= > >= , ( ) *")]
        assert values == ["=", "!=", "!=", "<", "<=", ">", ">=",
                          ",", "(", ")", "*"]

    def test_numbers(self):
        tokens = tokenize("LIMIT 10")
        assert tokens[1].kind == "number"
        assert tokens[1].value == "10"

    def test_identifier_with_dash_and_dot(self):
        tokens = tokenize("univ-bench_owl SUMO.owl")
        assert [t.value for t in tokens] == ["univ-bench_owl", "SUMO.owl"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SOQAQLSyntaxError):
            tokenize("name @ 3")


class TestParser:
    def test_star_select(self):
        query = parse_query("SELECT * FROM concepts")
        assert isinstance(query, SelectQuery)
        assert query.fields == ("*",)
        assert query.source == "concepts"

    def test_field_list_and_in_clause(self):
        query = parse_query(
            "SELECT name, concept FROM attributes IN 'univ-bench_owl'")
        assert query.fields == ("name", "concept")
        assert query.ontology == "univ-bench_owl"

    def test_where_precedence_and_binds_tighter_than_or(self):
        query = parse_query(
            "SELECT name FROM concepts WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(query.where, LogicalOp)
        assert query.where.op == "or"
        assert isinstance(query.where.right, LogicalOp)
        assert query.where.right.op == "and"

    def test_not_and_parentheses(self):
        query = parse_query(
            "SELECT name FROM concepts WHERE NOT (a = 1 OR b = 2)")
        assert isinstance(query.where, NotOp)
        assert isinstance(query.where.operand, LogicalOp)

    def test_like_and_contains(self):
        query = parse_query(
            "SELECT name FROM concepts WHERE name LIKE '%prof%' "
            "AND superconcepts CONTAINS 'Person'")
        comparison = query.where.left
        assert isinstance(comparison, Comparison)
        assert comparison.op == "like"
        assert query.where.right.op == "contains"

    def test_order_by_and_limit(self):
        query = parse_query(
            "SELECT name FROM concepts ORDER BY name DESC, ontology LIMIT 5")
        assert query.order_by[0].field == "name"
        assert query.order_by[0].descending
        assert query.order_by[1].field == "ontology"
        assert not query.order_by[1].descending
        assert query.limit == 5

    def test_describe(self):
        query = parse_query("DESCRIBE CONCEPT Professor IN 'base1_0_daml'")
        assert isinstance(query, DescribeQuery)
        assert query.concept_name == "Professor"
        assert query.ontology == "base1_0_daml"

    def test_show_ontologies(self):
        assert isinstance(parse_query("SHOW ONTOLOGIES"),
                          ShowOntologiesQuery)

    def test_unknown_source_raises(self):
        with pytest.raises(SOQAQLSyntaxError, match="unknown source"):
            parse_query("SELECT * FROM tables")

    def test_trailing_input_raises(self):
        with pytest.raises(SOQAQLSyntaxError, match="trailing"):
            parse_query("SHOW ONTOLOGIES extra")

    def test_empty_query_raises(self):
        with pytest.raises(SOQAQLSyntaxError, match="empty"):
            parse_query("   ")

    def test_structural_keyword_not_a_field(self):
        with pytest.raises(SOQAQLSyntaxError):
            parse_query("SELECT from FROM concepts")


class TestEvaluator:
    @pytest.fixture
    def engine(self, mini_soqa):
        return SOQAQLEngine(mini_soqa)

    def test_show_ontologies(self, engine):
        result = engine.execute("SHOW ONTOLOGIES")
        assert result.column("name") == ["univ", "MINI", "wn"]

    def test_select_star_uses_row_columns(self, engine):
        result = engine.execute("SELECT * FROM concepts IN univ LIMIT 1")
        assert "name" in result.columns
        assert "documentation" in result.columns

    def test_where_equals_case_insensitive(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts WHERE name = 'professor'")
        assert result.column("name") == ["Professor"]

    def test_where_like(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ "
            "WHERE documentation LIKE '%university%' ORDER BY name")
        assert result.column("name") == ["Employee", "Person"]

    def test_where_contains_on_list(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ "
            "WHERE superconcepts CONTAINS 'Person' ORDER BY name")
        assert result.column("name") == ["Employee", "Student"]

    def test_numeric_comparison(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ WHERE attribute_count > 0")
        assert result.column("name") == ["Person"]

    def test_boolean_field(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ WHERE is_root = true "
            "ORDER BY name")
        assert result.column("name") == ["Course", "Person"]

    def test_not_operator(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ WHERE NOT is_root = true "
            "ORDER BY name")
        assert result.column("name") == ["Employee", "Professor", "Student"]

    def test_order_by_desc_and_limit(self, engine):
        result = engine.execute(
            "SELECT name FROM concepts IN univ ORDER BY name DESC LIMIT 2")
        assert result.column("name") == ["Student", "Professor"]

    def test_attributes_source(self, engine):
        result = engine.execute("SELECT name, concept FROM attributes "
                                "IN MINI")
        assert result.rows == [["salary", "EMPLOYEE"]]

    def test_methods_source(self, engine):
        result = engine.execute("SELECT name, concept FROM methods IN MINI")
        assert result.rows == [["full-name", "PERSON"]]

    def test_relationships_source(self, engine):
        result = engine.execute(
            "SELECT name, arity FROM relationships IN MINI")
        assert ["teaches", 2] in result.rows

    def test_instances_source(self, engine):
        result = engine.execute(
            "SELECT name, concept FROM instances IN MINI")
        assert ["bob", "EMPLOYEE"] in result.rows

    def test_describe_concept(self, engine):
        result = engine.execute("DESCRIBE CONCEPT Professor IN univ")
        properties = dict(result.rows)
        assert properties["superconcepts"] == "Employee"
        assert "advises" in properties["relationships"]

    def test_describe_without_ontology_searches_all(self, engine):
        result = engine.execute("DESCRIBE CONCEPT PERSON")
        assert ["ontology", "MINI"] in result.rows

    def test_unknown_field_in_where_raises(self, engine):
        with pytest.raises(SOQAQLEvaluationError, match="unknown field"):
            engine.execute("SELECT name FROM concepts WHERE bogus = 1")

    def test_unknown_field_in_select_raises(self, engine):
        with pytest.raises(SOQAQLEvaluationError, match="unknown field"):
            engine.execute("SELECT bogus FROM concepts")

    def test_unknown_order_field_raises(self, engine):
        with pytest.raises(SOQAQLEvaluationError, match="order"):
            engine.execute("SELECT name FROM concepts ORDER BY bogus")

    def test_non_numeric_against_numeric_field_raises(self, engine):
        with pytest.raises(SOQAQLEvaluationError):
            engine.execute(
                "SELECT name FROM concepts WHERE attribute_count > 'many'")

    def test_result_to_text_renders_table(self, engine):
        text = engine.execute("SELECT name FROM concepts IN univ "
                              "LIMIT 2").to_text()
        assert "name" in text
        assert "-" in text

    def test_result_unknown_column_raises(self, engine):
        result = engine.execute("SELECT name FROM concepts LIMIT 1")
        with pytest.raises(SOQAQLEvaluationError):
            result.column("ghost")


class TestShell:
    def test_scripted_session(self, mini_soqa):
        output = io.StringIO()
        run_shell(mini_soqa, lines=[
            "show ontologies",
            "select name from concepts in univ where is_root = true",
            "describe concept Professor in univ",
            "help",
            "nonsense input",
        ], stdout=output)
        text = output.getvalue()
        assert "univ" in text
        assert "Person" in text
        assert "Examples:" in text
        assert "unknown input" in text

    def test_error_reported_not_raised(self, mini_soqa):
        output = io.StringIO()
        run_shell(mini_soqa, lines=["select bogus from concepts"],
                  stdout=output)
        assert "error:" in output.getvalue()

    def test_quit_returns_true(self, mini_soqa):
        output = io.StringIO()
        shell = run_shell(mini_soqa, lines=[], stdout=output)
        assert shell.onecmd("quit") is True
