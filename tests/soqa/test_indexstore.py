"""Tests for persisted compiled-index artifacts (.sstidx files).

Covers the format round-trip (a loaded index answers every query
bit-identically to the compiled original, through lazy mmap-backed
columns), corruption handling (bad magic, truncation, bit flips, and
foreign versions all raise the typed error and never a crash), and the
self-healing :class:`~repro.soqa.indexstore.IndexStore` (quarantine +
recompile on any broken artifact, including injected ``index.corrupt``
faults).
"""

import pytest

from repro.errors import IndexArtifactError
from repro.ontologies.generator import (generate_random_dag,
                                        generate_wordnet_taxonomy)
from repro.soqa.graphindex import CompiledTaxonomy
from repro.soqa.indexstore import (
    ARTIFACT_SUFFIX,
    DEFAULT_PERSIST_THRESHOLD,
    INDEX_PERSIST_ENV,
    IndexStore,
    load_index,
    resolve_persist_threshold,
    save_index,
)

PARENTS = generate_random_dag(150, seed=4)


@pytest.fixture
def artifact(tmp_path):
    compiled = CompiledTaxonomy(PARENTS)
    path = tmp_path / f"index{ARTIFACT_SUFFIX}"
    save_index(compiled, path)
    return compiled, path


def assert_same_answers(original: CompiledTaxonomy,
                        loaded: CompiledTaxonomy,
                        pair_limit: int = 12) -> None:
    assert loaded.nodes() == original.nodes()
    assert loaded.max_depth() == original.max_depth()
    nodes = original.nodes()
    for node in nodes:
        assert loaded.depth(node) == original.depth(node)
        assert loaded.descendant_count(node) == original.descendant_count(
            node)
        assert loaded.ancestors_with_distance(node) \
            == original.ancestors_with_distance(node)
        assert loaded.path_to_root(node) == original.path_to_root(node)
    for first in nodes[:pair_limit]:
        for second in nodes[:pair_limit]:
            assert loaded.mrca(first, second) == original.mrca(first,
                                                               second)


class TestRoundTrip:
    def test_loaded_index_answers_identically(self, artifact):
        compiled, path = artifact
        assert_same_answers(compiled, load_index(path))

    def test_round_trip_on_wordnet_shape(self, tmp_path):
        compiled = CompiledTaxonomy(generate_wordnet_taxonomy(400, seed=2))
        path = tmp_path / f"wn{ARTIFACT_SUFFIX}"
        save_index(compiled, path)
        assert_same_answers(compiled, load_index(path))

    def test_export_tables_through_lazy_columns(self, artifact):
        compiled, path = artifact
        loaded = load_index(path)
        original_tables = compiled.export_tables()
        loaded_tables = loaded.export_tables()
        for index in range(len(compiled)):
            assert (loaded_tables.ancestor_distances[index]
                    == original_tables.ancestor_distances[index])
            assert (loaded_tables.descendant_bits[index]
                    == original_tables.descendant_bits[index])
        assert (list(loaded_tables.descendant_counts)
                == list(original_tables.descendant_counts))

    def test_single_node_taxonomy(self, tmp_path):
        compiled = CompiledTaxonomy({"only": []})
        path = tmp_path / f"one{ARTIFACT_SUFFIX}"
        save_index(compiled, path)
        assert_same_answers(compiled, load_index(path))

    def test_save_is_deterministic(self, tmp_path):
        first = tmp_path / f"a{ARTIFACT_SUFFIX}"
        second = tmp_path / f"b{ARTIFACT_SUFFIX}"
        save_index(CompiledTaxonomy(PARENTS), first)
        save_index(CompiledTaxonomy(PARENTS), second)
        assert first.read_bytes() == second.read_bytes()


class TestCorruption:
    def test_bad_magic(self, artifact):
        _, path = artifact
        blob = bytearray(path.read_bytes())
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexArtifactError, match="magic"):
            load_index(path)

    def test_foreign_version(self, artifact):
        _, path = artifact
        blob = bytearray(path.read_bytes())
        blob[8] = 99  # version field follows the 8-byte magic
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexArtifactError):
            load_index(path)

    def test_truncation(self, artifact):
        _, path = artifact
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(IndexArtifactError):
            load_index(path)

    def test_payload_bit_flip_fails_checksum(self, artifact):
        _, path = artifact
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexArtifactError):
            load_index(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / f"empty{ARTIFACT_SUFFIX}"
        path.write_bytes(b"")
        with pytest.raises(IndexArtifactError):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises((IndexArtifactError, OSError)):
            load_index(tmp_path / f"absent{ARTIFACT_SUFFIX}")


class TestIndexStore:
    def test_cold_compiles_and_persists(self, tmp_path):
        store = IndexStore(tmp_path)
        compiled, provenance = store.load_or_compile(PARENTS, "f" * 64)
        assert provenance["source"] == "compiled"
        assert store.artifact_path("f" * 64).exists()
        assert compiled.nodes() == list(PARENTS)

    def test_warm_loads_the_artifact(self, tmp_path):
        store = IndexStore(tmp_path)
        store.load_or_compile(PARENTS, "f" * 64)
        loaded, provenance = store.load_or_compile(PARENTS, "f" * 64)
        assert provenance["source"] == "artifact"
        assert_same_answers(CompiledTaxonomy(PARENTS), loaded)

    def test_corrupt_artifact_quarantines_and_recompiles(self, tmp_path):
        store = IndexStore(tmp_path)
        store.load_or_compile(PARENTS, "f" * 64)
        path = store.artifact_path("f" * 64)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        path.write_bytes(bytes(blob))
        compiled, provenance = store.load_or_compile(PARENTS, "f" * 64)
        assert provenance["source"] == "compiled"
        assert store.quarantined == 1
        assert compiled.nodes() == list(PARENTS)

    def test_fingerprint_mismatch_is_a_miss_not_corruption(self, tmp_path):
        store = IndexStore(tmp_path)
        store.load_or_compile(PARENTS, "f" * 64)
        other = generate_random_dag(80, seed=8)
        # Same fingerprint key, different corpus: must recompile, not
        # serve the stale artifact, and not quarantine anything.
        compiled, provenance = store.load_or_compile(other, "f" * 64)
        assert provenance["source"] == "compiled"
        assert store.quarantined == 0
        assert compiled.nodes() == list(other)

    def test_injected_corruption_fault_self_heals(self, tmp_path):
        from repro.core.resilience import injected_faults

        store = IndexStore(tmp_path)
        store.load_or_compile(PARENTS, "f" * 64)
        with injected_faults("index.corrupt=99"):
            compiled, provenance = store.load_or_compile(PARENTS, "f" * 64)
        assert provenance["source"] == "compiled"
        assert store.quarantined == 1
        assert compiled.nodes() == list(PARENTS)


class TestThresholdResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(INDEX_PERSIST_ENV, raising=False)
        assert resolve_persist_threshold() == DEFAULT_PERSIST_THRESHOLD

    def test_off_and_numbers(self, monkeypatch):
        monkeypatch.setenv(INDEX_PERSIST_ENV, "off")
        assert resolve_persist_threshold() == -1
        monkeypatch.setenv(INDEX_PERSIST_ENV, "0")
        assert resolve_persist_threshold() == 0
        monkeypatch.setenv(INDEX_PERSIST_ENV, "2048")
        assert resolve_persist_threshold() == 2048

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(INDEX_PERSIST_ENV, "7")
        assert resolve_persist_threshold(3) == 3

    def test_garbage_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv(INDEX_PERSIST_ENV, "many")
        with pytest.raises(IndexArtifactError):
            resolve_persist_threshold()
