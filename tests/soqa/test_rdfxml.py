"""Unit tests for the RDF/XML triple reader."""

import pytest

from repro.errors import OntologyParseError
from repro.soqa.rdfxml import (
    Literal,
    OWL_NS,
    RDF_NS,
    RDFS_NS,
    local_name,
    parse_rdfxml,
)

BASE = "http://example.org/onto"


def rdf(body: str, extra_ns: str = "") -> str:
    return (f'<rdf:RDF xmlns:rdf="{RDF_NS.rstrip("#")}#" '
            f'xmlns:rdfs="{RDFS_NS.rstrip("#")}#" '
            f'xmlns:owl="{OWL_NS.rstrip("#")}#" {extra_ns} '
            f'xml:base="{BASE}">{body}</rdf:RDF>')


class TestLocalName:
    def test_fragment(self):
        assert local_name("http://x/y#Professor") == "Professor"

    def test_path_segment(self):
        assert local_name("http://x/y/Professor") == "Professor"

    def test_trailing_slash(self):
        assert local_name("http://x/y/Professor/") == "Professor"


class TestSubjects:
    def test_rdf_id_resolves_against_base(self):
        graph = parse_rdfxml(rdf('<owl:Class rdf:ID="A"/>'))
        assert graph.subjects_of_type(f"{OWL_NS}Class") == [f"{BASE}#A"]

    def test_rdf_about_absolute(self):
        graph = parse_rdfxml(rdf('<owl:Class rdf:about="http://other/B"/>'))
        assert graph.subjects_of_type(f"{OWL_NS}Class") == ["http://other/B"]

    def test_rdf_about_fragment(self):
        graph = parse_rdfxml(rdf('<owl:Class rdf:about="#C"/>'))
        assert graph.subjects_of_type(f"{OWL_NS}Class") == [f"{BASE}#C"]

    def test_anonymous_node_gets_blank_id(self):
        graph = parse_rdfxml(rdf("<owl:Class/>"))
        subject = graph.subjects_of_type(f"{OWL_NS}Class")[0]
        assert subject.startswith("_:")

    def test_description_emits_no_type(self):
        graph = parse_rdfxml(rdf('<rdf:Description rdf:ID="D"/>'))
        assert graph.types(f"{BASE}#D") == []


class TestPropertyElements:
    def test_resource_object(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A"><rdfs:subClassOf rdf:resource="#B"/>'
            "</owl:Class>"))
        assert graph.resource_objects(
            f"{BASE}#A", f"{RDFS_NS}subClassOf") == [f"{BASE}#B"]

    def test_literal_object(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A"><rdfs:label>hello</rdfs:label>'
            "</owl:Class>"))
        assert graph.literal(f"{BASE}#A", f"{RDFS_NS}label") == "hello"

    def test_literal_default(self):
        graph = parse_rdfxml(rdf('<owl:Class rdf:ID="A"/>'))
        assert graph.literal(f"{BASE}#A", f"{RDFS_NS}label",
                             default="d") == "d"

    def test_nested_node_becomes_blank_object(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A"><rdfs:subClassOf>'
            '<owl:Restriction><owl:onProperty rdf:resource="#p"/>'
            "</owl:Restriction></rdfs:subClassOf></owl:Class>"))
        blanks = graph.resource_objects(f"{BASE}#A", f"{RDFS_NS}subClassOf")
        assert len(blanks) == 1
        assert blanks[0].startswith("_:")
        assert f"{OWL_NS}Restriction" in graph.types(blanks[0])

    def test_unprefixed_tags_resolve_against_base(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="Professor"/>'
            '<Professor rdf:ID="smith"><name>Smith</name></Professor>'))
        assert f"{BASE}#Professor" in graph.types(f"{BASE}#smith")
        assert graph.literal(f"{BASE}#smith", f"{BASE}#name") == "Smith"

    def test_collection_parse_type_flattens_members(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A"><owl:unionOf rdf:parseType="Collection">'
            '<owl:Class rdf:about="#B"/><owl:Class rdf:about="#C"/>'
            "</owl:unionOf></owl:Class>"))
        members = graph.resource_objects(f"{BASE}#A", f"{OWL_NS}unionOf")
        assert members == [f"{BASE}#B", f"{BASE}#C"]

    def test_datatyped_literal_keeps_datatype(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A">'
            '<rdfs:label rdf:datatype="http://www.w3.org/2001/XMLSchema#int"'
            ">42</rdfs:label></owl:Class>"))
        objects = graph.objects(f"{BASE}#A", f"{RDFS_NS}label")
        assert objects == [Literal("42",
                                   "http://www.w3.org/2001/XMLSchema#int")]


class TestErrors:
    def test_malformed_xml_raises_parse_error(self):
        with pytest.raises(OntologyParseError, match="malformed XML"):
            parse_rdfxml("<rdf:RDF><unclosed>")

    def test_multi_child_property_rejected(self):
        with pytest.raises(OntologyParseError, match="child node"):
            parse_rdfxml(rdf(
                '<owl:Class rdf:ID="A"><rdfs:subClassOf>'
                "<owl:Class/><owl:Class/></rdfs:subClassOf></owl:Class>"))


class TestGraphQueries:
    def test_len_counts_triples(self):
        graph = parse_rdfxml(rdf('<owl:Class rdf:ID="A"/>'))
        assert len(graph) == 1  # one rdf:type triple

    def test_predicates_lists_all_statements_of_subject(self):
        graph = parse_rdfxml(rdf(
            '<owl:Class rdf:ID="A"><rdfs:label>x</rdfs:label>'
            '<rdfs:comment>y</rdfs:comment></owl:Class>'))
        assert len(graph.predicates(f"{BASE}#A")) == 3

    def test_base_attribute_overrides_default(self):
        text = rdf('<owl:Class rdf:ID="A"/>').replace(
            f'xml:base="{BASE}"', 'xml:base="http://custom/base"')
        graph = parse_rdfxml(text)
        assert graph.subjects_of_type(f"{OWL_NS}Class") == [
            "http://custom/base#A"]
