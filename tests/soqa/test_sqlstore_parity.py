"""Parity suite: a store-backed corpus is bit-identical to its
in-memory twin.

The acceptance bar for the sqlite backend is not "close" but *equal*:
the same concepts in the same order, the same taxonomy answers, and
bit-identical similarity scores for every taxonomy-backed measure the
batch kernel implements.  Randomized DAGs come from hypothesis (small,
adversarial shapes) and the seeded WordNet-shaped generator (realistic
shapes); every corpus is imported into a store and both facades are
queried side by side with caching disabled.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.facade import SOQASimPackToolkit
from repro.ontologies.generator import (generate_random_dag,
                                        generate_wordnet_taxonomy)
from repro.soqa.api import SOQA
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata
from repro.soqa.sqlstore import SqliteOntologyStore

#: The taxonomy-backed measures of the batch kernel — the ones whose
#: scores depend on the corpus structure the store must reproduce.
KERNEL_MEASURES = [
    "Conceptual Similarity", "Lin", "Resnik", "Shortest Path", "Edge",
    "Leacock-Chodorow", "Jiang-Conrath", "Resnik (normalized)",
    "Extensional",
]


def materialize(parents: dict[str, list[str]], name: str) -> Ontology:
    concepts = [Concept(name=node, superconcept_names=list(node_parents))
                for node, node_parents in parents.items()]
    return Ontology(OntologyMetadata(name=name, language="OWL"), concepts)


def twin_toolkits(tmp_path, parents: dict[str, list[str]],
                  name: str = "dag"):
    """(in-memory toolkit, store-backed toolkit) over the same DAG."""
    memory_soqa = SOQA()
    memory_soqa.add_ontology(materialize(parents, name))
    store = SqliteOntologyStore.create(tmp_path / f"{name}.sstdb",
                                       overwrite=True)
    store.import_ontology(materialize(parents, name))
    lazy_soqa = SOQA()
    lazy_soqa.add_ontology(store.ontology())
    # cache=False: the twins share corpus fingerprints by design, so a
    # shared cache could serve one toolkit's scores to the other and
    # mask a real divergence.
    return (SOQASimPackToolkit(memory_soqa, cache=False),
            SOQASimPackToolkit(lazy_soqa, cache=False))


def assert_corpus_parity(memory, lazy, name: str) -> None:
    """Concept inventory and direct taxonomy structure agree."""
    memory_ontology = memory.soqa.ontology(name)
    lazy_ontology = lazy.soqa.ontology(name)
    assert ([c.name for c in lazy_ontology]
            == [c.name for c in memory_ontology])
    for concept in memory_ontology:
        twin = lazy_ontology.concept(concept.name)
        assert twin.superconcept_names == concept.superconcept_names
        assert twin.subconcept_names == concept.subconcept_names
    assert (lazy_ontology.content_digest()
            == memory_ontology.content_digest())


def assert_query_parity(memory, lazy, parents: dict[str, list[str]],
                        name: str, pair_limit: int) -> None:
    """MRCA and all kernel measures agree on sampled pairs."""
    memory_tree = memory.tree.taxonomy
    lazy_tree = lazy.tree.taxonomy
    nodes = sorted(parents)[:pair_limit]
    labels = [f"{name}:{node}" for node in nodes]
    for first in labels:
        for second in labels:
            assert (memory_tree.mrca(first, second)
                    == lazy_tree.mrca(first, second))
    for measure in KERNEL_MEASURES:
        for first in nodes:
            for second in nodes:
                expected = memory.get_similarity(first, name, second,
                                                 name, measure)
                actual = lazy.get_similarity(first, name, second,
                                             name, measure)
                assert expected == actual, (measure, first, second)


@st.composite
def random_dags(draw) -> dict[str, list[str]]:
    size = draw(st.integers(min_value=1, max_value=12))
    nodes = [f"n{i}" for i in range(size)]
    parents: dict[str, list[str]] = {nodes[0]: []}
    for index in range(1, size):
        earlier = nodes[:index]
        count = draw(st.integers(min_value=0,
                                 max_value=min(3, len(earlier))))
        chosen = draw(st.permutations(earlier))[:count]
        parents[nodes[index]] = list(chosen)
    return parents


@given(random_dags())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_store_matches_memory_on_hypothesis_dags(tmp_path, parents):
    memory, lazy = twin_toolkits(tmp_path, parents)
    assert_corpus_parity(memory, lazy, "dag")
    assert_query_parity(memory, lazy, parents, "dag", pair_limit=4)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_store_matches_memory_on_seeded_random_dags(tmp_path, seed):
    parents = generate_random_dag(80, seed=seed)
    memory, lazy = twin_toolkits(tmp_path, parents, name=f"rand{seed}")
    assert_corpus_parity(memory, lazy, f"rand{seed}")
    assert_query_parity(memory, lazy, parents, f"rand{seed}", pair_limit=5)


@pytest.mark.parametrize("seed", [0, 7])
def test_store_matches_memory_on_wordnet_shape(tmp_path, seed):
    parents = generate_wordnet_taxonomy(150, seed=seed)
    memory, lazy = twin_toolkits(tmp_path, parents, name=f"wn{seed}")
    assert_corpus_parity(memory, lazy, f"wn{seed}")
    assert_query_parity(memory, lazy, parents, f"wn{seed}", pair_limit=5)


def test_batch_api_parity(tmp_path):
    """The matrix path (the kernel batch entry) agrees end to end."""
    parents = generate_random_dag(60, seed=9)
    memory, lazy = twin_toolkits(tmp_path, parents, name="batch")
    concepts = [("batch", node) for node in sorted(parents)[:6]]
    for measure in KERNEL_MEASURES:
        assert (memory.get_similarity_matrix(concepts, measure)
                == lazy.get_similarity_matrix(concepts, measure))


def test_all_measures_dict_parity(tmp_path):
    """get_similarities returns identical measure dictionaries."""
    parents = generate_random_dag(40, seed=11)
    memory, lazy = twin_toolkits(tmp_path, parents, name="dicts")
    nodes = sorted(parents)[:3]
    for first in nodes:
        for second in nodes:
            assert (memory.get_similarities(first, "dicts", second,
                                            "dicts", KERNEL_MEASURES)
                    == lazy.get_similarities(first, "dicts", second,
                                             "dicts", KERNEL_MEASURES))
