"""Unit tests for the Turtle and N-Triples readers and wrappers."""

import pytest

from repro.errors import OntologyParseError
from repro.soqa.rdfxml import Literal, OWL_NS, RDFS_NS
from repro.soqa.turtle import parse_ntriples, parse_turtle
from repro.soqa.wrappers.owl import NTriplesWrapper, OWLTurtleWrapper

TURTLE_TEXT = """
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix :     <http://example.org/univ#> .
@base <http://example.org/univ> .

# A tiny university ontology in Turtle.
:Person a owl:Class ;
    rdfs:comment "A human being at the university" .

:Employee a owl:Class ;
    rdfs:subClassOf :Person ;
    rdfs:comment "A person employed by the university" .

:Professor a owl:Class ;
    rdfs:subClassOf :Employee ;
    rdfs:comment "A senior teacher and researcher" .

:Student a owl:Class ;
    rdfs:subClassOf :Person .

:name a owl:DatatypeProperty ;
    rdfs:domain :Person ;
    rdfs:range <http://www.w3.org/2001/XMLSchema#string> .

:advises a owl:ObjectProperty ;
    rdfs:domain :Professor ;
    rdfs:range :Student .

:smith a :Professor ;
    :name "Prof. Smith" ;
    :advises :jane .

:jane a :Student ;
    :name "Jane"@en .
"""

NTRIPLES_TEXT = """
<http://x/o#A> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#Class> .
<http://x/o#B> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#Class> .
# a comment line
<http://x/o#B> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/o#A> .
<http://x/o#B> <http://www.w3.org/2000/01/rdf-schema#comment> "subclass of A" .
"""


class TestTurtleParsing:
    def test_typed_subjects(self):
        graph = parse_turtle(TURTLE_TEXT)
        classes = graph.subjects_of_type(f"{OWL_NS}Class")
        assert "http://example.org/univ#Professor" in classes
        assert len(classes) == 4

    def test_a_keyword_is_rdf_type(self):
        graph = parse_turtle(TURTLE_TEXT)
        assert f"{OWL_NS}Class" in graph.types(
            "http://example.org/univ#Person")

    def test_predicate_lists_with_semicolons(self):
        graph = parse_turtle(TURTLE_TEXT)
        assert graph.resource_objects(
            "http://example.org/univ#Professor",
            f"{RDFS_NS}subClassOf") == ["http://example.org/univ#Employee"]
        assert graph.literal("http://example.org/univ#Professor",
                             f"{RDFS_NS}comment") == \
            "A senior teacher and researcher"

    def test_language_tagged_literal(self):
        graph = parse_turtle(TURTLE_TEXT)
        assert graph.literal("http://example.org/univ#jane",
                             "http://example.org/univ#name") == "Jane"

    def test_object_lists_with_commas(self):
        text = ("@prefix : <http://x#> .\n"
                ":a :knows :b, :c .")
        graph = parse_turtle(text)
        assert graph.resource_objects("http://x#a",
                                      "http://x#knows") == [
            "http://x#b", "http://x#c"]

    def test_datatyped_literal(self):
        text = ('@prefix : <http://x#> .\n'
                '@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
                ':a :age "42"^^xsd:int .')
        graph = parse_turtle(text)
        assert graph.objects("http://x#a", "http://x#age") == [
            Literal("42", "http://www.w3.org/2001/XMLSchema#int")]

    def test_numeric_and_boolean_shorthand(self):
        text = ("@prefix : <http://x#> .\n"
                ":a :count 3 ; :rate 1.5 ; :flag true .")
        graph = parse_turtle(text)
        count = graph.objects("http://x#a", "http://x#count")[0]
        assert count.value == "3"
        assert count.datatype.endswith("integer")
        rate = graph.objects("http://x#a", "http://x#rate")[0]
        assert rate.datatype.endswith("decimal")
        flag = graph.objects("http://x#a", "http://x#flag")[0]
        assert flag.datatype.endswith("boolean")

    def test_anonymous_blank_node(self):
        text = ("@prefix : <http://x#> .\n"
                ":a :has [ :inner :b ] .")
        graph = parse_turtle(text)
        blanks = graph.resource_objects("http://x#a", "http://x#has")
        assert len(blanks) == 1
        assert blanks[0].startswith("_:")
        assert graph.resource_objects(blanks[0],
                                      "http://x#inner") == ["http://x#b"]

    def test_long_string_literal(self):
        text = ('@prefix : <http://x#> .\n'
                ':a :doc """line one\nline two""" .')
        graph = parse_turtle(text)
        assert graph.literal("http://x#a",
                             "http://x#doc") == "line one\nline two"

    def test_escaped_quote(self):
        text = ('@prefix : <http://x#> .\n'
                ':a :doc "say \\"hi\\"" .')
        graph = parse_turtle(text)
        assert graph.literal("http://x#a", "http://x#doc") == 'say "hi"'

    def test_undeclared_prefix_raises(self):
        with pytest.raises(OntologyParseError, match="undeclared prefix"):
            parse_turtle(":a :b :c .")

    def test_unterminated_iri_raises(self):
        with pytest.raises(OntologyParseError, match="unterminated IRI"):
            parse_turtle("<http://x")

    def test_unterminated_string_raises(self):
        with pytest.raises(OntologyParseError, match="unterminated"):
            parse_turtle('@prefix : <http://x#> .\n:a :b "oops .')

    def test_missing_dot_raises(self):
        with pytest.raises(OntologyParseError, match="expected"):
            parse_turtle("@prefix : <http://x#> .\n:a :b :c")


class TestNTriples:
    def test_triples_parsed(self):
        graph = parse_ntriples(NTRIPLES_TEXT)
        assert len(graph) == 4
        assert graph.resource_objects(
            "http://x/o#B", f"{RDFS_NS}subClassOf") == ["http://x/o#A"]

    def test_comments_and_blank_lines_skipped(self):
        graph = parse_ntriples("\n# only a comment\n")
        assert len(graph) == 0

    def test_literal_object(self):
        graph = parse_ntriples(NTRIPLES_TEXT)
        assert graph.literal("http://x/o#B",
                             f"{RDFS_NS}comment") == "subclass of A"


class TestTurtleWrappers:
    def test_owl_turtle_wrapper_builds_same_model(self):
        ontology = OWLTurtleWrapper().parse(TURTLE_TEXT, "univ")
        assert sorted(concept.name for concept in ontology) == [
            "Employee", "Person", "Professor", "Student"]
        assert ontology.concept("Professor").superconcept_names == [
            "Employee"]
        assert ontology.metadata.language == "OWL"

    def test_turtle_individuals(self):
        ontology = OWLTurtleWrapper().parse(TURTLE_TEXT, "univ")
        instances = ontology.concept("Professor").instances
        assert [instance.name for instance in instances] == ["smith"]
        assert instances[0].attribute_values["name"] == "Prof. Smith"

    def test_turtle_properties(self):
        ontology = OWLTurtleWrapper().parse(TURTLE_TEXT, "univ")
        assert [attribute.name for attribute
                in ontology.concept("Person").attributes] == ["name"]
        assert [relationship.name for relationship
                in ontology.concept("Professor").relationships] == [
            "advises"]

    def test_ntriples_wrapper(self):
        ontology = NTriplesWrapper().parse(NTRIPLES_TEXT, "nt")
        assert ontology.concept("B").superconcept_names == ["A"]

    def test_registry_dispatch(self):
        from repro.soqa.wrapper import default_registry

        registry = default_registry()
        assert isinstance(registry.for_path("a.ttl"), OWLTurtleWrapper)
        assert isinstance(registry.for_path("a.nt"), NTriplesWrapper)

    def test_rdfxml_and_turtle_equivalent_models(self):
        """The same ontology in both serializations parses identically."""
        from repro.soqa.wrappers.owl import OWLWrapper
        from tests.conftest import MINI_OWL

        xml_ontology = OWLWrapper().parse(MINI_OWL, "univ")
        turtle_ontology = OWLTurtleWrapper().parse(TURTLE_TEXT, "univ")
        shared = {"Person", "Employee", "Professor", "Student"}
        for name in shared:
            assert xml_ontology.concept(name).superconcept_names == \
                turtle_ontology.concept(name).superconcept_names
