"""Unit tests for the compiled taxonomy index and its lazy delegation."""

import pytest

from repro.errors import SSTError, UnknownConceptError
from repro.soqa.graph import ANY_PATH, VIA_ANCESTOR, Taxonomy
from repro.soqa.graphindex import (CompiledTaxonomy,
                                   DEFAULT_INDEX_THRESHOLD,
                                   INDEX_THRESHOLD_ENV,
                                   resolve_index_threshold)

#      Root
#     /    \
#   Left  Right      (diamond: Bottom has two parents)
#     \    /
#     Bottom ── Leaf
DIAMOND = {
    "Root": [],
    "Left": ["Root"],
    "Right": ["Root"],
    "Bottom": ["Left", "Right"],
    "Leaf": ["Bottom"],
}


class TestThresholdResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(INDEX_THRESHOLD_ENV, raising=False)
        assert resolve_index_threshold() == DEFAULT_INDEX_THRESHOLD

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(INDEX_THRESHOLD_ENV, "7")
        assert resolve_index_threshold() == 7

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(INDEX_THRESHOLD_ENV, "7")
        assert resolve_index_threshold(3) == 3

    def test_invalid_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv(INDEX_THRESHOLD_ENV, "many")
        with pytest.raises(SSTError):
            resolve_index_threshold()


class TestLazyDelegation:
    def test_small_taxonomy_stays_naive(self):
        taxonomy = Taxonomy(DIAMOND)  # default threshold is 512
        taxonomy.mrca("Left", "Right")
        assert not taxonomy.is_compiled

    def test_compiles_lazily_at_threshold(self):
        taxonomy = Taxonomy(DIAMOND, index_threshold=5)
        assert not taxonomy.is_compiled  # construction never compiles
        taxonomy.mrca("Left", "Right")
        assert taxonomy.is_compiled

    def test_zero_threshold_always_compiles(self):
        taxonomy = Taxonomy(DIAMOND, index_threshold=0)
        taxonomy.depth("Leaf")
        assert taxonomy.is_compiled

    def test_negative_threshold_never_compiles(self):
        taxonomy = Taxonomy(DIAMOND, index_threshold=-1)
        taxonomy.max_depth()
        taxonomy.mrca("Left", "Right")
        assert not taxonomy.is_compiled

    def test_environment_threshold_applies(self, monkeypatch):
        monkeypatch.setenv(INDEX_THRESHOLD_ENV, "2")
        taxonomy = Taxonomy(DIAMOND)
        assert taxonomy.index_threshold == 2
        taxonomy.depth("Leaf")
        assert taxonomy.is_compiled

    def test_compile_is_idempotent(self):
        taxonomy = Taxonomy(DIAMOND)
        first = taxonomy.compile()
        assert taxonomy.compile() is first


class TestCompiledQueries:
    @pytest.fixture
    def compiled(self) -> CompiledTaxonomy:
        return CompiledTaxonomy(DIAMOND)

    def test_structure(self, compiled):
        assert len(compiled) == 5
        assert "Bottom" in compiled and "Elsewhere" not in compiled
        assert compiled.nodes() == list(DIAMOND)

    def test_depths(self, compiled):
        assert compiled.depth("Root") == 0
        assert compiled.depth("Bottom") == 2
        assert compiled.max_depth() == 3

    def test_ancestors(self, compiled):
        assert compiled.ancestors_with_distance("Bottom") == {
            "Bottom": 0, "Left": 1, "Right": 1, "Root": 2}
        assert compiled.common_ancestors("Left", "Right") == {"Root"}

    def test_mrca_diamond_tie_breaks_by_name(self, compiled):
        # Left and Right are both distance-2 meeting points of nowhere;
        # for Bottom vs Bottom's uncles the tie is resolved like the
        # naive implementation: smaller distance sum, deeper ancestor,
        # then lexicographic name.
        assert compiled.mrca("Left", "Right") == ("Root", 1, 1)
        assert compiled.mrca("Bottom", "Left") == ("Left", 1, 0)

    def test_mrca_disjoint_components_is_none(self):
        taxonomy = CompiledTaxonomy({"A": [], "B": []})
        assert taxonomy.mrca("A", "B") is None
        assert taxonomy.shortest_path_length("A", "B") is None
        assert taxonomy.shortest_path_length("A", "B", ANY_PATH) is None

    def test_path_policies_differ_through_descendants(self):
        # Two parents share only a child: no common ancestor, but an
        # undirected path exists through the shared descendant.
        parents = {"P1": [], "P2": [], "C": ["P1", "P2"]}
        compiled = CompiledTaxonomy(parents)
        assert compiled.shortest_path_length("P1", "P2",
                                             VIA_ANCESTOR) is None
        assert compiled.shortest_path_length("P1", "P2", ANY_PATH) == 2

    def test_descendants(self, compiled):
        assert compiled.descendant_count("Root") == 5
        assert compiled.descendants("Root") == {"Left", "Right", "Bottom",
                                                "Leaf"}
        assert compiled.descendant_count("Leaf") == 1
        assert compiled.descendants("Leaf") == set()

    def test_diamond_descendants_not_double_counted(self, compiled):
        # Bottom is reachable via Left and Right but counts once.
        assert compiled.descendant_count("Left") == 3

    def test_path_to_root(self, compiled):
        assert compiled.path_to_root("Leaf") == ["Leaf", "Bottom", "Left",
                                                 "Root"]

    def test_unknown_concept_raises(self, compiled):
        with pytest.raises(UnknownConceptError):
            compiled.depth("Nope")
        with pytest.raises(UnknownConceptError):
            compiled.mrca("Root", "Nope")

    def test_unknown_parent_raises(self):
        with pytest.raises(UnknownConceptError):
            CompiledTaxonomy({"A": ["Ghost"]})

    def test_unknown_policy_raises(self, compiled):
        with pytest.raises(ValueError):
            compiled.shortest_path_length("Root", "Leaf", "sideways")

    def test_self_distance_is_zero(self, compiled):
        assert compiled.shortest_path_length("Leaf", "Leaf") == 0
        assert compiled.shortest_path_length("Leaf", "Leaf", ANY_PATH) == 0
