"""Unit tests for the SOQA facade."""

import pytest

from repro.errors import UnknownOntologyError, UnsupportedLanguageError
from repro.soqa.api import SOQA
from tests.conftest import MINI_OWL, MINI_PLOOM


class TestLoading:
    def test_load_text_registers_under_requested_name(self, mini_soqa):
        assert mini_soqa.ontology_names() == ["univ", "MINI", "wn"]

    def test_load_file_dispatches_on_suffix(self, tmp_path):
        path = tmp_path / "mini.owl"
        path.write_text(MINI_OWL, encoding="utf-8")
        soqa = SOQA()
        ontology = soqa.load_file(path)
        assert ontology.name == "mini"
        assert ontology.language == "OWL"

    def test_load_file_with_explicit_language(self, tmp_path):
        path = tmp_path / "weird-extension.txt"
        path.write_text(MINI_PLOOM, encoding="utf-8")
        soqa = SOQA()
        ontology = soqa.load_file(path, name="courses",
                                  language="PowerLoom")
        assert ontology.name == "courses"
        assert ontology.language == "PowerLoom"

    def test_load_file_unknown_suffix_raises(self, tmp_path):
        path = tmp_path / "mini.xyz"
        path.write_text(MINI_OWL, encoding="utf-8")
        with pytest.raises(UnsupportedLanguageError):
            SOQA().load_file(path)

    def test_remove_ontology(self, mini_soqa):
        mini_soqa.remove_ontology("wn")
        assert "wn" not in mini_soqa.ontology_names()
        with pytest.raises(UnknownOntologyError):
            mini_soqa.ontology("wn")

    def test_remove_unknown_raises(self, mini_soqa):
        with pytest.raises(UnknownOntologyError):
            mini_soqa.remove_ontology("ghost")

    def test_reload_replaces(self, mini_soqa):
        before = len(mini_soqa.ontology("univ"))
        mini_soqa.load_text(MINI_OWL, "univ", "OWL")
        assert len(mini_soqa.ontology("univ")) == before
        assert mini_soqa.ontology_names().count("univ") == 1


class TestAccess:
    def test_concept_count_sums_ontologies(self, mini_soqa):
        expected = sum(len(mini_soqa.ontology(name))
                       for name in mini_soqa.ontology_names())
        assert mini_soqa.concept_count() == expected

    def test_languages_in_use(self, mini_soqa):
        assert mini_soqa.languages_in_use() == ["OWL", "PowerLoom",
                                                "WordNet"]

    def test_find_concepts_across_ontologies(self, mini_soqa):
        hits = mini_soqa.find_concepts("person")
        assert [(name, concept.name) for name, concept in hits] == [
            ("wn", "person")]

    def test_all_concepts_pairs(self, mini_soqa):
        pairs = mini_soqa.all_concepts()
        assert ("univ", mini_soqa.concept("Professor", "univ")) in [
            (name, concept) for name, concept in pairs]

    def test_metadata_delegation(self, mini_soqa):
        assert mini_soqa.metadata("univ").version == "0.1"

    def test_navigation_delegation(self, mini_soqa):
        supers = mini_soqa.superconcepts("Professor", "univ")
        assert [c.name for c in supers] == ["Employee", "Person"]
        subs = mini_soqa.direct_subconcepts("Person", "univ")
        assert sorted(c.name for c in subs) == ["Employee", "Student"]
        coordinates = mini_soqa.coordinate_concepts("Employee", "univ")
        assert [c.name for c in coordinates] == ["Student"]

    def test_element_delegation(self, mini_soqa):
        assert [a.name for a in mini_soqa.attributes("PERSON", "MINI")] == []
        assert [m.name for m in mini_soqa.methods("PERSON", "MINI")] == [
            "full-name"]
        assert [r.name
                for r in mini_soqa.relationships("EMPLOYEE", "MINI")] == [
            "teaches"]
        assert [i.name for i in mini_soqa.instances("PERSON", "MINI")] == [
            "bob"]

    def test_concept_description_delegation(self, mini_soqa):
        text = mini_soqa.concept_description("Professor", "univ")
        assert "Professor" in text
        assert "advises" in text


class TestTaxonomy:
    def test_taxonomy_is_cached(self, mini_soqa):
        assert mini_soqa.taxonomy("univ") is mini_soqa.taxonomy("univ")

    def test_taxonomy_invalidated_on_reload(self, mini_soqa):
        taxonomy = mini_soqa.taxonomy("univ")
        mini_soqa.load_text(MINI_OWL, "univ", "OWL")
        assert mini_soqa.taxonomy("univ") is not taxonomy

    def test_taxonomy_reflects_hierarchy(self, mini_soqa):
        taxonomy = mini_soqa.taxonomy("univ")
        assert taxonomy.depth("Professor") == 2
        assert taxonomy.parents("Professor") == ("Employee",)
