"""Chaos suite: CLI runs under injected faults stay bit-identical.

The acceptance bar of the fault-tolerance layer: whatever faults are
armed — crashing pool workers, chunks sleeping past their timeout, a
scribbled-over L2 sqlite file, flaky ontology reads — ``sst`` completes
with *exactly* the stdout a fault-free serial run produces, and what
happened is visible in the ``resilience.*`` / ``faults.injected*`` /
``cache.l2.*`` telemetry counters instead of an exception.

Faults are armed through the ``--inject-faults`` flag (or ``SST_FAULTS``
— ``main()`` re-reads the environment per invocation), so these tests
drive the same code path a user chaos-testing a deployment would.
"""

import pytest

from repro.cli import main
from repro.core import telemetry

#: A fault-free serial matrix over a small slice of the paper corpus.
MATRIX_ARGS = ["matrix", "--from-ontology", "COURSES", "--limit", "8"]

#: The same matrix forced through the supervised process strategy.
PARALLEL = ["--workers", "2", "--strategy", "process"]


@pytest.fixture(autouse=True)
def _own_cache_dir(tmp_path, monkeypatch):
    """Each chaos test gets a private L2 directory it may destroy."""
    monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "l2"))
    monkeypatch.delenv("SST_FAULTS", raising=False)
    yield tmp_path / "l2"


@pytest.fixture
def baseline(capsys):
    """Stdout of the clean serial run every chaos run must reproduce."""
    assert main(MATRIX_ARGS) == 0
    output = capsys.readouterr().out
    assert output.strip()
    return output


def counter(name: str) -> int:
    return telemetry.get_registry().value(name)


class TestWorkerCrashChaos:
    def test_crashing_workers_yield_bit_identical_matrix(self, baseline,
                                                         capsys):
        # Every forked worker kills its first 99 chunks, so both the
        # launch and all relaunches fail; the run must finish on the
        # degradation ladder with the exact same stdout.
        code = main(["--inject-faults", "worker.crash=99"]
                    + MATRIX_ARGS + PARALLEL + ["--retry-budget", "1"])
        assert code == 0
        assert capsys.readouterr().out == baseline
        assert counter("resilience.degraded") >= 1
        assert counter("resilience.pool_failures.crash") == 2

    def test_faults_env_arms_the_same_plan(self, baseline, capsys,
                                           monkeypatch):
        monkeypatch.setenv("SST_FAULTS", "worker.crash=99")
        code = main(MATRIX_ARGS + PARALLEL + ["--retry-budget", "0"])
        assert code == 0
        assert capsys.readouterr().out == baseline
        assert counter("resilience.degraded") >= 1


class TestTimeoutChaos:
    def test_slow_chunks_yield_bit_identical_matrix(self, baseline,
                                                    capsys):
        code = main(["--inject-faults", "task.slow=99@0.6"]
                    + MATRIX_ARGS + PARALLEL
                    + ["--task-timeout", "0.15", "--retry-budget", "0"])
        assert code == 0
        assert capsys.readouterr().out == baseline
        assert counter("resilience.pool_failures.timeout") == 1
        assert counter("resilience.degraded") >= 1


class TestCacheCorruptionChaos:
    def test_corrupt_l2_is_quarantined_mid_command(self, baseline, capsys,
                                                   _own_cache_dir):
        # The baseline run built a healthy sqlite file; the fault
        # scribbles over it at the next connect.
        code = main(["--inject-faults", "cache.corrupt=1"] + MATRIX_ARGS)
        assert code == 0
        assert capsys.readouterr().out == baseline
        assert counter("cache.l2.quarantined") == 1
        assert counter("faults.injected.cache.corrupt") == 1
        evidence = list(_own_cache_dir.glob("*.corrupt-*"))
        assert len(evidence) == 1

    def test_everything_at_once(self, baseline, capsys, _own_cache_dir):
        spec = "worker.crash=99,cache.corrupt=1,loader.io=1"
        code = main(["--inject-faults", spec]
                    + MATRIX_ARGS + PARALLEL + ["--retry-budget", "0"])
        assert code == 0
        assert capsys.readouterr().out == baseline
        assert counter("resilience.degraded") >= 1
        assert counter("cache.l2.quarantined") == 1
        assert counter("resilience.retries") == 1  # loader retried once


class TestTelemetryKillSwitch:
    def test_stdout_identical_with_telemetry_off(self, baseline, capsys,
                                                 monkeypatch):
        monkeypatch.setenv("SST_TELEMETRY", "off")
        code = main(["--inject-faults", "worker.crash=99"]
                    + MATRIX_ARGS + PARALLEL + ["--retry-budget", "0"])
        assert code == 0
        assert capsys.readouterr().out == baseline
        # Counters stayed dark: the kill switch silences the books, not
        # the recovery behaviour.
        assert counter("resilience.degraded") == 0


class TestLoaderChaos:
    def test_transient_read_fault_is_absorbed(self, capsys):
        assert main(["--inject-faults", "loader.io=1", "ontologies"]) == 0
        assert "COURSES" in capsys.readouterr().out
        assert counter("resilience.retries") == 1
        assert counter("faults.injected.loader.io") == 1

    def test_persistent_read_fault_exhausts_cleanly(self, capsys):
        # Quota >= attempts: every retry hits the fault, so the command
        # must fail with a one-line error instead of a traceback.
        assert main(["--inject-faults", "loader.io=9", "ontologies"]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert counter("resilience.retry_exhausted") == 1


class TestCLIGuards:
    def test_malformed_fault_spec_is_a_clean_error(self, capsys):
        assert main(["--inject-faults", "warp.core=1", "ontologies"]) == 1
        assert "unknown fault site" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def interrupt(arguments):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._run", interrupt)
        assert main(["ontologies"]) == 130
        assert "interrupted" in capsys.readouterr().err
