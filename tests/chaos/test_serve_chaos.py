"""Chaos under traffic: a live ``sst serve`` absorbs injected faults.

The service-level counterpart of ``test_chaos.py``: faults are armed
via :func:`repro.core.resilience.injected_faults` against a **running**
server, and the bar is the same — responses bit-identical to a clean
run, failures typed (504 on deadline, 503 + Retry-After while the
breaker holds), recovery automatic (quarantined L2 shards, self-healed
index artifacts, half-open probes), and everything visible in
``/metrics`` instead of a traceback.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.registry import Measure
from repro.core.resilience import CircuitBreaker, injected_faults
from repro.core.server import ServerConfig, serve_in_thread
from repro.ontologies.generator import generate_random_dag
from tests.server.conftest import client_for, counter, dag_toolkit

#: One fixed DAG per module so every boot serves the same corpus.
DAG = generate_random_dag(48, seed=11)
NAMES = sorted(DAG)

#: The matrix request every chaos scenario replays.
PAYLOAD = {"concepts": [["chaos", name] for name in NAMES[:8]],
           "measure": int(Measure.SHORTEST_PATH)}


@pytest.fixture(autouse=True)
def _own_cache_dir(tmp_path, monkeypatch):
    """Each chaos test gets a private L2 directory it may destroy."""
    monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "l2"))
    monkeypatch.delenv("SST_FAULTS", raising=False)
    yield tmp_path / "l2"


def chaos_toolkit(cache: bool = False):
    return dag_toolkit({"chaos": DAG}, cache=cache)


def matrix(client) -> tuple[int, dict, bytes]:
    return client.post_json("/v1/similarity", PAYLOAD)


class TestSlowRequestChaos:
    def test_slow_fault_times_out_then_serves_identically(self):
        config = ServerConfig(port=0, deadline_seconds=0.3)
        with serve_in_thread(chaos_toolkit(), config) as handle:
            client = client_for(handle)
            status, _, clean = matrix(client)
            assert status == 200
            deadline_responses = counter("server.responses.deadline")
            fired = counter("faults.injected.server.slow")
            with injected_faults("server.slow=1@1.0"):
                status, _, body = matrix(client)
                assert status == 504, body
                assert json.loads(body)["error"]["code"] \
                    == "deadline_exceeded"
            assert counter("server.responses.deadline") \
                == deadline_responses + 1
            assert counter("faults.injected.server.slow") == fired + 1
            # The fault quota is spent: the very next response is 200
            # with the exact bytes of the clean run.
            status, _, body = matrix(client)
            assert status == 200
            assert body == clean


class TestBreakerChaos:
    def test_breaker_opens_rejects_then_half_open_recovers(self):
        config = ServerConfig(port=0, deadline_seconds=0.2,
                              breaker_threshold=2, breaker_reset=0.5)
        with serve_in_thread(chaos_toolkit(), config) as handle:
            client = client_for(handle)
            status, _, clean = matrix(client)
            assert status == 200
            rejected = counter("server.rejected.breaker")
            with injected_faults("server.slow=2@1.0"):
                for _ in range(2):
                    status, _, body = matrix(client)
                    assert status == 504, body
            assert handle.service.breaker.state == CircuitBreaker.OPEN
            # While the circuit holds, requests are refused up front
            # with a typed 503 and a Retry-After hint.
            status, headers, body = matrix(client)
            assert status == 503, body
            assert json.loads(body)["error"]["code"] == "unavailable"
            assert int(headers["retry-after"]) >= 1
            assert counter("server.rejected.breaker") == rejected + 1
            # After the reset window one probe is admitted; its success
            # closes the circuit and service resumes bit-identically.
            time.sleep(0.6)
            status, _, body = matrix(client)
            assert status == 200, body
            assert body == clean
            assert handle.service.breaker.state == CircuitBreaker.CLOSED

    def test_client_error_probe_resolves_instead_of_wedging(self):
        """Regression: a half-open probe that turns out to be a 422
        must close the circuit, not leave it HALF_OPEN forever (which
        would 503 every request until restart)."""
        config = ServerConfig(port=0, deadline_seconds=0.2,
                              breaker_threshold=2, breaker_reset=0.3)
        with serve_in_thread(chaos_toolkit(), config) as handle:
            client = client_for(handle)
            status, _, clean = matrix(client)
            assert status == 200
            with injected_faults("server.slow=2@1.0"):
                for _ in range(2):
                    status, _, _ = matrix(client)
                    assert status == 504
            assert handle.service.breaker.state == CircuitBreaker.OPEN
            time.sleep(0.4)
            # The admitted probe is a client error: backend healthy.
            status, _, body = client.post_json(
                "/v1/similarity", {"measure": "no-such-measure"})
            assert status == 422, body
            assert handle.service.breaker.state == CircuitBreaker.CLOSED
            # Traffic flows again immediately — no permanent 503.
            status, _, body = matrix(client)
            assert status == 200, body
            assert body == clean

    def test_unexpected_probe_failure_reopens_instead_of_wedging(self):
        """Regression: a half-open probe dying on a non-SST exception
        must re-open the circuit (failure recorded), never strand it
        HALF_OPEN with allow() refusing everything."""
        config = ServerConfig(port=0, deadline_seconds=0.2,
                              breaker_threshold=2, breaker_reset=0.3)
        with serve_in_thread(chaos_toolkit(), config) as handle:
            client = client_for(handle)
            status, _, clean = matrix(client)
            assert status == 200
            with injected_faults("server.slow=2@1.0"):
                for _ in range(2):
                    status, _, _ = matrix(client)
                    assert status == 504
            assert handle.service.breaker.state == CircuitBreaker.OPEN
            time.sleep(0.4)
            original = handle.service.similarity

            def _explode(payload, deadline):
                raise RuntimeError("probe dies unexpectedly")

            handle.service.similarity = _explode
            try:
                status, _, body = matrix(client)
                assert status == 500, body
            finally:
                handle.service.similarity = original
            # The failed probe re-opened the circuit — a resolved
            # outcome, not a leak: the next window admits a new probe.
            assert handle.service.breaker.state == CircuitBreaker.OPEN
            status, _, _ = matrix(client)
            assert status == 503
            time.sleep(0.4)
            status, _, body = matrix(client)
            assert status == 200, body
            assert body == clean
            assert handle.service.breaker.state == CircuitBreaker.CLOSED


class TestWorkerCrashChaos:
    def test_crashing_pool_workers_under_traffic_stay_identical(
            self, monkeypatch):
        monkeypatch.setenv("SST_WORKERS", "2")
        monkeypatch.setenv("SST_STRATEGY", "process")
        monkeypatch.setenv("SST_RETRY_BUDGET", "1")
        payload = {"pairs": [["chaos", NAMES[index],
                              "chaos", NAMES[index + 9]]
                             for index in range(12)],
                   "measure": int(Measure.LIN)}
        with serve_in_thread(chaos_toolkit()) as handle:
            client = client_for(handle)
            status, _, clean = client.post_json("/v1/similarity", payload)
            assert status == 200
            degraded = counter("resilience.degraded")
            with injected_faults("worker.crash=99"):
                # Every forked worker kills its first 99 chunks; the
                # request must ride the degradation ladder down to a
                # serial batch and still answer the same bytes.
                status, _, body = client.post_json("/v1/similarity",
                                                   payload)
            assert status == 200, body
            assert body == clean
            assert counter("resilience.degraded") >= degraded + 1
            assert client.get_json("/healthz")["status"] == "ok"


class TestCacheCorruptionChaos:
    def test_corrupt_l2_is_quarantined_between_boots(self,
                                                     _own_cache_dir):
        with serve_in_thread(chaos_toolkit(cache=True)) as handle:
            status, _, clean = matrix(client_for(handle))
            assert status == 200
            handle.service.toolkit.flush_caches()
        quarantined = counter("cache.l2.quarantined")
        with injected_faults("cache.corrupt=1"):
            # A fresh boot over the (scribbled-at-connect) store must
            # quarantine the shard and recompute the same bytes.
            with serve_in_thread(chaos_toolkit(cache=True)) as handle:
                status, _, body = matrix(client_for(handle))
                assert status == 200, body
                assert body == clean
        assert counter("cache.l2.quarantined") == quarantined + 1
        assert len(list(_own_cache_dir.glob("*.corrupt-*"))) == 1


class TestIndexCorruptionChaos:
    def test_corrupt_index_artifact_self_heals(self, monkeypatch,
                                               _own_cache_dir):
        monkeypatch.setenv("SST_INDEX_THRESHOLD", "0")
        monkeypatch.setenv("SST_INDEX_PERSIST", "0")
        with serve_in_thread(chaos_toolkit(cache=True)) as handle:
            status, _, clean = matrix(client_for(handle))
            assert status == 200
        artifacts = list((_own_cache_dir / "index").glob("*.sstidx"))
        assert artifacts, "first boot must persist the compiled index"
        quarantined = counter("index.persist.quarantined")
        fired = counter("faults.injected.index.corrupt")
        with injected_faults("index.corrupt=1"):
            with serve_in_thread(chaos_toolkit(cache=True)) as handle:
                status, _, body = matrix(client_for(handle))
                assert status == 200, body
                assert body == clean
        assert counter("faults.injected.index.corrupt") == fired + 1
        assert counter("index.persist.quarantined") == quarantined + 1
        assert list((_own_cache_dir / "index").glob("*.corrupt-*"))


class TestChaosVisibility:
    def test_fault_and_outcome_counters_surface_in_metrics(self):
        config = ServerConfig(port=0, deadline_seconds=0.3)
        with serve_in_thread(chaos_toolkit(), config) as handle:
            client = client_for(handle)
            with injected_faults("server.slow=1@1.0"):
                status, _, _ = matrix(client)
                assert status == 504
            status, _, body = client.get("/metrics")
            assert status == 200
            text = body.decode("utf-8")
            assert "sst_faults_injected" in text
            assert "sst_server_responses_deadline" in text
            assert "sst_server_requests" in text

    def test_everything_at_once_under_traffic(self, _own_cache_dir):
        with serve_in_thread(chaos_toolkit(cache=True)) as handle:
            status, _, clean = matrix(client_for(handle))
            assert status == 200
            handle.service.toolkit.flush_caches()
        quarantined = counter("cache.l2.quarantined")
        config = ServerConfig(port=0, deadline_seconds=0.4)
        with injected_faults("server.slow=1@1.0,cache.corrupt=1"):
            with serve_in_thread(chaos_toolkit(cache=True),
                                 config) as handle:
                client = client_for(handle)
                status, _, body = matrix(client)
                assert status == 504, body
                # Quotas spent, shard quarantined: service recovers to
                # the exact clean bytes without a restart.
                for _ in range(50):
                    status, _, body = matrix(client)
                    if status == 200:
                        break
                    time.sleep(0.1)
                assert status == 200, body
                assert body == clean
        assert counter("cache.l2.quarantined") == quarantined + 1
