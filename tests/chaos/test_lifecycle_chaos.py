"""Process-level lifecycle chaos: real signals, real ``kill -9``.

Two guarantees that can only be proven against *processes*, not
threads:

* **graceful drain** — a live ``sst serve`` under traffic that
  receives SIGTERM answers every admitted request with the exact bytes
  of a clean run, refuses late arrivals, reports the drain on stderr
  and exits 0;
* **crash-safe import** — ``sst import`` killed at any concept offset
  (via the ``import.crash`` fault site, which dies ``os._exit``-style
  like ``kill -9``) leaves either the previous store or no store —
  never a partial file that a later boot would trip over, and a plain
  retry succeeds without ``--overwrite`` gymnastics.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.ontologies.generator import generate_wordnet_data
from repro.soqa.sqlstore import SqliteOntologyStore
from tests.conftest import MINI_OWL

SRC = str(Path(repro.__file__).resolve().parents[1])

PAIR_PAYLOAD = json.dumps({"first": ["univ", "Professor"],
                           "second": ["univ", "Student"]}).encode()


def subprocess_env(faults: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("SST_FAULTS", None)
    if faults:
        env["SST_FAULTS"] = faults
    return env


@pytest.fixture
def owl_file(tmp_path) -> str:
    path = tmp_path / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


class ServeProcess:
    """A real ``sst serve`` child process on an ephemeral port."""

    def __init__(self, owl_file: str, faults: str | None = None,
                 extra_args: tuple = ()):
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli",
             "--ontology-file", owl_file, "serve",
             "--host", "127.0.0.1", "--port", "0", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=subprocess_env(faults))
        self.port = self._await_port()

    def _await_port(self) -> int:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.process.stderr.readline().decode("utf-8",
                                                         "replace")
            match = re.search(r"listening on http://[0-9.]+:(\d+)", line)
            if match:
                return int(match.group(1))
            if not line and self.process.poll() is not None:
                break
        self.process.kill()
        raise AssertionError("sst serve child never reported its port")

    def post(self, body: bytes = PAIR_PAYLOAD,
             timeout: float = 30.0) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=timeout)
        try:
            connection.request("POST", "/v1/similarity", body=body)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def finish(self, timeout: float = 20.0) -> tuple[int, str]:
        """Wait for exit; returns (returncode, remaining stderr)."""
        try:
            _, stderr = self.process.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            raise
        return self.process.returncode, stderr.decode("utf-8", "replace")

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.communicate(timeout=10.0)


class TestSigtermDrain:
    def test_sigterm_under_traffic_drains_and_exits_zero(self, owl_file):
        # Clean run first: the exact bytes this corpus must answer.
        clean = ServeProcess(owl_file)
        try:
            status, baseline = clean.post()
            assert status == 200
        finally:
            clean.process.send_signal(signal.SIGTERM)
            returncode, stderr = clean.finish()
            assert returncode == 0
            assert "drained (0 completed, 0 abandoned" in stderr

        # Faulted run: one admitted request sleeps 1.5s server-side,
        # SIGTERM lands mid-flight, and the drain must still answer it
        # byte-identically before exiting 0.
        server = ServeProcess(owl_file, faults="server.slow=1@1.5")
        results: list = []
        try:
            worker = threading.Thread(
                target=lambda: results.append(server.post()))
            worker.start()
            time.sleep(0.6)  # the request is admitted and sleeping
            server.process.send_signal(signal.SIGTERM)
            worker.join(20.0)
            assert not worker.is_alive()
            # Late arrivals during the drain find the listener closed.
            with pytest.raises(OSError):
                server.post(timeout=2.0)
            returncode, stderr = server.finish()
        finally:
            server.kill()
        assert returncode == 0
        assert results, "in-flight request must be answered"
        status, body = results[0]
        assert status == 200
        assert body == baseline
        assert "drained (1 completed, 0 abandoned" in stderr

    def test_second_sigterm_escalates_to_immediate_stop(self, owl_file):
        server = ServeProcess(owl_file, faults="server.slow=1@30.0",
                              extra_args=("--drain-timeout", "60",
                                          "--deadline", "60"))
        def abandoned_post():
            try:
                server.post()
            except (OSError, http.client.HTTPException):
                pass  # the escalation abandons this request

        try:
            worker = threading.Thread(target=abandoned_post)
            worker.daemon = True
            worker.start()
            time.sleep(0.6)
            server.process.send_signal(signal.SIGTERM)
            time.sleep(0.3)  # draining, held open by the 30s sleep
            assert server.process.poll() is None
            server.process.send_signal(signal.SIGTERM)
            returncode, _ = server.finish(timeout=10.0)
            # The escalation abandoned the sleeper instead of waiting
            # out the 60s drain window; the exit is still orderly.
            assert returncode == 0
        finally:
            server.kill()


def run_import(source: Path, output: Path, *args: str,
               faults: str | None = None) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "import", str(source),
         "-o", str(output), *args],
        capture_output=True, env=subprocess_env(faults), timeout=300)


@pytest.fixture(scope="module")
def wordnet_10k(tmp_path_factory) -> Path:
    source = tmp_path_factory.mktemp("corpus") / "synth10k.wn"
    source.write_text(generate_wordnet_data(10_000, seed=3),
                      encoding="utf-8")
    return source


class TestKill9Import:
    @pytest.mark.parametrize("offset", [0, 2500, 7500])
    def test_kill9_mid_import_leaves_no_store(self, tmp_path,
                                              wordnet_10k, offset):
        output = tmp_path / "big.sstdb"
        result = run_import(wordnet_10k, output,
                            faults=f"import.crash=1@{offset}")
        assert result.returncode == 137, result.stderr
        # The completion line is the commit point — it must not have
        # been printed, and the store must not exist at all (the
        # journaled temp absorbed the crash).
        assert b"store " not in result.stdout
        assert not output.exists()
        assert not output.with_name(output.name + "-wal").exists()

    def test_plain_retry_after_crash_succeeds(self, tmp_path,
                                              wordnet_10k):
        output = tmp_path / "big.sstdb"
        crashed = run_import(wordnet_10k, output,
                             faults="import.crash=1@2500")
        assert crashed.returncode == 137
        # The crashed build's temp may linger; a *plain* retry (no
        # --overwrite) must sweep it and build a loadable store.
        result = run_import(wordnet_10k, output)
        assert result.returncode == 0, result.stderr
        assert b"10000 concepts" in result.stdout
        store = SqliteOntologyStore(output)
        try:
            assert len(store.ontology("synth10k")) == 10_000
        finally:
            store.close()
        leftovers = [entry.name for entry in tmp_path.iterdir()
                     if entry.name.startswith(".big.sstdb.import-")]
        assert leftovers == []

    def test_kill9_after_build_before_promote_leaves_no_store(
            self, tmp_path, owl_file):
        output = tmp_path / "small.sstdb"
        # An offset beyond the corpus: the in-import checks never
        # fire, only the post-build / pre-promote crash point does.
        result = run_import(Path(owl_file), output,
                            faults="import.crash=1@999999999")
        assert result.returncode == 137
        assert not output.exists()

    def test_kill9_during_overwrite_preserves_the_old_store(
            self, tmp_path, owl_file):
        output = tmp_path / "corpus.sstdb"
        assert run_import(Path(owl_file), output).returncode == 0
        before = output.read_bytes()
        crashed = run_import(Path(owl_file), output, "--overwrite",
                             faults="import.crash=1@0")
        assert crashed.returncode == 137
        # The old store is byte-for-byte untouched and still loads.
        assert output.read_bytes() == before
        store = SqliteOntologyStore(output)
        try:
            assert len(store.ontology("univ")) == 5
        finally:
            store.close()
