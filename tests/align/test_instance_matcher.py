"""Unit tests for instance matching (record linkage)."""

import pytest

from repro.align.matcher import InstanceMatcher
from repro.core.facade import SOQASimPackToolkit
from repro.errors import SSTCoreError
from repro.soqa.api import SOQA

FIRST_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://a">
  <owl:Class rdf:ID="Person"/>
  <owl:DatatypeProperty rdf:ID="name">
    <rdfs:domain rdf:resource="#Person"
        xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"/>
  </owl:DatatypeProperty>
  <Person rdf:ID="p1"><name>Klaus Dittrich Zurich</name></Person>
  <Person rdf:ID="p2"><name>Abraham Bernstein Zurich</name></Person>
  <Person rdf:ID="p3"><name>Rudi Studer Karlsruhe</name></Person>
</rdf:RDF>
"""

SECOND_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://b">
  <owl:Class rdf:ID="Researcher"/>
  <owl:DatatypeProperty rdf:ID="fullName">
    <rdfs:domain rdf:resource="#Researcher"
        xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"/>
  </owl:DatatypeProperty>
  <Researcher rdf:ID="r1"><fullName>Prof Klaus Dittrich Zurich</fullName></Researcher>
  <Researcher rdf:ID="r2"><fullName>Prof Abraham Bernstein Zurich</fullName></Researcher>
  <Researcher rdf:ID="r3"><fullName>Unrelated Someone Else</fullName></Researcher>
</rdf:RDF>
"""


@pytest.fixture
def sst() -> SOQASimPackToolkit:
    soqa = SOQA()
    soqa.load_text(FIRST_OWL, "a", "OWL")
    soqa.load_text(SECOND_OWL, "b", "OWL")
    return SOQASimPackToolkit(soqa)


class TestInstanceMatcher:
    def test_links_matching_records(self, sst):
        matcher = InstanceMatcher(sst, view="text", threshold=0.2)
        linkage = matcher.match("a", "b")
        linked = {(c.first.concept_name, c.second.concept_name)
                  for c in linkage}
        assert ("p1", "r1") in linked
        assert ("p2", "r2") in linked

    def test_unrelated_record_stays_unlinked(self, sst):
        matcher = InstanceMatcher(sst, view="text", threshold=0.3)
        linkage = matcher.match("a", "b")
        assert all(c.second.concept_name != "r3" or
                   c.first.concept_name == "p3" for c in linkage)
        # p3 ("Rudi Studer Karlsruhe") shares nothing with r3.
        linked_seconds = {c.second.concept_name for c in linkage}
        assert "r3" not in linked_seconds

    def test_one_to_one(self, sst):
        matcher = InstanceMatcher(sst, view="text", threshold=0.0)
        linkage = matcher.match("a", "b")
        firsts = [c.first.concept_name for c in linkage]
        seconds = [c.second.concept_name for c in linkage]
        assert len(firsts) == len(set(firsts))
        assert len(seconds) == len(set(seconds))

    def test_confidences_sorted(self, sst):
        matcher = InstanceMatcher(sst, view="text", threshold=0.0)
        linkage = matcher.match("a", "b")
        values = [c.confidence for c in linkage]
        assert values == sorted(values, reverse=True)

    def test_feature_view_works(self, sst):
        matcher = InstanceMatcher(sst, view="features", threshold=0.0)
        assert matcher.match("a", "b")  # runs without error

    def test_invalid_threshold(self, sst):
        with pytest.raises(SSTCoreError):
            InstanceMatcher(sst, threshold=-0.1)


class TestExportCommand:
    def test_cli_export_roundtrip(self, capsys, tmp_path):
        from repro.cli import main
        from repro.soqa.serialize import ontology_from_json
        from tests.conftest import MINI_OWL

        source = tmp_path / "univ.owl"
        source.write_text(MINI_OWL, encoding="utf-8")
        target = tmp_path / "univ.soqajson"
        assert main(["--ontology-file", str(source), "export", "univ",
                     str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        restored = ontology_from_json(target.read_text(encoding="utf-8"))
        assert "Professor" in restored
