"""Unit tests for the measure evaluation study."""

import pytest

from repro.align.study import MeasureStudy, StudyResult
from repro.core.registry import Measure

REFERENCE = [
    ("Person", "PERSON"),
    ("Employee", "EMPLOYEE"),
    ("Student", "STUDENT"),
    ("Course", "COURSE"),
]


@pytest.fixture
def study(mini_sst) -> MeasureStudy:
    return MeasureStudy(mini_sst, "univ", "MINI", REFERENCE,
                        thresholds=(0.5, 0.9))


class TestEvaluateMeasure:
    def test_name_measure_is_perfect_on_case_variants(self, study):
        result = study.evaluate_measure(Measure.NAME_LEVENSHTEIN)
        assert result.quality.f_measure == 1.0
        assert result.measure_name == "Name Levenshtein"

    def test_picks_best_threshold(self, study):
        result = study.evaluate_measure(Measure.NAME_LEVENSHTEIN)
        assert result.threshold in (0.5, 0.9)

    def test_result_str(self, study):
        result = study.evaluate_measure(Measure.NAME_LEVENSHTEIN)
        assert "f-measure=1.000" in str(result)


class TestRun:
    def test_explicit_measure_list_ranked(self, study):
        results = study.run([Measure.NAME_LEVENSHTEIN, Measure.TFIDF,
                             Measure.SHORTEST_PATH])
        assert len(results) == 3
        f_values = [result.quality.f_measure for result in results]
        assert f_values == sorted(f_values, reverse=True)
        assert results[0].measure_name == "Name Levenshtein"

    def test_default_runs_all_normalized_measures(self, study, mini_sst):
        results = study.run()
        normalized_count = sum(
            1 for info in mini_sst.available_measures()
            if info["normalized"])
        assert len(results) == normalized_count
        assert all(isinstance(result, StudyResult) for result in results)

    def test_report_renders_ranking(self, study):
        results = study.run([Measure.NAME_LEVENSHTEIN, Measure.TFIDF])
        report = study.report(results)
        assert "f-measure" in report
        assert "Name Levenshtein" in report
        assert report.splitlines()[2].startswith("1")
