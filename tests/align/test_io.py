"""Unit tests for alignment serialization (JSON + Alignment-API RDF)."""

import pytest

from repro.align.io import (
    alignment_from_json,
    alignment_from_rdf,
    alignment_to_json,
    alignment_to_rdf,
)
from repro.align.matcher import Correspondence
from repro.core.results import QualifiedConcept
from repro.errors import SSTError

ALIGNMENT = [
    Correspondence(QualifiedConcept("univ-bench_owl", "Professor"),
                   QualifiedConcept("base1_0_daml", "Professor"), 0.95),
    Correspondence(QualifiedConcept("univ-bench_owl", "Student"),
                   QualifiedConcept("base1_0_daml", "Student"), 0.88),
]


class TestJSON:
    def test_roundtrip(self):
        restored = alignment_from_json(alignment_to_json(ALIGNMENT))
        assert restored == ALIGNMENT

    def test_empty_alignment(self):
        assert alignment_from_json(alignment_to_json([])) == []

    def test_malformed_json_rejected(self):
        with pytest.raises(SSTError, match="malformed"):
            alignment_from_json("{nope")

    def test_wrong_format_rejected(self):
        with pytest.raises(SSTError, match="sst-alignment"):
            alignment_from_json('{"format": "other"}')


class TestRDF:
    def test_roundtrip(self):
        text = alignment_to_rdf(ALIGNMENT, "univ-bench_owl",
                                "base1_0_daml")
        restored = alignment_from_rdf(text)
        assert restored == ALIGNMENT

    def test_document_structure(self):
        text = alignment_to_rdf(ALIGNMENT, "o1", "o2")
        assert "<Alignment>" in text
        assert "<onto1>o1</onto1>" in text
        assert text.count("<Cell>") == 2
        assert "<relation>=</relation>" in text

    def test_confidence_preserved(self):
        restored = alignment_from_rdf(alignment_to_rdf(ALIGNMENT))
        assert restored[0].confidence == pytest.approx(0.95)

    def test_malformed_xml_rejected(self):
        with pytest.raises(SSTError, match="malformed"):
            alignment_from_rdf("<rdf:RDF><unclosed>")

    def test_foreign_entity_uri_rejected(self):
        text = alignment_to_rdf(ALIGNMENT).replace(
            "urn:sst:univ-bench_owl#Professor", "http://foreign/e")
        with pytest.raises(SSTError, match="unrecognized"):
            alignment_from_rdf(text)

    def test_end_to_end_with_matcher(self, mini_sst, tmp_path):
        from repro.align.matcher import OntologyMatcher
        from repro.core.registry import Measure

        matcher = OntologyMatcher(mini_sst,
                                  measure=Measure.NAME_LEVENSHTEIN,
                                  threshold=0.9)
        alignment = matcher.match("univ", "MINI")
        path = tmp_path / "alignment.rdf"
        path.write_text(alignment_to_rdf(alignment, "univ", "MINI"),
                        encoding="utf-8")
        restored = alignment_from_rdf(path.read_text(encoding="utf-8"))
        assert restored == alignment
