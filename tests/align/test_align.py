"""Unit tests for the alignment matcher and its evaluation."""

import pytest

from repro.align.evaluation import AlignmentQuality, evaluate_alignment
from repro.align.matcher import Correspondence, OntologyMatcher
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError


class TestMatcher:
    def test_obvious_matches_found(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN,
                                  threshold=0.9)
        alignment = matcher.match("univ", "MINI")
        pairs = {correspondence.as_pair()
                 for correspondence in alignment}
        assert ("Person", "PERSON") in pairs
        assert ("Student", "STUDENT") in pairs
        assert ("Course", "COURSE") in pairs

    def test_one_to_one_constraint(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN,
                                  threshold=0.0)
        alignment = matcher.match("univ", "MINI")
        firsts = [c.first.concept_name for c in alignment]
        seconds = [c.second.concept_name for c in alignment]
        assert len(firsts) == len(set(firsts))
        assert len(seconds) == len(set(seconds))

    def test_threshold_filters(self, mini_sst):
        strict = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN,
                                 threshold=0.99)
        loose = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN,
                                threshold=0.1)
        assert len(strict.match("univ", "MINI")) <= len(
            loose.match("univ", "MINI"))

    def test_invalid_threshold_rejected(self, mini_sst):
        with pytest.raises(SSTCoreError):
            OntologyMatcher(mini_sst, threshold=1.5)

    def test_raw_measure_rejected(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.RESNIK)
        with pytest.raises(SSTCoreError, match="normalized"):
            matcher.score_pairs("univ", "MINI")

    def test_score_pairs_sorted_descending(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN)
        pairs = matcher.score_pairs("univ", "MINI")
        confidences = [pair.confidence for pair in pairs]
        assert confidences == sorted(confidences, reverse=True)
        assert len(pairs) == 5 * 4  # univ has 5 concepts, MINI has 4

    def test_top_candidates(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN)
        candidates = matcher.top_candidates("Student", "univ", "MINI", k=2)
        assert candidates[0].second.concept_name == "STUDENT"
        assert len(candidates) == 2

    def test_correspondence_str(self):
        correspondence = Correspondence(
            QualifiedConcept("a", "X"), QualifiedConcept("b", "Y"), 0.75)
        assert str(correspondence) == "a:X = b:Y (0.750)"


class TestEvaluation:
    def test_perfect_alignment(self, mini_sst):
        matcher = OntologyMatcher(mini_sst, measure=Measure.NAME_LEVENSHTEIN,
                                  threshold=0.9)
        alignment = matcher.match("univ", "MINI")
        reference = [("Person", "PERSON"), ("Student", "STUDENT"),
                     ("Course", "COURSE"), ("Employee", "EMPLOYEE")]
        quality = evaluate_alignment(alignment, reference)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f_measure == 1.0

    def test_partial_alignment(self):
        proposed = [Correspondence(QualifiedConcept("a", "X"),
                                   QualifiedConcept("b", "X"), 1.0),
                    Correspondence(QualifiedConcept("a", "Y"),
                                   QualifiedConcept("b", "Z"), 0.8)]
        reference = [("X", "X"), ("Y", "Y"), ("W", "W")]
        quality = evaluate_alignment(proposed, reference)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 2
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == pytest.approx(1 / 3)

    def test_empty_proposal(self):
        quality = evaluate_alignment([], [("X", "X")])
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f_measure == 0.0

    def test_empty_reference(self):
        proposed = [Correspondence(QualifiedConcept("a", "X"),
                                   QualifiedConcept("b", "X"), 1.0)]
        quality = evaluate_alignment(proposed, [])
        assert quality.recall == 0.0

    def test_case_insensitive_matching(self):
        proposed = [Correspondence(QualifiedConcept("a", "Person"),
                                   QualifiedConcept("b", "PERSON"), 1.0)]
        quality = evaluate_alignment(proposed, [("person", "person")])
        assert quality.true_positives == 1

    def test_str_format(self):
        quality = AlignmentQuality(true_positives=1, false_positives=1,
                                   false_negatives=0)
        assert "precision=0.500" in str(quality)
