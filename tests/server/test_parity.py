"""Service parity: every server response is bit-identical to the CLI.

The acceptance bar of ``sst serve``: the resident service must be a
pure transport around the exact code paths the one-shot CLI runs, so a
``/v1/similarity`` matrix response compares **byte for byte** against
``sst matrix --format json`` stdout, across all nine kernel-batchable
measures and both batch engines, and ``/v1/ksim`` reproduces the CLI
table digit for digit.  Verified over a plain ontology file, a sqlite
``.sstdb`` store, and the paper corpus.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.facade import SOQASimPackToolkit
from repro.core.kernel import ENGINES
from repro.core.registry import Measure
from repro.core.server import serve_in_thread
from repro.soqa.api import SOQA
from repro.viz.ascii import render_table
from tests.conftest import MINI_OWL
from tests.core.test_kernel_properties import BATCHABLE_MEASURES
from tests.server.conftest import client_for

#: The concept set both sides score (prefixed per-ontology at runtime).
CONCEPT_NAMES = ["Person", "Employee", "Professor", "Student", "Course"]


@pytest.fixture(scope="module")
def owl_path(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("parity-ontology") / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def file_server(owl_path):
    soqa = SOQA()
    soqa.load_file(owl_path)
    with serve_in_thread(SOQASimPackToolkit(soqa)) as handle:
        yield handle


@pytest.fixture(scope="module")
def store_path(owl_path, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("parity-store") / "univ.sstdb"
    assert main(["import", owl_path, "-o", str(path)]) == 0
    return str(path)


@pytest.fixture(scope="module")
def store_server(store_path):
    soqa = SOQA()
    soqa.load_file(store_path)
    with serve_in_thread(SOQASimPackToolkit(soqa)) as handle:
        yield handle


@pytest.fixture(scope="module")
def corpus_server(corpus_sst):
    with serve_in_thread(corpus_sst) as handle:
        yield handle


def cli_matrix_stdout(capsys, source_arguments, specs, measure,
                      engine=None) -> str:
    arguments = source_arguments + ["matrix", *specs,
                                    "-m", str(int(measure)),
                                    "--format", "json"]
    if engine is not None:
        arguments += ["--engine", engine]
    assert main(arguments) == 0
    output = capsys.readouterr().out
    assert output.strip()
    return output


def server_matrix_body(handle, references, measure, engine=None) -> bytes:
    payload = {"concepts": [list(reference) for reference in references],
               "measure": int(measure)}
    if engine is not None:
        payload["engine"] = engine
    status, _, body = client_for(handle).post_json("/v1/similarity",
                                                   payload)
    assert status == 200, body
    return body


def ksim_table_from(response: dict) -> str:
    """Rebuild the CLI's ksim table from the service JSON."""
    rows = [[str(entry["rank"]), entry["concept"], entry["ontology"],
             f"{entry['similarity']:.4f}"]
            for entry in response["entries"]]
    return render_table(["rank", "concept", "ontology", "similarity"],
                        rows) + "\n"


class TestMatrixParityEveryMeasureAndEngine:
    """18 byte-for-byte comparisons: 9 kernel measures x 2 engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("measure", BATCHABLE_MEASURES,
                             ids=lambda measure: measure.name)
    def test_file_matrix_bit_identical(self, file_server, owl_path,
                                       capsys, measure, engine):
        ontology = file_server.service.toolkit.ontology_names()[0]
        specs = [f"{ontology}:{name}" for name in CONCEPT_NAMES]
        expected = cli_matrix_stdout(capsys, ["--ontology-file", owl_path],
                                     specs, measure, engine)
        body = server_matrix_body(
            file_server, [(ontology, name) for name in CONCEPT_NAMES],
            measure, engine)
        assert body.decode("utf-8") == expected


class TestPairParity:
    def test_pair_mode_matches_the_cli_matrix_cell(self, file_server,
                                                   owl_path, capsys):
        ontology = file_server.service.toolkit.ontology_names()[0]
        specs = [f"{ontology}:{name}" for name in CONCEPT_NAMES]
        expected = json.loads(cli_matrix_stdout(
            capsys, ["--ontology-file", owl_path], specs,
            Measure.SHORTEST_PATH))
        response = client_for(file_server).post_ok("/v1/similarity", {
            "first": [ontology, "Professor"],
            "second": [ontology, "Student"],
            "measure": int(Measure.SHORTEST_PATH)})
        row = CONCEPT_NAMES.index("Professor")
        column = CONCEPT_NAMES.index("Student")
        assert response["similarity"] == expected["matrix"][row][column]
        assert response["measure"] == expected["measure"]

    def test_batch_mode_matches_the_cli_matrix_row(self, file_server,
                                                   owl_path, capsys):
        ontology = file_server.service.toolkit.ontology_names()[0]
        specs = [f"{ontology}:{name}" for name in CONCEPT_NAMES]
        expected = json.loads(cli_matrix_stdout(
            capsys, ["--ontology-file", owl_path], specs, Measure.LIN))
        pairs = [[ontology, "Person", ontology, name]
                 for name in CONCEPT_NAMES]
        response = client_for(file_server).post_ok("/v1/similarity", {
            "pairs": pairs, "measure": int(Measure.LIN)})
        assert response["values"] == expected["matrix"][0]


class TestKsimParity:
    def test_ksim_reproduces_the_cli_table(self, file_server, owl_path,
                                           capsys):
        ontology = file_server.service.toolkit.ontology_names()[0]
        assert main(["--ontology-file", owl_path, "ksim", ontology,
                     "Professor", "-k", "4"]) == 0
        expected = capsys.readouterr().out
        response = client_for(file_server).post_ok("/v1/ksim", {
            "ontology": ontology, "concept": "Professor", "k": 4})
        assert ksim_table_from(response) == expected

    def test_kdissim_reproduces_the_cli_table(self, file_server,
                                              owl_path, capsys):
        ontology = file_server.service.toolkit.ontology_names()[0]
        assert main(["--ontology-file", owl_path, "kdissim", ontology,
                     "Person", "-k", "3"]) == 0
        expected = capsys.readouterr().out
        response = client_for(file_server).post_ok("/v1/ksim", {
            "ontology": ontology, "concept": "Person", "k": 3,
            "dissimilar": True})
        assert ksim_table_from(response) == expected

    def test_subtree_restriction_matches_the_cli(self, file_server,
                                                 owl_path, capsys):
        ontology = file_server.service.toolkit.ontology_names()[0]
        assert main(["--ontology-file", owl_path, "ksim", ontology,
                     "Professor", "-k", "3",
                     "--subtree", f"{ontology}:Person"]) == 0
        expected = capsys.readouterr().out
        response = client_for(file_server).post_ok("/v1/ksim", {
            "ontology": ontology, "concept": "Professor", "k": 3,
            "subtree": f"{ontology}:Person"})
        assert ksim_table_from(response) == expected


class TestStoreBackedParity:
    """The ``.sstdb`` sqlite store serves the exact same bytes."""

    def test_store_matrix_bit_identical(self, store_server, store_path,
                                        capsys):
        ontology = store_server.service.toolkit.ontology_names()[0]
        specs = [f"{ontology}:{name}" for name in CONCEPT_NAMES]
        expected = cli_matrix_stdout(
            capsys, ["--ontology-file", store_path], specs, Measure.EDGE)
        body = server_matrix_body(
            store_server, [(ontology, name) for name in CONCEPT_NAMES],
            Measure.EDGE)
        assert body.decode("utf-8") == expected

    def test_store_ksim_reproduces_the_cli_table(self, store_server,
                                                 store_path, capsys):
        ontology = store_server.service.toolkit.ontology_names()[0]
        assert main(["--ontology-file", store_path, "ksim", ontology,
                     "Employee", "-k", "4"]) == 0
        expected = capsys.readouterr().out
        response = client_for(store_server).post_ok("/v1/ksim", {
            "ontology": ontology, "concept": "Employee", "k": 4})
        assert ksim_table_from(response) == expected


class TestCorpusParity:
    """Spot checks over the paper's five-ontology corpus."""

    def test_corpus_matrix_bit_identical(self, corpus_server, corpus_soqa,
                                         capsys):
        names = [concept.name
                 for concept in corpus_soqa.ontology("COURSES")][:6]
        specs = [f"COURSES:{name}" for name in names]
        expected = cli_matrix_stdout(capsys, [], specs,
                                     Measure.CONCEPTUAL_SIMILARITY)
        body = server_matrix_body(corpus_server,
                                  [("COURSES", name) for name in names],
                                  Measure.CONCEPTUAL_SIMILARITY)
        assert body.decode("utf-8") == expected

    def test_corpus_ksim_reproduces_the_cli_table(self, corpus_server,
                                                  capsys):
        assert main(["ksim", "COURSES", "PROFESSOR", "-k", "5"]) == 0
        expected = capsys.readouterr().out
        response = client_for(corpus_server).post_ok("/v1/ksim", {
            "ontology": "COURSES", "concept": "PROFESSOR", "k": 5})
        assert ksim_table_from(response) == expected
