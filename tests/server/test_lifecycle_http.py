"""Lifecycle, keep-alive, and overload behavior of ``sst serve``.

Four robustness properties pinned at the HTTP level:

* **keep-alive** — one connection serves many requests with the exact
  bytes of fresh-connection requests, bounded by
  ``max_requests_per_connection`` and the connection cap;
* **slow-client defense** — a stalled request gets a typed 408 and its
  connection closed, a quietly idle keep-alive connection is closed
  cleanly, and fast clients are never affected;
* **readiness vs liveness** — ``/readyz`` is 200 only in READY;
  draining and degraded states flip it to 503 while ``/healthz``
  stays alive;
* **admission control** — overload sheds with typed 429 +
  ``Retry-After`` *before* queueing, never a 500, and the service
  recovers to READY when the backlog clears.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.core.lifecycle import DEGRADED, DRAINING, READY
from repro.core.registry import Measure
from repro.core.resilience import injected_faults
from repro.core.server import ServerConfig, serve_in_thread
from tests.server.conftest import (client_for, counter, dag_toolkit,
                                   error_code, raw_request)

DAG = {
    "thing": [],
    "agent": ["thing"], "artifact": ["thing"],
    "person": ["agent"], "robot": ["agent", "artifact"],
    "tool": ["artifact"], "hammer": ["tool"],
}


def toolkit():
    return dag_toolkit({"life": DAG})


PAIR = {"first": ["life", "person"], "second": ["life", "robot"],
        "measure": int(Measure.SHORTEST_PATH)}


def pair_request(keep_alive: bool = True) -> bytes:
    body = json.dumps(PAIR).encode("utf-8")
    connection = "keep-alive" if keep_alive else "close"
    return (b"POST /v1/similarity HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Connection: " + connection.encode() + b"\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body)


def read_response(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read exactly one framed HTTP response off a live socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError(f"peer closed mid-headers: {data!r}")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = rest
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed mid-body")
        body += chunk
    return status, headers, body[:length]


class TestKeepAlive:
    def test_one_connection_serves_many_identical_requests(self):
        config = ServerConfig(port=0)
        with serve_in_thread(toolkit(), config) as handle:
            # Baseline: the same request over a fresh connection.
            status, _, baseline = client_for(handle).post_json(
                "/v1/similarity", PAIR)
            assert status == 200
            reuse = counter("server.keepalive.reuse")
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                for _ in range(5):
                    sock.sendall(pair_request())
                    status, headers, body = read_response(sock)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    assert body == baseline
            assert counter("server.keepalive.reuse") == reuse + 4

    def test_client_connection_close_is_honored(self):
        with serve_in_thread(toolkit(), ServerConfig(port=0)) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(pair_request(keep_alive=False))
                status, headers, _ = read_response(sock)
                assert status == 200
                assert headers["connection"] == "close"
                assert sock.recv(65536) == b""  # server closed

    def test_max_requests_per_connection_closes_at_the_cap(self):
        config = ServerConfig(port=0, max_requests_per_connection=2)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(pair_request())
                _, headers, _ = read_response(sock)
                assert headers["connection"] == "keep-alive"
                sock.sendall(pair_request())
                _, headers, _ = read_response(sock)
                assert headers["connection"] == "close"
                assert sock.recv(65536) == b""

    def test_keep_alive_disabled_closes_every_connection(self):
        config = ServerConfig(port=0, keep_alive=False)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(pair_request())  # client asks keep-alive
                _, headers, _ = read_response(sock)
                assert headers["connection"] == "close"
                assert sock.recv(65536) == b""

    def test_error_responses_keep_framed_connections_alive(self):
        """A 422 consumed its body: the connection stays usable."""
        with serve_in_thread(toolkit(), ServerConfig(port=0)) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                bad = json.dumps({"measure": "no-such"}).encode()
                sock.sendall(
                    b"POST /v1/similarity HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: " + str(len(bad)).encode()
                    + b"\r\n\r\n" + bad)
                status, headers, body = read_response(sock)
                assert status == 422
                assert error_code(body) == "unknown_measure"
                assert headers["connection"] == "keep-alive"
                sock.sendall(pair_request())
                status, _, _ = read_response(sock)
                assert status == 200

    def test_connection_cap_sheds_excess_connections(self):
        config = ServerConfig(port=0, max_connections=1)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as first:
                first.sendall(pair_request())
                status, _, _ = read_response(first)
                assert status == 200
                # The cap counts live connections: a second one is
                # refused with a typed 503 before any parsing.
                raw = raw_request(handle.host, handle.port, b"")
                assert b"503" in raw.split(b"\r\n", 1)[0]
                assert error_code(raw.partition(b"\r\n\r\n")[2]) \
                    == "too_many_connections"
                # The first connection is untouched.
                first.sendall(pair_request())
                status, _, _ = read_response(first)
                assert status == 200
            assert counter("server.rejected.connections") >= 1


class TestSlowClientDefense:
    def test_slowloris_request_line_gets_typed_408(self):
        config = ServerConfig(port=0, header_timeout=0.3)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"POST /v1/simi")  # ...and stall
                status, headers, body = read_response(sock)
                assert status == 408
                assert error_code(body) == "timeout"
                assert headers["connection"] == "close"
                assert sock.recv(65536) == b""

    def test_slow_header_trickle_gets_typed_408(self):
        config = ServerConfig(port=0, header_timeout=0.3)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                             b"X-Half")  # header never completes
                status, _, body = read_response(sock)
                assert status == 408
                assert error_code(body) == "timeout"

    def test_idle_keepalive_connection_closes_cleanly(self):
        """Idleness is not an offense: no 408 bytes, just EOF."""
        config = ServerConfig(port=0, idle_timeout=0.3)
        with serve_in_thread(toolkit(), config) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(pair_request())
                status, _, _ = read_response(sock)
                assert status == 200
                # Sit idle past the deadline: the server closes the
                # connection without writing anything.
                assert sock.recv(65536) == b""

    def test_fast_clients_unaffected_by_a_slowloris_peer(self):
        config = ServerConfig(port=0, header_timeout=1.0)
        with serve_in_thread(toolkit(), config) as handle:
            client = client_for(handle)
            status, _, baseline = client.post_json("/v1/similarity", PAIR)
            assert status == 200
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as loris:
                loris.sendall(b"POST /v1/simi")  # stalls for 1s
                for _ in range(3):
                    status, _, body = client.post_json("/v1/similarity",
                                                       PAIR)
                    assert status == 200
                    assert body == baseline


class TestReadiness:
    def test_readyz_is_200_with_state_when_ready(self):
        with serve_in_thread(toolkit(), ServerConfig(port=0)) as handle:
            client = client_for(handle)
            payload = client.get_json("/readyz")
            assert payload["status"] == READY
            assert payload["ready"] is True
            assert payload["queue_depth"] == 0
            health = client.get_json("/healthz")
            assert health["status"] == "ok"
            assert health["state"] == READY

    def test_drain_refuses_new_work_with_typed_503(self):
        config = ServerConfig(port=0, deadline_seconds=10.0)
        with serve_in_thread(toolkit(), config) as handle:
            client = client_for(handle)
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10.0) as sock:
                sock.sendall(pair_request())
                status, _, _ = read_response(sock)
                assert status == 200
                # Hold the drain window open with one slow in-flight
                # request, then ask for the drain.
                with injected_faults("server.slow=1@1.0"):
                    holder = threading.Thread(
                        target=lambda: client.post_json("/v1/similarity",
                                                        PAIR))
                    holder.start()
                    for _ in range(100):
                        if handle.server.admission.inflight() > 0:
                            break
                        time.sleep(0.01)
                    handle.server.request_drain()
                    for _ in range(100):
                        if handle.server.lifecycle.state == DRAINING:
                            break
                        time.sleep(0.01)
                    assert handle.server.lifecycle.state == DRAINING
                    # The established connection's next POST is
                    # refused with a typed 503 and the connection
                    # closes.
                    sock.sendall(pair_request())
                    status, headers, body = read_response(sock)
                    assert status == 503
                    assert error_code(body) == "draining"
                    assert int(headers["retry-after"]) >= 1
                    assert headers["connection"] == "close"
                    holder.join(10.0)
            report = handle.stop()
            assert report["completed"] == 1
            assert report["abandoned"] == 0

    def test_drain_report_counts_clean_completion(self):
        config = ServerConfig(port=0, deadline_seconds=10.0)
        with serve_in_thread(toolkit(), config) as handle:
            client = client_for(handle)
            results = []
            with injected_faults("server.slow=1@0.6"):
                worker = threading.Thread(
                    target=lambda: results.append(
                        client.post_json("/v1/similarity", PAIR)))
                worker.start()
                # Let the slow request get admitted, then drain.
                for _ in range(100):
                    if handle.server.admission.inflight() > 0:
                        break
                    time.sleep(0.01)
                report = handle.stop()
                worker.join(10.0)
            assert report["inflight_at_drain"] == 1
            assert report["completed"] == 1
            assert report["abandoned"] == 0
            # The admitted request was answered, not dropped.
            assert results and results[0][0] == 200

    def test_drain_deadline_abandons_overlong_work(self):
        config = ServerConfig(port=0, deadline_seconds=30.0,
                              drain_seconds=0.2)
        with serve_in_thread(toolkit(), config) as handle:
            client = ServiceClientSafe(handle)
            with injected_faults("server.slow=1@5.0"):
                worker = threading.Thread(target=client.fire)
                worker.start()
                for _ in range(100):
                    if handle.server.admission.inflight() > 0:
                        break
                    time.sleep(0.01)
                started = time.monotonic()
                report = handle.stop()
                elapsed = time.monotonic() - started
            assert report["abandoned"] == 1
            assert report["completed"] == 0
            # The drain gave up at its deadline, not after the 5s
            # sleep.
            assert elapsed < 4.0
            worker.join(10.0)


class ServiceClientSafe:
    """Fires one request and swallows the connection teardown."""

    def __init__(self, handle):
        self.client = client_for(handle)
        self.outcome = None

    def fire(self):
        try:
            self.outcome = self.client.post_json("/v1/similarity", PAIR)
        except OSError as error:
            self.outcome = error


class TestOverload:
    def test_saturation_sheds_typed_429_and_recovers(self):
        config = ServerConfig(port=0, workers=1, queue_limit=1,
                              max_queue_wait=0.0, deadline_seconds=10.0)
        with serve_in_thread(toolkit(), config) as handle:
            client = client_for(handle)
            status, _, baseline = client.post_json("/v1/similarity", PAIR)
            assert status == 200
            shed = counter("server.shed")
            results = []
            lock = threading.Lock()

            def fire():
                outcome = client.post_json("/v1/similarity", PAIR)
                with lock:
                    results.append(outcome)

            # One worker, one queue slot, every computation sleeps:
            # at most 2 of 6 requests fit, the rest must shed.
            with injected_faults("server.slow=6@0.5"):
                threads = [threading.Thread(target=fire)
                           for _ in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(15.0)
            statuses = sorted(status for status, _, _ in results)
            assert len(statuses) == 6
            assert 500 not in statuses and 504 not in statuses
            accepted = [entry for entry in results if entry[0] == 200]
            rejected = [entry for entry in results if entry[0] == 429]
            assert len(accepted) + len(rejected) == 6
            assert rejected, "overload must shed"
            assert len(accepted) >= 2, "admitted work must complete"
            for _, headers, body in rejected:
                assert error_code(body) == "overloaded"
                assert int(headers["retry-after"]) >= 1
            assert counter("server.shed") >= shed + len(rejected)
            # Shedding degraded the service; once the backlog clears
            # it must restore and advertise readiness again.
            for _ in range(100):
                if handle.server.lifecycle.state == READY:
                    break
                time.sleep(0.05)
            payload = client.get_json("/readyz")
            assert payload["ready"] is True
            # And serve the exact same bytes as before the storm.
            status, _, body = client.post_json("/v1/similarity", PAIR)
            assert status == 200
            assert body == baseline

    def test_readyz_flips_to_degraded_during_shedding(self):
        config = ServerConfig(port=0, workers=1, queue_limit=1,
                              max_queue_wait=0.0, deadline_seconds=10.0)
        with serve_in_thread(toolkit(), config) as handle:
            client = client_for(handle)
            holders = []
            with injected_faults("server.slow=2@0.8"):
                for _ in range(2):
                    thread = threading.Thread(
                        target=lambda: client.post_json("/v1/similarity",
                                                        PAIR))
                    thread.start()
                    holders.append(thread)
                for _ in range(100):
                    if handle.server.admission.inflight() >= 2:
                        break
                    time.sleep(0.01)
                # Pool and queue are full: the next request sheds and
                # flips the lifecycle DEGRADED.
                status, _, body = client.post_json("/v1/similarity", PAIR)
                assert status == 429, body
                assert handle.server.lifecycle.state == DEGRADED
                ready_status, _, ready_body = client.get("/readyz")
                assert ready_status == 503
                payload = json.loads(ready_body)
                assert payload["ready"] is False
                assert payload["status"] == DEGRADED
                # Liveness is a different question: still 200.
                assert client.get_json("/healthz")["status"] == "ok"
                for thread in holders:
                    thread.join(15.0)
