"""Shared plumbing for the ``sst serve`` battery.

``ServiceClient`` speaks the service's own dialect — one request per
connection, JSON in, JSON out — through :mod:`http.client`, so tests
exercise a real TCP round trip rather than calling the service layer
directly.  ``raw_request`` bypasses even that for the malformed-bytes
robustness tests.
"""

from __future__ import annotations

import http.client
import json
import socket

from repro.core import telemetry
from repro.core.facade import SOQASimPackToolkit
from repro.soqa.api import SOQA
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata


def dag_toolkit(ontologies: dict[str, dict[str, list[str]]],
                cache: bool = False) -> SOQASimPackToolkit:
    """An SST facade over ``{ontology: {concept: parents}}`` DAGs."""
    soqa = SOQA()
    for ontology_name, parents in ontologies.items():
        concepts = [Concept(name=name, documentation=f"doc {name}",
                            superconcept_names=list(node_parents))
                    for name, node_parents in parents.items()]
        soqa.add_ontology(Ontology(
            OntologyMetadata(name=ontology_name, language="OWL"),
            concepts))
    return SOQASimPackToolkit(soqa, cache=cache)


def counter(name: str) -> int:
    return telemetry.get_registry().value(name)


class ServiceClient:
    """A minimal HTTP client bound to one running server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, method: str, path: str, body: bytes | None = None,
                headers: dict[str, str] | None = None,
                ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns ``(status, lowercased headers, body)``."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request(method, path, body=body,
                               headers=dict(headers or {}))
            response = connection.getresponse()
            payload = response.read()
            header_map = {name.lower(): value
                          for name, value in response.getheaders()}
            return response.status, header_map, payload
        finally:
            connection.close()

    def get(self, path: str, headers: dict[str, str] | None = None,
            ) -> tuple[int, dict[str, str], bytes]:
        return self.request("GET", path, headers=headers)

    def post_json(self, path: str, payload,
                  headers: dict[str, str] | None = None,
                  ) -> tuple[int, dict[str, str], bytes]:
        body = json.dumps(payload).encode("utf-8")
        merged = {"Content-Type": "application/json"}
        merged.update(headers or {})
        return self.request("POST", path, body=body, headers=merged)

    def get_json(self, path: str):
        status, _, body = self.get(path)
        assert status == 200, body
        return json.loads(body)

    def post_ok(self, path: str, payload):
        status, _, body = self.post_json(path, payload)
        assert status == 200, body
        return json.loads(body)


def client_for(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port)


def raw_request(host: str, port: int, data: bytes,
                timeout: float = 10.0) -> bytes:
    """Send raw bytes, half-close, and drain whatever comes back."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        if data:
            sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def error_code(body: bytes) -> str:
    """The typed ``error.code`` of a refusal response."""
    payload = json.loads(body)
    assert set(payload) == {"error"}, payload
    assert {"code", "message", "request_id"} <= set(payload["error"])
    return payload["error"]["code"]
