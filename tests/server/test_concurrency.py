"""Concurrency: coalescing, shared-cache integrity, deadline-bounded
waits.

The service promises that duplicate in-flight pair queries are computed
**once** (the leader runs one engine batch; followers wait on its slot)
and that parallel clients can never corrupt each other's responses.
The deterministic tests drive a gated runner — the leader parks inside
the measure until the test releases it, giving the follower all the
time in the world to coalesce — and the hammer test checks a storm of
overlapping requests against single-threaded ground truth, float for
float.
"""

from __future__ import annotations

import threading
import time
import zlib

import pytest

from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.core.runners import MeasureRunner
from repro.core.server import ServerConfig, serve_in_thread
from repro.ontologies.generator import generate_random_dag
from tests.server.conftest import client_for, counter, dag_toolkit

#: A small fixed DAG for the gated-runner tests.
GATED_DAG = {"root": [], "a": ["root"], "b": ["root"], "c": ["a"],
             "d": ["a", "b"], "e": ["b"], "f": ["c", "d"]}


class GateController:
    """Hand-operated gate the test threads synchronize on."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls: list[tuple] = []
        self.lock = threading.Lock()


def gated_factory(controller: GateController):
    def factory(wrapper):
        class GatedRunner(MeasureRunner):
            name = "gated"
            description = "test-only runner that parks until released"

            def run(self, first: QualifiedConcept,
                    second: QualifiedConcept) -> float:
                with controller.lock:
                    controller.calls.append((first, second))
                controller.started.set()
                assert controller.release.wait(30), "gate never released"
                key = "|".join(sorted([
                    f"{first.ontology_name}:{first.concept_name}",
                    f"{second.ontology_name}:{second.concept_name}"]))
                return (zlib.crc32(key.encode("utf-8")) % 1000) / 1000.0

        return GatedRunner(wrapper)

    return factory


def wait_for_counter(name: str, target: int, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    while counter(name) < target:
        if time.monotonic() > deadline:
            pytest.fail(f"{name} never reached {target} "
                        f"(at {counter(name)})")
        time.sleep(0.01)


@pytest.fixture
def gated():
    controller = GateController()
    toolkit = dag_toolkit({"ont": GATED_DAG})
    measure_id = toolkit.register_measure_runner(
        "gated", gated_factory(controller))
    with serve_in_thread(toolkit) as handle:
        yield handle, controller, measure_id
        controller.release.set()  # never leave a worker parked


def post_in_thread(handle, payload, results: dict, key: str):
    def _post():
        results[key] = client_for(handle).post_json("/v1/similarity",
                                                    payload)

    thread = threading.Thread(target=_post, daemon=True)
    thread.start()
    return thread


class TestCoalescing:
    def test_duplicate_inflight_pair_computes_once(self, gated):
        handle, controller, measure_id = gated
        payload = {"first": ["ont", "c"], "second": ["ont", "e"],
                   "measure": measure_id}
        coalesced = counter("server.coalesced")
        batches = counter("server.batches")
        results: dict = {}
        leader = post_in_thread(handle, payload, results, "leader")
        assert controller.started.wait(10), "leader never reached the gate"
        follower = post_in_thread(handle, payload, results, "follower")
        wait_for_counter("server.coalesced", coalesced + 1)
        controller.release.set()
        leader.join(20)
        follower.join(20)
        assert not leader.is_alive() and not follower.is_alive()
        leader_status, _, leader_body = results["leader"]
        follower_status, _, follower_body = results["follower"]
        assert leader_status == follower_status == 200
        # Identical bytes from one single computation.
        assert leader_body == follower_body
        assert len(controller.calls) == 1
        assert counter("server.batches") == batches + 1
        assert counter("server.coalesced") == coalesced + 1

    def test_partial_overlap_computes_only_the_fresh_pair(self, gated):
        handle, controller, measure_id = gated
        coalesced = counter("server.coalesced")
        batch_pairs = counter("server.batch_pairs")
        results: dict = {}
        leader = post_in_thread(handle, {
            "pairs": [["ont", "c", "ont", "e"], ["ont", "a", "ont", "b"]],
            "measure": measure_id}, results, "leader")
        assert controller.started.wait(10)
        follower = post_in_thread(handle, {
            "pairs": [["ont", "c", "ont", "e"], ["ont", "d", "ont", "f"]],
            "measure": measure_id}, results, "follower")
        wait_for_counter("server.coalesced", coalesced + 1)
        controller.release.set()
        leader.join(20)
        follower.join(20)
        assert results["leader"][0] == results["follower"][0] == 200
        import json
        leader_values = json.loads(results["leader"][2])["values"]
        follower_values = json.loads(results["follower"][2])["values"]
        # The shared (c, e) pair was computed once, by the leader.
        assert follower_values[0] == leader_values[0]
        # 2 leader pairs + 1 fresh follower pair = 3 computations total.
        assert len(controller.calls) == 3
        assert counter("server.batch_pairs") == batch_pairs + 3
        assert counter("server.coalesced") == coalesced + 1

    def test_unordered_pair_endpoints_share_one_flight(self, gated):
        handle, controller, measure_id = gated
        coalesced = counter("server.coalesced")
        results: dict = {}
        leader = post_in_thread(handle, {
            "first": ["ont", "c"], "second": ["ont", "e"],
            "measure": measure_id}, results, "leader")
        assert controller.started.wait(10)
        # The mirror-image pair must coalesce onto the same slot.
        follower = post_in_thread(handle, {
            "first": ["ont", "e"], "second": ["ont", "c"],
            "measure": measure_id}, results, "follower")
        wait_for_counter("server.coalesced", coalesced + 1)
        controller.release.set()
        leader.join(20)
        follower.join(20)
        assert results["leader"][0] == results["follower"][0] == 200
        assert results["leader"][2] == results["follower"][2]
        assert len(controller.calls) == 1


class TestDeadlineBoundedCoalescing:
    def test_follower_wait_is_cut_off_by_the_deadline(self):
        controller = GateController()
        toolkit = dag_toolkit({"ont": GATED_DAG})
        measure_id = toolkit.register_measure_runner(
            "gated", gated_factory(controller))
        config = ServerConfig(port=0, deadline_seconds=0.5)
        with serve_in_thread(toolkit, config) as handle:
            payload = {"first": ["ont", "a"], "second": ["ont", "b"],
                       "measure": measure_id}
            deadline_responses = counter("server.responses.deadline")
            results: dict = {}
            leader = post_in_thread(handle, payload, results, "leader")
            assert controller.started.wait(10)
            follower = post_in_thread(handle, payload, results,
                                      "follower")
            leader.join(20)
            follower.join(20)
            # Neither request can outwait its 0.5s deadline while the
            # computation is parked: both come back as typed 504s.
            for key in ("leader", "follower"):
                status, _, body = results[key]
                assert status == 504, body
                import json
                assert json.loads(body)["error"]["code"] \
                    == "deadline_exceeded"
            assert counter("server.responses.deadline") \
                >= deadline_responses + 2
            # Releasing the gate heals the service: the pair computes
            # and fresh requests answer inside the deadline again.
            controller.release.set()
            client = client_for(handle)
            for _ in range(100):
                status, _, body = client.post_json("/v1/similarity",
                                                   payload)
                if status == 200:
                    break
                time.sleep(0.05)
            assert status == 200, body
            assert client.get_json("/healthz")["status"] == "ok"


class TestHammer:
    """A storm of overlapping clients against ground truth."""

    MEASURE = Measure.SHORTEST_PATH
    THREADS = 12
    REQUESTS_PER_THREAD = 4

    @pytest.fixture(scope="class")
    def hammer_setup(self):
        dag = generate_random_dag(120, seed=3)
        toolkit = dag_toolkit({"dag": dag})
        names = sorted(dag)
        pairs = [("dag", names[index], "dag",
                  names[(index * 7 + 3) % len(names)])
                 for index in range(60)]
        qualified = [(QualifiedConcept(a, b), QualifiedConcept(c, d))
                     for a, b, c, d in pairs]
        expected = toolkit.engine(self.MEASURE).score_pairs(qualified)
        with serve_in_thread(toolkit) as handle:
            yield handle, pairs, expected

    def test_parallel_overlapping_clients_get_exact_values(
            self, hammer_setup):
        handle, pairs, expected = hammer_setup
        failures: list[str] = []

        def hammer(thread_index: int) -> None:
            client = client_for(handle)
            for round_index in range(self.REQUESTS_PER_THREAD):
                # Overlapping slices: every thread shares most of its
                # pairs with its neighbours.
                start = (thread_index * 5 + round_index * 3) % 30
                window = pairs[start:start + 25]
                truth = expected[start:start + 25]
                try:
                    response = client.post_ok("/v1/similarity", {
                        "pairs": [list(pair) for pair in window],
                        "measure": int(self.MEASURE)})
                except AssertionError as error:
                    failures.append(f"thread {thread_index}: {error}")
                    return
                if response["values"] != truth:
                    failures.append(
                        f"thread {thread_index} round {round_index}: "
                        "values diverged from ground truth")

        threads = [threading.Thread(target=hammer, args=(index,),
                                    daemon=True)
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []

    def test_state_stays_exact_after_the_storm(self, hammer_setup):
        handle, pairs, expected = hammer_setup
        response = client_for(handle).post_ok("/v1/similarity", {
            "pairs": [list(pair) for pair in pairs],
            "measure": int(self.MEASURE)})
        assert response["values"] == expected
        health = client_for(handle).get_json("/healthz")
        assert health["status"] == "ok"

    def test_distinct_measures_never_cross_talk(self, hammer_setup):
        handle, pairs, _ = hammer_setup
        window = [list(pair) for pair in pairs[:20]]
        toolkit = handle.service.toolkit
        qualified = [(QualifiedConcept(a, b), QualifiedConcept(c, d))
                     for a, b, c, d in pairs[:20]]
        truth = {int(measure): toolkit.engine(measure,
                                              ).score_pairs(qualified)
                 for measure in (Measure.LIN, Measure.EDGE)}
        results: dict = {}

        def score(measure_id: int) -> None:
            results[measure_id] = client_for(handle).post_ok(
                "/v1/similarity",
                {"pairs": window, "measure": measure_id})

        threads = [threading.Thread(target=score, args=(int(measure),),
                                    daemon=True)
                   for measure in (Measure.LIN, Measure.EDGE,
                                   Measure.LIN, Measure.EDGE)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        for measure_id, expected_values in truth.items():
            assert results[measure_id]["values"] == expected_values
