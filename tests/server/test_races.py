"""Regression battery for the facade/wrapper lazy-build races.

A resident server hands one facade to a pool of request threads, so
the cold-start path — first request ever, eight threads deep — used to
race every lazily built singleton: two threads could each build a
``CachedRunner`` for the same measure (splitting the L1 memo in half),
build the unified tree twice, or build the SimPack kernel twice.
These tests fail on the unlocked implementation (barrier-synchronized
threads observed distinct object identities) and pin the RLock fix.

The eviction hammer drives the CachedRunner's L1-evict-plus-L2-write
path from many threads at a capacity small enough that every request
evicts, checking values against ground truth and that the L2 tier
still warm-starts a fresh runner afterwards.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core.cache import CachedRunner
from repro.core.diskcache import DiskCache
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.ontologies.generator import generate_random_dag
from tests.server.conftest import dag_toolkit

THREADS = 8


def race(build):
    """Run ``build`` on barrier-synchronized threads; return results."""
    barrier = threading.Barrier(THREADS)
    results: list = [None] * THREADS
    errors: list = []

    def contender(index: int) -> None:
        barrier.wait(10)
        try:
            results[index] = build()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=contender, args=(index,),
                                daemon=True)
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert errors == []
    assert all(result is not None for result in results)
    return results


class TestColdStartSingletons:
    """Every lazily built structure must come out once, not once per
    thread."""

    def test_runner_is_built_once_across_threads(self):
        toolkit = dag_toolkit({"ont": generate_random_dag(30, seed=1)},
                              cache=True)
        results = race(lambda: toolkit.runner(Measure.LIN))
        assert len({id(runner) for runner in results}) == 1
        assert isinstance(results[0], CachedRunner)

    def test_tree_is_built_once_across_threads(self):
        toolkit = dag_toolkit({"ont": generate_random_dag(30, seed=2)})
        results = race(lambda: toolkit.tree)
        assert len({id(tree) for tree in results}) == 1

    def test_wrapper_kernel_is_built_once_across_threads(self):
        toolkit = dag_toolkit({"ont": generate_random_dag(30, seed=3)})
        wrapper = toolkit.wrapper
        results = race(wrapper.kernel)
        assert len({id(kernel) for kernel in results}) == 1

    def test_disk_cache_is_built_once_across_threads(self):
        toolkit = dag_toolkit({"ont": generate_random_dag(30, seed=4)},
                              cache=True)
        results = race(lambda: toolkit.disk_cache)
        assert results[0] is not None
        assert len({id(cache) for cache in results}) == 1

    def test_wrapper_lock_survives_pickling(self):
        """The lazy-build lock must not break the process strategy.

        Cached runners travel to forked/spawned workers by pickle and
        reach the wrapper through their inner runner; the lock is
        dropped on the way out and each copy grows a fresh one.
        """
        dag = generate_random_dag(20, seed=7)
        toolkit = dag_toolkit({"ont": dag}, cache=True)
        names = sorted(dag)
        runner = toolkit.runner(Measure.SHORTEST_PATH)
        first = QualifiedConcept("ont", names[0])
        second = QualifiedConcept("ont", names[-1])
        expected = runner.run(first, second)
        clone = pickle.loads(pickle.dumps(runner))
        assert clone.run(first, second) == expected
        results = race(lambda: clone.inner.wrapper.kernel())
        assert len({id(kernel) for kernel in results}) == 1

    def test_cold_pair_scored_identically_by_all_threads(self):
        dag = generate_random_dag(40, seed=5)
        toolkit = dag_toolkit({"ont": dag}, cache=True)
        names = sorted(dag)
        first = QualifiedConcept("ont", names[3])
        second = QualifiedConcept("ont", names[-2])
        results = race(lambda: toolkit.runner(
            Measure.SHORTEST_PATH).run(first, second))
        assert len(set(results)) == 1


class TestEvictionUnderContention:
    """L1 eviction and L2 writes from many threads stay exact."""

    @pytest.fixture
    def setup(self, tmp_path):
        dag = generate_random_dag(16, seed=6)
        toolkit = dag_toolkit({"ont": dag})
        inner = toolkit.runner(Measure.SHORTEST_PATH)
        names = sorted(dag)
        pairs = [(QualifiedConcept("ont", a), QualifiedConcept("ont", b))
                 for position, a in enumerate(names)
                 for b in names[position + 1:]]
        truth = {CachedRunner(inner).cache_key(first, second):
                 inner.run(first, second) for first, second in pairs}
        return toolkit, inner, pairs, truth, tmp_path

    def test_hammer_with_constant_eviction_stays_exact(self, setup):
        toolkit, inner, pairs, truth, tmp_path = setup
        cached = CachedRunner(inner, capacity=4,
                              l2=DiskCache(tmp_path), fingerprint="race")
        failures: list[str] = []
        barrier = threading.Barrier(THREADS)

        def hammer(offset: int) -> None:
            barrier.wait(10)
            for round_index in range(3):
                for first, second in pairs[offset::2]:
                    value = cached.run(first, second)
                    expected = truth[cached.cache_key(first, second)]
                    if value != expected:
                        failures.append(
                            f"{first.concept_name}/{second.concept_name}"
                            f": {value} != {expected}")
                        return

        threads = [threading.Thread(target=hammer, args=(index % 2,),
                                    daemon=True)
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []
        # Capacity is enforced even under contention.
        assert len(cached) <= 4

    def test_l2_written_during_eviction_warm_starts(self, setup):
        toolkit, inner, pairs, truth, tmp_path = setup
        store = DiskCache(tmp_path)
        cached = CachedRunner(inner, capacity=4, l2=store,
                              fingerprint="race")

        def fill(_: int) -> None:
            for first, second in pairs:
                cached.run(first, second)

        race(lambda: fill(0) or True)
        cached.flush()
        # A cold runner over the same store must find every pair in L2
        # with the exact scores, despite the L1 having evicted almost
        # everything while they were written.
        fresh = CachedRunner(inner, capacity=len(pairs) + 1, l2=store,
                             fingerprint="race")
        for first, second in pairs:
            assert fresh.run(first, second) \
                == truth[fresh.cache_key(first, second)]
        assert fresh.l2_hits == len(pairs)
        assert fresh.l2_misses == 0
