"""HTTP robustness: hostile input can refuse, never wedge or traceback.

Every malformed request — bad JSON, oversized bodies, truncated
streams, garbage request lines, unknown everything — must come back as
a typed JSON error (``error.code`` / ``error.message`` /
``error.request_id``) with the right status, and the accept loop must
keep answering ``/healthz`` afterwards.  A hypothesis fuzzer drives
both the request parser (raw bytes over the socket) and the service
payload validator (arbitrary JSON-shaped objects) to pin the
"dict out or RequestError, nothing else" contract.
"""

from __future__ import annotations

import json
import socket
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.resilience import Deadline
from repro.core.server import RequestError, ServerConfig, serve_in_thread
from repro.errors import SSTCoreError
from repro.soqa.api import SOQA
from tests.conftest import MINI_OWL, MINI_PLOOM, MINI_WORDNET
from tests.server.conftest import (ServiceClient, client_for, error_code,
                                   raw_request)

#: Body cap for this battery's server: small enough to overflow easily.
MAX_BODY = 4096


@pytest.fixture(scope="module")
def server():
    soqa = SOQA()
    soqa.load_text(MINI_OWL, "univ", "OWL")
    soqa.load_text(MINI_PLOOM, "MINI", "PowerLoom")
    soqa.load_text(MINI_WORDNET, "wn", "WordNet")
    toolkit = SOQASimPackToolkit(soqa)
    config = ServerConfig(port=0, max_body_bytes=MAX_BODY,
                          io_timeout=5.0)
    with serve_in_thread(toolkit, config) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(server) -> ServiceClient:
    return client_for(server)


class TestHappyPaths:
    def test_healthz_reports_the_corpus_shape(self, client):
        health = client.get_json("/healthz")
        assert health["status"] == "ok"
        assert health["ontologies"] == 3
        assert health["concepts"] > 0

    def test_ontologies_lists_names_languages_and_sizes(self, client):
        listing = client.get_json("/v1/ontologies")
        by_name = {entry["name"]: entry
                   for entry in listing["ontologies"]}
        assert set(by_name) == {"univ", "MINI", "wn"}
        assert by_name["univ"]["language"] == "OWL"
        assert all(entry["concepts"] > 0 for entry in by_name.values())

    def test_pair_similarity_round_trip(self, client):
        response = client.post_ok("/v1/similarity", {
            "first": ["univ", "Professor"], "second": ["univ", "Student"],
            "measure": int(Measure.SHORTEST_PATH)})
        assert isinstance(response["similarity"], float)
        assert 0.0 <= response["similarity"] <= 1.0

    def test_metrics_exposes_server_counters(self, client):
        client.get_json("/healthz")
        status, headers, body = client.get("/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "sst_server_requests" in text
        assert "sst_server_request_seconds" in text

    def test_request_id_header_is_echoed(self, client):
        status, headers, _ = client.get(
            "/healthz", headers={"X-Request-Id": "trace-42"})
        assert status == 200
        assert headers["x-request-id"] == "trace-42"

    def test_unprintable_request_id_is_replaced(self, client):
        status, headers, _ = client.get(
            "/healthz", headers={"X-Request-Id": "a" * 400})
        assert status == 200
        assert headers["x-request-id"].startswith("req-")


class TestTypedRefusals:
    def test_unknown_path_is_404(self, client):
        status, _, body = client.get("/v2/nope")
        assert status == 404
        assert error_code(body) == "unknown_path"

    def test_wrong_method_is_405_with_allow(self, client):
        status, headers, body = client.post_json("/healthz", {})
        assert status == 405
        assert headers["allow"] == "GET"
        assert error_code(body) == "method_not_allowed"

    def test_get_on_similarity_is_405(self, client):
        status, headers, body = client.get("/v1/similarity")
        assert status == 405
        assert headers["allow"] == "POST"

    def test_malformed_json_is_400(self, client):
        status, _, body = client.request(
            "POST", "/v1/similarity", body=b"{not json",
            headers={"Content-Type": "application/json"})
        assert status == 400
        assert error_code(body) == "bad_json"

    def test_non_object_payload_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", [1, 2, 3])
        assert status == 422
        assert error_code(body) == "invalid_payload"

    def test_missing_fields_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", {})
        assert status == 422
        assert error_code(body) == "missing_field"

    def test_unknown_measure_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "first": ["univ", "Person"], "second": ["univ", "Student"],
            "measure": "no-such-measure"})
        assert status == 422
        assert error_code(body) == "unknown_measure"

    def test_unknown_engine_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "first": ["univ", "Person"], "second": ["univ", "Student"],
            "engine": "warp"})
        assert status == 422
        assert error_code(body) == "unknown_engine"

    def test_unknown_ontology_is_404(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "first": ["nope", "Person"], "second": ["univ", "Student"]})
        assert status == 404
        assert error_code(body) == "unknown_ontology"

    def test_unknown_concept_is_404(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "first": ["univ", "Zork"], "second": ["univ", "Student"]})
        assert status == 404
        assert error_code(body) == "unknown_concept"

    def test_malformed_concept_reference_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "first": "univ:Person", "second": ["univ", "Student"]})
        assert status == 422
        assert error_code(body) == "invalid_concept"

    def test_malformed_pair_entry_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity", {
            "pairs": [["univ", "Person", "univ"]]})
        assert status == 422
        assert error_code(body) == "invalid_pair"

    def test_empty_concept_set_is_422(self, client):
        status, _, body = client.post_json("/v1/similarity",
                                           {"concepts": []})
        assert status == 422
        assert error_code(body) == "invalid_field"

    @pytest.mark.parametrize("k", [0, -3, True, "many", 1.5])
    def test_invalid_k_is_422(self, client, k):
        status, _, body = client.post_json("/v1/ksim", {
            "ontology": "univ", "concept": "Person", "k": k})
        assert status == 422
        assert error_code(body) == "invalid_field"

    def test_malformed_subtree_is_422(self, client):
        status, _, body = client.post_json("/v1/ksim", {
            "ontology": "univ", "concept": "Person",
            "subtree": "no-colon"})
        assert status == 422
        assert error_code(body) == "invalid_field"

    def test_oversized_payload_is_413(self, client):
        padding = {"first": ["univ", "Person"],
                   "second": ["univ", "Student"],
                   "padding": "x" * (MAX_BODY * 2)}
        status, _, body = client.post_json("/v1/similarity", padding)
        assert status == 413
        assert error_code(body) == "payload_too_large"


class TestWireLevelRobustness:
    """Raw-socket abuse the high-level client cannot even express."""

    def test_missing_content_length_is_411(self, server):
        raw = (b"POST /v1/similarity HTTP/1.1\r\n"
               b"Host: x\r\n\r\n{}")
        response = raw_request(server.host, server.port, raw)
        assert b" 411 " in response
        assert b"length_required" in response

    def test_garbage_request_line_is_400(self, server):
        response = raw_request(server.host, server.port,
                               b"EHLO mail.example.com\r\n\r\n")
        assert b" 400 " in response
        assert b"bad_request" in response

    def test_header_without_colon_is_400(self, server):
        raw = (b"GET /healthz HTTP/1.1\r\n"
               b"this is not a header\r\n\r\n")
        response = raw_request(server.host, server.port, raw)
        assert b" 400 " in response

    def test_oversized_request_line_is_400(self, server):
        raw = b"GET /" + b"a" * 8192 + b" HTTP/1.1\r\n\r\n"
        response = raw_request(server.host, server.port, raw)
        assert b" 400 " in response

    def test_too_many_headers_is_431(self, server):
        headers = b"".join(b"X-H%d: v\r\n" % index
                           for index in range(200))
        raw = b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n"
        response = raw_request(server.host, server.port, raw)
        assert b" 431 " in response
        assert b"headers_too_large" in response

    def test_truncated_body_is_400(self, server):
        raw = (b"POST /v1/similarity HTTP/1.1\r\n"
               b"Content-Length: 500\r\n\r\n{\"first\":")
        response = raw_request(server.host, server.port, raw)
        assert b" 400 " in response
        assert b"truncated_body" in response

    def test_negative_content_length_is_400(self, server):
        raw = (b"POST /v1/similarity HTTP/1.1\r\n"
               b"Content-Length: -5\r\n\r\n")
        response = raw_request(server.host, server.port, raw)
        assert b" 400 " in response

    def test_empty_connection_is_closed_quietly(self, server):
        assert raw_request(server.host, server.port, b"") == b""

    def test_no_response_ever_carries_a_traceback(self, server, client):
        probes = [
            client.post_json("/v1/similarity", {"measure": {}})[2],
            client.post_json("/v1/ksim", {"ontology": 7, "concept": 8})[2],
            raw_request(server.host, server.port,
                        b"POST /v1/ksim HTTP/1.1\r\n"
                        b"Content-Length: 2\r\n\r\n[]"),
        ]
        for body in probes:
            assert b"Traceback" not in body
            assert b".py" not in body

    def test_accept_loop_survives_the_whole_gauntlet(self, server,
                                                     client):
        """After all of the above abuse the server still answers."""
        health = client.get_json("/healthz")
        assert health["status"] == "ok"
        response = client.post_ok("/v1/similarity", {
            "first": ["univ", "Person"], "second": ["univ", "Employee"]})
        assert isinstance(response["similarity"], float)


#: JSON-shaped values, nested a couple of levels deep.
json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=12),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=4)),
    max_leaves=12)

payloads = st.dictionaries(
    st.sampled_from(["measure", "engine", "first", "second", "pairs",
                     "concepts", "ontology", "concept", "k",
                     "dissimilar", "subtree", "junk"]),
    json_values, max_size=6)


class TestServiceFuzz:
    """The validator contract: a dict out, or RequestError — nothing
    else escapes, no matter what JSON shape comes in."""

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(payload=payloads)
    def test_similarity_validator_never_leaks(self, server, payload):
        try:
            result = server.service.similarity(payload, Deadline.never())
        except RequestError as error:
            assert 400 <= error.status < 500
        else:
            assert isinstance(result, dict)

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(payload=json_values)
    def test_ksim_validator_never_leaks(self, server, payload):
        try:
            result = server.service.ksim(payload, Deadline.never())
        except RequestError as error:
            assert 400 <= error.status < 500
        else:
            assert isinstance(result, dict)


class TestWireFuzz:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(garbage=st.binary(min_size=1, max_size=512))
    def test_random_bytes_never_wedge_the_server(self, server, garbage):
        response = raw_request(server.host, server.port, garbage,
                               timeout=10.0)
        if response:
            assert response.startswith(b"HTTP/1.1 ")
            assert b"Traceback" not in response
        health = ServiceClient(server.host, server.port).get_json(
            "/healthz")
        assert health["status"] == "ok"

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(body=st.binary(min_size=0, max_size=256))
    def test_random_bodies_get_typed_errors(self, server, body):
        raw = (b"POST /v1/similarity HTTP/1.1\r\n"
               b"Content-Length: %d\r\n\r\n" % len(body)) + body
        response = raw_request(server.host, server.port, raw,
                               timeout=10.0)
        assert response.startswith(b"HTTP/1.1 ")
        status = int(response.split(b" ", 2)[1])
        assert status in (200, 400, 404, 422)
        header_end = response.index(b"\r\n\r\n") + 4
        payload = json.loads(response[header_end:])
        assert isinstance(payload, dict)
        if status != 200:
            assert set(payload) == {"error"}


class TestLifecycle:
    def test_bind_failure_surfaces_the_real_error_fast(self):
        """Regression: a failed bind (port already taken) must raise
        promptly with the underlying OSError attached — not block 30s
        and mask it behind a generic startup-timeout message."""
        soqa = SOQA()
        soqa.load_text(MINI_OWL, "univ", "OWL")
        toolkit = SOQASimPackToolkit(soqa)
        with socket.socket() as occupier:
            occupier.bind(("127.0.0.1", 0))
            occupier.listen(1)
            port = occupier.getsockname()[1]
            config = ServerConfig(host="127.0.0.1", port=port)
            started = time.monotonic()
            with pytest.raises(SSTCoreError) as exc_info:
                serve_in_thread(toolkit, config)
            assert time.monotonic() - started < 10.0
            assert "failed to start" in str(exc_info.value)
            assert isinstance(exc_info.value.__cause__, OSError)
