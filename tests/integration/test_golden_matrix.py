"""Golden end-to-end conformance test of all 26 similarity measures.

Pins the full cross-ontology similarity matrix of a fixed six-concept
panel — spanning all five bundled ontologies — under **every**
registered measure to a checked-in fixture.  Any change to a parser, the
unified tree, a graph algorithm, an IC table or a measure implementation
that moves any score by more than 1e-9 fails here, naming the measure
and the cell.

Regenerate (after an *intentional* semantic change) with::

    SST_REGENERATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_matrix.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

TOLERANCE = 1e-9

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_matrix.json"

REGENERATE_ENV = "SST_REGENERATE_GOLDEN"


def _load_fixture() -> dict:
    with FIXTURE_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def test_fixture_covers_every_registered_measure(corpus_sst):
    fixture = _load_fixture()
    registered = {info["name"] for info in corpus_sst.available_measures()}
    assert set(fixture["matrices"]) == registered


def test_fixture_panel_spans_all_ontologies(corpus_soqa):
    fixture = _load_fixture()
    ontologies = {ontology for ontology, _ in fixture["concepts"]}
    assert ontologies == set(corpus_soqa.ontology_names())


@pytest.mark.parametrize("measure_name", sorted(
    _load_fixture()["matrices"]))
def test_measure_matrix_matches_golden(corpus_sst, measure_name):
    fixture = _load_fixture()
    concepts = [tuple(concept) for concept in fixture["concepts"]]
    expected = fixture["matrices"][measure_name]
    actual = corpus_sst.get_similarity_matrix(concepts, measure_name)
    for row, (expected_row, actual_row) in enumerate(zip(expected, actual)):
        for column, (expected_value, actual_value) in enumerate(
                zip(expected_row, actual_row)):
            assert actual_value == pytest.approx(
                expected_value, abs=TOLERANCE), (
                f"{measure_name}[{concepts[row]} x {concepts[column]}]: "
                f"expected {expected_value!r}, got {actual_value!r}")


def test_regenerate_fixture(corpus_sst):
    """Rewrites the fixture when ``SST_REGENERATE_GOLDEN=1``; otherwise
    verifies the checked-in file is exactly what a rewrite would emit
    (guards against hand-edits and stale formatting)."""
    fixture = _load_fixture()
    concepts = [tuple(concept) for concept in fixture["concepts"]]
    regenerated = {
        "concepts": [list(concept) for concept in concepts],
        "matrices": {
            info["name"]: corpus_sst.get_similarity_matrix(
                concepts, info["name"])
            for info in corpus_sst.available_measures()},
    }
    rendered = json.dumps(regenerated, indent=1, sort_keys=True)
    if os.environ.get(REGENERATE_ENV, "").strip() not in ("", "0"):
        from repro.core.resilience import atomic_write_text

        atomic_write_text(FIXTURE_PATH, rendered)
    stored = FIXTURE_PATH.read_text(encoding="utf-8").rstrip("\n")
    assert stored == rendered
