"""Integration tests reproducing the paper's scenarios end-to-end.

These tests assert the *shape* claims of the evaluation — who ranks
where, which scores collapse to zero, how the tree-building strategies
differ — on the full 943-concept corpus.  The benchmarks regenerate the
actual tables and figures; here the same claims gate the test suite.
"""

import pytest

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure, TABLE1_MEASURES
from repro.core.unified import MERGED_THING


PROFESSOR = ("Professor", "base1_0_daml")

TABLE1_OTHERS = [
    ("AssistantProfessor", "univ-bench_owl"),
    ("EMPLOYEE", "COURSES"),
    ("Human", "SUMO_owl_txt"),
    ("Mammal", "SUMO_owl_txt"),
]


class TestTable1Shape:
    """Experiment T1 — the qualitative claims of Table 1."""

    def test_self_similarity_maximal_per_measure(self, corpus_sst):
        for measure in TABLE1_MEASURES:
            self_value = corpus_sst.get_similarity(
                *PROFESSOR, *PROFESSOR, measure)
            for other in TABLE1_OTHERS:
                other_value = corpus_sst.get_similarity(
                    *PROFESSOR, *other, measure)
                assert self_value > other_value, (measure, other)

    def test_normalized_diagonal_is_one(self, corpus_sst):
        for measure in TABLE1_MEASURES:
            if corpus_sst.runner(measure).is_normalized():
                assert corpus_sst.get_similarity(
                    *PROFESSOR, *PROFESSOR, measure) == pytest.approx(1.0)

    def test_resnik_diagonal_is_raw_ic(self, corpus_sst):
        value = corpus_sst.get_similarity(*PROFESSOR, *PROFESSOR,
                                          Measure.RESNIK)
        assert value > 1.0  # bits, like the paper's 12.7

    def test_cross_ontology_lin_and_resnik_zero(self, corpus_sst):
        """The MICS of cross-ontology pairs is Super Thing (IC 0), so
        Lin and Resnik collapse to 0.0 — exactly as in Table 1."""
        for other in TABLE1_OTHERS:
            for measure in (Measure.LIN, Measure.RESNIK):
                assert corpus_sst.get_similarity(
                    *PROFESSOR, *other, measure) == 0.0

    def test_university_concepts_beat_sumo_biology(self, corpus_sst):
        """University-domain concepts rank above SUMO's Mammal for every
        measure that discriminates across ontologies."""
        for measure in (Measure.CONCEPTUAL_SIMILARITY, Measure.LEVENSHTEIN,
                        Measure.SHORTEST_PATH, Measure.TFIDF):
            assistant = corpus_sst.get_similarity(
                *PROFESSOR, "AssistantProfessor", "univ-bench_owl", measure)
            mammal = corpus_sst.get_similarity(
                *PROFESSOR, "Mammal", "SUMO_owl_txt", measure)
            assert assistant > mammal, measure

    def test_human_above_mammal(self, corpus_sst):
        """Table 1 ranks SUMO:Human above SUMO:Mammal (Human's shallow
        CognitiveAgent path)."""
        for measure in (Measure.CONCEPTUAL_SIMILARITY,
                        Measure.SHORTEST_PATH, Measure.LEVENSHTEIN):
            human = corpus_sst.get_similarity(*PROFESSOR, "Human",
                                              "SUMO_owl_txt", measure)
            mammal = corpus_sst.get_similarity(*PROFESSOR, "Mammal",
                                               "SUMO_owl_txt", measure)
            assert human > mammal, measure

    def test_tfidf_assistant_professor_strongest_off_diagonal(
            self, corpus_sst):
        values = {other: corpus_sst.get_similarity(*PROFESSOR, *other,
                                                   Measure.TFIDF)
                  for other in TABLE1_OTHERS}
        best = max(values, key=values.get)
        assert best == ("AssistantProfessor", "univ-bench_owl")


class TestFigure5Shape:
    """Experiment F5 — the 10 most similar concepts for Professor."""

    def test_top10_dominated_by_daml_professor_family(self, corpus_sst):
        top = corpus_sst.get_most_similar_concepts(
            *PROFESSOR, k=10, measure=Measure.SHORTEST_PATH)
        assert len(top) == 10
        assert all(entry.ontology_name == "base1_0_daml" for entry in top)
        names = {entry.concept_name for entry in top}
        assert "AssistantProfessor" in names
        assert "Faculty" in names

    def test_chart_generation(self, corpus_sst, tmp_path):
        chart = corpus_sst.get_most_similar_plot(
            *PROFESSOR, k=10, measure=Measure.SHORTEST_PATH)
        paths = chart.save(tmp_path, stem="fig5")
        assert all(path.exists() for path in paths)
        assert "<svg" in chart.to_svg()


class TestFigure6Shape:
    """Experiment F6 — k most similar for univ-bench:Person by TFIDF."""

    def test_person_concepts_rank_top(self, corpus_sst):
        top = corpus_sst.get_most_similar_concepts(
            "Person", "univ-bench_owl", k=10, measure=Measure.TFIDF)
        top_names = [entry.concept_name.lower() for entry in top]
        assert "person" in top_names[:3]
        # Results span multiple ontologies, as in the browser screenshot.
        assert len({entry.ontology_name for entry in top}) >= 2


class TestFigure3Ablation:
    """Experiment F3 — Super Thing vs merged Thing."""

    @pytest.fixture
    def two_domain_sst(self, mini_soqa):
        from tests.conftest import MINI_ORNITHOLOGY_OWL

        mini_soqa.load_text(MINI_ORNITHOLOGY_OWL, "birds", "OWL")
        return mini_soqa

    def test_super_thing_separates_domains(self, two_domain_sst):
        sst = SOQASimPackToolkit(two_domain_sst)
        to_professor = sst.get_similarity("Course", "univ", "Person",
                                          "univ", Measure.SHORTEST_PATH)
        to_blackbird = sst.get_similarity("Course", "univ", "Blackbird",
                                          "birds", Measure.SHORTEST_PATH)
        assert to_professor > to_blackbird

    def test_merged_thing_jumbles_domains(self, two_domain_sst):
        sst = SOQASimPackToolkit(two_domain_sst, strategy=MERGED_THING)
        to_person = sst.get_similarity("Course", "univ", "Person",
                                       "univ", Measure.SHORTEST_PATH)
        to_blackbird = sst.get_similarity("Course", "univ", "Blackbird",
                                          "birds", Measure.SHORTEST_PATH)
        assert to_person == pytest.approx(to_blackbird)


class TestCrossLanguageScenario:
    """Section 3's example: PowerLoom STUDENT vs WordNet researcher."""

    def test_powerloom_vs_wordnet_similarity(self, corpus_sst):
        from repro.ontologies.library import load_wordnet
        from repro.soqa.api import SOQA

        soqa = SOQA()
        from repro.ontologies.library import load_course_ontology

        load_course_ontology(soqa)
        load_wordnet(soqa)
        sst = SOQASimPackToolkit(soqa)
        value = sst.get_similarity("STUDENT", "COURSES",
                                   "researcher", "wordnet", Measure.TFIDF)
        assert value >= 0.0  # computable across languages
        name_sim = sst.get_similarity("STUDENT", "COURSES",
                                      "student", "wordnet",
                                      Measure.NAME_LEVENSHTEIN)
        assert name_sim == pytest.approx(1.0)


class TestCLITable1:
    def test_cli_table1_runs_on_corpus(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "base1_0_daml:Professor" in out
        assert "SUMO_owl_txt:Mammal" in out
