"""Edge-case tests sweeping the thinner corners of the code base."""

import pytest

from repro.errors import (
    OntologyParseError,
    SOQAQLSyntaxError,
    SSTError,
    UnknownConceptError,
    UnknownMeasureError,
    UnknownOntologyError,
)


class TestErrorHierarchy:
    def test_everything_derives_from_sst_error(self):
        for error_class in (OntologyParseError, SOQAQLSyntaxError,
                            UnknownConceptError, UnknownOntologyError,
                            UnknownMeasureError):
            assert issubclass(error_class, SSTError)

    def test_parse_error_carries_location(self):
        error = OntologyParseError("bad", source="file.owl", line=12)
        assert "file.owl" in str(error)
        assert "line 12" in str(error)
        assert error.line == 12

    def test_unknown_concept_mentions_ontology(self):
        error = UnknownConceptError("Ghost", "univ")
        assert "Ghost" in str(error)
        assert "univ" in str(error)

    def test_soqaql_error_position(self):
        error = SOQAQLSyntaxError("oops", position=7)
        assert "position 7" in str(error)


class TestClampSimilarity:
    def test_bounds(self):
        from repro.simpack.base import clamp_similarity

        assert clamp_similarity(-0.5) == 0.0
        assert clamp_similarity(1.5) == 1.0
        assert clamp_similarity(0.5) == 0.5
        assert str(clamp_similarity(-0.0)) == "0.0"


class TestPowerLoomCorners:
    def test_definition_from_iff(self):
        from repro.soqa.wrappers.powerloom import PowerLoomWrapper

        text = ("(defconcept RICH (?p PERSON) "
                ":<=> (and (PERSON ?p) (> (salary ?p) 100000)))\n"
                "(defconcept PERSON)")
        ontology = PowerLoomWrapper().parse(text, "o")
        assert ontology.concept("RICH").definition  # captured the axiom

    def test_assert_on_relation_name_not_instance(self):
        """(assert (teaches a b)) must not create a 'teaches' instance."""
        from repro.soqa.wrappers.powerloom import PowerLoomWrapper

        text = ("(defconcept A)\n"
                "(defrelation knows ((?x A) (?y A)))\n"
                "(assert (knows alice))")
        ontology = PowerLoomWrapper().parse(text, "o")
        assert ontology.concept("A").instances == []

    def test_non_list_forms_ignored(self):
        from repro.soqa.wrappers.powerloom import PowerLoomWrapper

        ontology = PowerLoomWrapper().parse("42 \"str\" (defconcept A)",
                                            "o")
        assert "A" in ontology


class TestRDFXMLCorners:
    def test_node_id_references(self):
        from repro.soqa.rdfxml import parse_rdfxml

        text = """<rdf:RDF
            xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
            xmlns:ex="http://ex#" xml:base="http://b">
          <rdf:Description rdf:ID="a">
            <ex:sees rdf:nodeID="blank1"/>
          </rdf:Description>
          <rdf:Description rdf:nodeID="blank1">
            <ex:label>hidden</ex:label>
          </rdf:Description>
        </rdf:RDF>"""
        graph = parse_rdfxml(text)
        assert graph.resource_objects("http://b#a",
                                      "http://ex#sees") == ["_:blank1"]
        assert graph.literal("_:blank1", "http://ex#label") == "hidden"


class TestVizCorners:
    def test_grouped_chart_requires_series(self):
        from repro.errors import VisualizationError
        from repro.viz.svg import render_grouped_bar_chart_svg

        with pytest.raises(VisualizationError):
            render_grouped_bar_chart_svg("t", ["g"], {})

    def test_grouped_chart_empty_groups_rejected(self):
        from repro.errors import VisualizationError
        from repro.viz.svg import render_grouped_bar_chart_svg

        with pytest.raises(VisualizationError):
            render_grouped_bar_chart_svg("t", [], {"s": []})

    def test_bar_chart_handles_all_zero_values(self):
        from repro.viz.charts import BarChart

        chart = BarChart("zeros", ["a", "b"], [0.0, 0.0])
        assert "<svg" in chart.to_svg()
        assert "zeros" in chart.to_ascii()


class TestResultTypes:
    def test_qualified_concept_ordering(self):
        from repro.core.results import QualifiedConcept

        concepts = sorted([QualifiedConcept("b", "X"),
                           QualifiedConcept("a", "Z"),
                           QualifiedConcept("a", "A")])
        assert [str(concept) for concept in concepts] == [
            "a:A", "a:Z", "b:X"]

    def test_concept_and_similarity_str(self):
        from repro.core.results import ConceptAndSimilarity

        entry = ConceptAndSimilarity("X", "onto", 0.12345)
        assert str(entry) == "onto:X = 0.1235"


class TestFacadeCorners:
    def test_comparison_plot_normalizes_raw_measures(self, mini_sst):
        from repro.core.registry import Measure

        chart = mini_sst.get_comparison_plot(
            [(("univ", "Professor"), ("univ", "Student"))],
            measures=[Measure.RESNIK])
        assert list(chart.series) == ["Resnik (normalized)"]
        assert 0.0 <= chart.series["Resnik (normalized)"][0] <= 1.0

    def test_matrix_symmetric_false_still_correct(self, mini_sst):
        from repro.core.registry import Measure

        concepts = [("univ", "Professor"), ("univ", "Student")]
        fast = mini_sst.get_similarity_matrix(concepts,
                                              Measure.SHORTEST_PATH)
        slow = mini_sst.get_similarity_matrix(concepts,
                                              Measure.SHORTEST_PATH,
                                              symmetric=False)
        assert fast == slow

    def test_similarity_to_set_empty(self, mini_sst):
        from repro.core.registry import Measure

        assert mini_sst.get_similarity_to_set(
            "Professor", "univ", [], Measure.TFIDF) == []

    def test_most_similar_k_zero(self, mini_sst):
        from repro.core.registry import Measure

        assert mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=0, measure=Measure.TFIDF) == []


class TestWordNetCorners:
    def test_verb_style_pointer_symbols_ignored(self):
        from repro.soqa.wrappers.wordnet import WordNetWrapper

        # '~' (hyponym) and '%p' (part meronym) pointers are skipped.
        text = ("00000001 03 n 01 thing 0 000 | root\n"
                "00000002 03 n 01 part 0 002 @ 00000001 n 0000 "
                "%p 00000001 n 0000 | a part\n")
        ontology = WordNetWrapper().parse(text, "wn")
        assert ontology.concept("part").superconcept_names == ["thing"]

    def test_missing_pointer_count_rejected(self):
        from repro.errors import OntologyParseError
        from repro.soqa.wrappers.wordnet import WordNetWrapper

        with pytest.raises(OntologyParseError):
            WordNetWrapper().parse("00000001 03 n 01 thing 0\n", "wn")


class TestGeneratorDeterminism:
    def test_owl_text_contains_exact_class_count(self):
        from repro.ontologies.generator import generate_sumo_owl

        text = generate_sumo_owl(150)
        assert text.count("<owl:Class") == 150

    def test_synthetic_taxonomy_prefix(self):
        from repro.ontologies.generator import generate_synthetic_taxonomy

        parents = generate_synthetic_taxonomy(5, prefix="X")
        assert set(parents) == {"X0", "X1", "X2", "X3", "X4"}
