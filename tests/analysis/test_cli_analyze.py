"""Tests for the ``sst analyze`` subcommand: exit codes, the baseline
workflow, and a golden-file check of the JSON report schema."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_JSON = FIXTURES / "golden_analyze.json"
REPO_ROOT = Path(__file__).parents[2]

#: Deterministic sample with one error and two warnings; analyzed via a
#: relative path so display paths (and the golden report) stay stable.
SAMPLE_SOURCE = (
    "import time\n"
    "from repro.core import telemetry\n"
    "\n"
    "\n"
    "def stamp():\n"
    '    telemetry.count("hits")\n'
    "    return time.time()\n"
    "\n"
    "\n"
    "def guard(work):\n"
    "    try:\n"
    "        return work()\n"
    "    except:  # noqa: E722\n"
    "        return None\n"
)


@pytest.fixture
def sample(tmp_path, monkeypatch) -> str:
    monkeypatch.chdir(tmp_path)
    (tmp_path / "sample.py").write_text(SAMPLE_SOURCE, encoding="utf-8")
    return "sample.py"


@pytest.fixture
def clean(tmp_path, monkeypatch) -> str:
    monkeypatch.chdir(tmp_path)
    (tmp_path / "clean.py").write_text(
        "def double(x):\n    return x * 2\n", encoding="utf-8")
    return "clean.py"


class TestAnalyzeCommand:
    def test_clean_file_exits_zero(self, capsys, clean):
        assert main(["analyze", clean]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_error_findings_fail_by_default(self, capsys, sample):
        code = main(["analyze", sample])
        out = capsys.readouterr().out
        assert code == 1
        assert "error[swallowed-exception]" in out
        assert "warning[wallclock-call]" in out
        assert "sample.py:" in out

    def test_fail_on_warning_tightens_the_gate(self, capsys, sample):
        assert main(["analyze", sample,
                     "--disable", "swallowed-exception"]) == 0
        assert main(["analyze", sample, "--disable", "swallowed-exception",
                     "--fail-on", "warning"]) == 1

    def test_rule_filter_restricts_findings(self, capsys, sample):
        code = main(["analyze", sample, "--rule", "metric-name"])
        out = capsys.readouterr().out
        assert code == 0  # metric-name is a warning
        assert "metric-name" in out
        assert "wallclock-call" not in out

    def test_unknown_rule_rejected(self, capsys, sample):
        assert main(["analyze", sample, "--rule", "ghost-rule"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "ghost-rule" in err

    def test_missing_path_exits_two(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["analyze", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("wallclock-call", "unlocked-shared-state",
                     "nonatomic-write", "span-discipline"):
            assert code in out


class TestBaselineWorkflow:
    def test_write_then_pass_then_fail_on_new(self, capsys, sample,
                                              tmp_path):
        assert main(["analyze", sample, "--fail-on", "warning"]) == 1
        capsys.readouterr()

        assert main(["analyze", sample, "--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "accepted 3 finding(s)" in out
        assert (tmp_path / ".sst-analyze-baseline.json").exists()

        assert main(["analyze", sample, "--fail-on", "warning"]) == 0
        captured = capsys.readouterr()
        assert "no findings" in captured.out
        assert "3 baselined finding(s) suppressed" in captured.err

        amended = SAMPLE_SOURCE + "\n\ndef ts():\n    return time.time()\n"
        (tmp_path / "sample.py").write_text(amended, encoding="utf-8")
        assert main(["analyze", sample, "--fail-on", "warning"]) == 1
        captured = capsys.readouterr()
        assert "wallclock-call" in captured.out
        assert "3 baselined finding(s) suppressed" in captured.err

    def test_no_baseline_flag_sees_everything(self, capsys, sample):
        main(["analyze", sample, "--write-baseline"])
        capsys.readouterr()
        assert main(["analyze", sample, "--no-baseline",
                     "--fail-on", "warning"]) == 1
        assert "wallclock-call" in capsys.readouterr().out

    def test_explicit_baseline_path(self, capsys, sample, tmp_path):
        custom = tmp_path / "accepted.json"
        main(["analyze", sample, "--baseline", str(custom),
              "--write-baseline"])
        capsys.readouterr()
        assert main(["analyze", sample, "--baseline", str(custom),
                     "--fail-on", "warning"]) == 0

    def test_typoed_explicit_baseline_fails_loudly(self, capsys, sample,
                                                   tmp_path):
        missing = tmp_path / "typo.json"
        assert main(["analyze", sample,
                     "--baseline", str(missing)]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_malformed_baseline_fails_loudly(self, capsys, sample,
                                             tmp_path):
        (tmp_path / ".sst-analyze-baseline.json").write_text(
            "{broken", encoding="utf-8")
        assert main(["analyze", sample]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_pragma_suppresses_without_baseline(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "pragmatic.py").write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # sst: disable=wallclock-call\n",
            encoding="utf-8")
        assert main(["analyze", "pragmatic.py",
                     "--fail-on", "warning"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestGoldenJson:
    def test_json_report_matches_golden(self, capsys, sample):
        code = main(["analyze", sample, "--no-baseline",
                     "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        golden = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        assert report == golden

    def test_report_shape_matches_lint_schema(self, capsys, sample):
        main(["analyze", sample, "--no-baseline", "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert list(report) == ["version", "findings", "summary"]
        for finding in report["findings"]:
            assert list(finding) == [
                "severity", "code", "ontology", "subject", "message",
                "line", "column", "hint"]


class TestSelfAnalysis:
    def test_toolkit_source_is_clean_against_baseline(self, capsys,
                                                      monkeypatch):
        """The committed baseline keeps ``sst analyze src/repro`` green —
        the exact gate CI runs."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["analyze", "src/repro",
                     "--fail-on", "warning"]) == 0

    def test_default_paths_analyze_the_installed_package(self, capsys,
                                                         monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["analyze", "--fail-on", "warning",
                     "--no-baseline"]) == 0
