"""Unit tests for the AST infrastructure behind the code rules:
import resolution, parent links, scopes, mutation detection, pragmas."""

import ast

import pytest

from repro.analysis.astwalk import (
    ImportMap,
    attach_parents,
    ancestors,
    collect_python_files,
    dotted_name,
    enclosing_class,
    enclosing_function,
    load_module,
    mutated_outer_names,
    parent,
    parse_suppressions,
    qualname_of,
    scope_info,
)


def first_call(source: str) -> tuple[ast.Module, ast.Call]:
    tree = ast.parse(source)
    attach_parents(tree)
    call = next(node for node in ast.walk(tree)
                if isinstance(node, ast.Call))
    return tree, call


def function_named(source: str, name: str) -> ast.FunctionDef:
    tree = ast.parse(source)
    attach_parents(tree)
    return next(node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef)
                and node.name == name)


class TestImportMap:
    def resolve(self, source: str, expression: str):
        imports = ImportMap(ast.parse(source))
        return imports.resolve(ast.parse(expression).body[0].value)

    def test_plain_import(self):
        assert self.resolve("import time", "time.time") == "time.time"

    def test_import_as(self):
        assert self.resolve("import time as t", "t.time") == "time.time"

    def test_from_import_as(self):
        assert self.resolve("from time import time as now",
                            "now") == "time.time"

    def test_from_package_import_module(self):
        assert self.resolve("from repro.core import telemetry",
                            "telemetry.span") \
            == "repro.core.telemetry.span"

    def test_unimported_name_passes_through(self):
        assert self.resolve("import time", "open") == "open"

    def test_relative_import_keeps_dots(self):
        assert self.resolve("from . import helpers",
                            "helpers.run") == "..helpers.run"

    def test_non_name_expression_is_none(self):
        imports = ImportMap(ast.parse("import time"))
        subscripted = ast.parse("table[0]").body[0].value
        assert imports.resolve(subscripted) is None

    def test_dotted_name_of_chain(self):
        node = ast.parse("a.b.c").body[0].value
        assert dotted_name(node) == "a.b.c"


class TestParentsAndQualnames:
    SOURCE = (
        "class Runner:\n"
        "    def go(self):\n"
        "        return fire()\n"
    )

    def test_parent_chain_reaches_module(self):
        tree, call = first_call(self.SOURCE)
        chain = list(ancestors(call))
        assert chain[-1] is tree
        assert parent(tree) is None

    def test_enclosing_function_and_class(self):
        _tree, call = first_call(self.SOURCE)
        assert enclosing_function(call).name == "go"
        assert enclosing_class(call).name == "Runner"

    def test_qualname_is_dotted(self):
        _tree, call = first_call(self.SOURCE)
        assert qualname_of(call) == "Runner.go"

    def test_module_level_qualname(self):
        _tree, call = first_call("fire()\n")
        assert qualname_of(call) == "<module>"


class TestScopeInfo:
    def test_params_and_assignments_are_local(self):
        function = function_named(
            "def f(a, *rest, b=1, **extra):\n"
            "    c = a + b\n"
            "    return c\n", "f")
        scope = scope_info(function)
        assert {"a", "b", "c", "rest", "extra"} <= scope.local_names
        assert scope.is_outer("shared")
        assert not scope.is_outer("c")

    def test_global_and_nonlocal_are_outer(self):
        function = function_named(
            "def f():\n"
            "    global counter\n"
            "    counter = 1\n", "f")
        scope = scope_info(function)
        assert scope.is_outer("counter")

    def test_nested_scopes_keep_their_own_bindings(self):
        function = function_named(
            "def outer():\n"
            "    def inner():\n"
            "        hidden = 1\n"
            "        return hidden\n"
            "    return inner\n", "outer")
        scope = scope_info(function)
        assert "inner" in scope.local_names
        assert "hidden" not in scope.local_names


class TestMutatedOuterNames:
    def test_global_assignment_recorded_once(self):
        function = function_named(
            "def f():\n"
            "    global total\n"
            "    total += 1\n", "f")
        mutations = mutated_outer_names(function)
        assert [(name, how) for name, _node, how in mutations] \
            == [("total", "assigns the shared name")]

    def test_mutating_method_on_outer_name(self):
        function = function_named(
            "SHARED = []\n"
            "def f(x):\n"
            "    SHARED.append(x)\n", "f")
        names = [name for name, _node, _how in mutated_outer_names(function)]
        assert names == ["SHARED"]

    def test_subscript_store_on_outer_name(self):
        function = function_named(
            "TABLE = {}\n"
            "def f(k, v):\n"
            "    TABLE[k] = v\n", "f")
        mutations = mutated_outer_names(function)
        assert mutations[0][0] == "TABLE"
        assert "stores into" in mutations[0][2]

    def test_local_and_self_mutations_ignored(self):
        function = function_named(
            "def f(self, x):\n"
            "    own = []\n"
            "    own.append(x)\n"
            "    self.items.append(x)\n", "f")
        assert mutated_outer_names(function) == []


class TestSuppressions:
    def test_codes_parsed_per_line(self):
        text = ("x = 1\n"
                "y = 2  # sst: disable=rule-a, rule-b\n"
                "z = 3  # sst:disable=all\n")
        parsed = parse_suppressions(text)
        assert parsed == {2: frozenset({"rule-a", "rule-b"}),
                          3: frozenset({"all"})}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # noqa: E501\n") == {}

    def test_pragma_inside_string_literal_is_data(self):
        text = ('x = "# sst: disable=wallclock-call"\n'
                'y = """\n'
                '# sst: disable=all\n'
                '"""\n')
        assert parse_suppressions(text) == {}

    def test_pragmas_kept_before_untokenizable_tail(self):
        text = ("x = 1  # sst: disable=rule-a\n"
                "y = (\n")
        assert parse_suppressions(text) == {1: frozenset({"rule-a"})}


class TestModuleLoading:
    def test_load_module_attaches_everything(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n"
                          "x = time.time()  # sst: disable=wallclock-call\n",
                          encoding="utf-8")
        module = load_module(target, display="mod.py")
        assert module.display == "mod.py"
        assert module.suppressed(2, "wallclock-call")
        assert not module.suppressed(1, "wallclock-call")
        assert module.resolve(ast.parse("time.time").body[0].value) \
            == "time.time"

    def test_syntax_error_propagates(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(SyntaxError):
            load_module(target)

    def test_collect_walks_directories_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("", encoding="utf-8")
        (tmp_path / "pkg" / "a.py").write_text("", encoding="utf-8")
        (tmp_path / "pkg" / "notes.txt").write_text("", encoding="utf-8")
        collected = collect_python_files([str(tmp_path / "pkg")])
        displays = [display for _path, display in collected]
        assert displays == [f"{(tmp_path / 'pkg').as_posix()}/a.py",
                            f"{(tmp_path / 'pkg').as_posix()}/b.py"]

    def test_collect_display_stays_relative_to_argument(self, tmp_path,
                                                        monkeypatch):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "m.py").write_text("", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        collected = collect_python_files(["src"])
        assert [display for _path, display in collected] == ["src/m.py"]

    def test_single_file_argument(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("", encoding="utf-8")
        collected = collect_python_files([str(target)])
        assert collected == [(target, target.as_posix())]
