"""Tests for the ``sst lint`` subcommand and the lint-backed
``sst validate``/``sst query`` behaviour, including a golden-file
check that the JSON report schema stays stable."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from tests.conftest import MINI_OWL

FIXTURES = Path(__file__).parent / "fixtures"
DIRTY_OWL = str(FIXTURES / "dirty.owl")
GOLDEN_JSON = FIXTURES / "golden_lint.json"


@pytest.fixture
def clean_file(tmp_path) -> str:
    path = tmp_path / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


class TestLintCommand:
    def test_clean_ontology_exits_zero(self, capsys, clean_file):
        assert main(["--ontology-file", clean_file, "lint",
                     "--disable", "isolated-concept"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_warnings_exit_zero_by_default(self, capsys):
        code = main(["--ontology-file", DIRTY_OWL, "lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warning[no-documentation]" in out

    def test_fail_on_warning(self):
        assert main(["--ontology-file", DIRTY_OWL, "lint",
                     "--fail-on", "warning"]) == 1

    def test_soqaql_error_exits_nonzero(self, capsys, clean_file):
        code = main(["--ontology-file", clean_file, "lint",
                     "--soqaql", "SELECT nam FROM concepts"])
        out = capsys.readouterr().out
        assert code == 1
        assert "error[unknown-select-field]" in out
        assert "line 1, column 8" in out

    def test_rule_filter_restricts_findings(self, capsys):
        code = main(["--ontology-file", DIRTY_OWL, "lint", "dirty",
                     "--rule", "isolated-concept"])
        out = capsys.readouterr().out
        assert code == 0
        assert "isolated-concept" in out
        assert "no-documentation" not in out

    def test_disable_drops_rule(self, capsys):
        main(["--ontology-file", DIRTY_OWL, "lint", "dirty",
              "--disable", "no-documentation"])
        assert "no-documentation" not in capsys.readouterr().out

    def test_mixed_family_rule_filter_accepted(self, capsys, clean_file):
        code = main(["--ontology-file", clean_file, "lint",
                     "--rule", "taxonomy-cycle",
                     "--soqaql", "SELECT name FROM concepts"])
        assert code == 0

    def test_unknown_rule_rejected(self, capsys, clean_file):
        code = main(["--ontology-file", clean_file, "lint",
                     "--rule", "ghost-rule"])
        err = capsys.readouterr().err
        assert code == 1
        assert "unknown lint rule" in err
        assert "taxonomy-cycle" in err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "taxonomy-cycle" in out
        assert "unknown-select-field" in out
        assert "ontology" in out and "query" in out

    def test_unknown_ontology_errors(self, clean_file, capsys):
        assert main(["--ontology-file", clean_file, "lint",
                     "ghosts"]) == 1
        assert "error:" in capsys.readouterr().err


class TestGoldenJson:
    def test_json_report_matches_golden(self, capsys):
        code = main(["--ontology-file", DIRTY_OWL, "lint", "dirty",
                     "--soqaql", "SELECT nam FROM concepts",
                     "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        golden = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        assert report == golden

    def test_golden_key_order_is_stable(self, capsys):
        main(["--ontology-file", DIRTY_OWL, "lint", "dirty",
              "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert list(report) == ["version", "findings", "summary"]
        for finding in report["findings"]:
            assert list(finding) == [
                "severity", "code", "ontology", "subject", "message",
                "line", "column", "hint"]

    def test_errors_sort_before_warnings_in_report(self, capsys):
        main(["--ontology-file", DIRTY_OWL, "lint", "dirty",
              "--soqaql", "SELECT nam FROM concepts",
              "--format", "json"])
        severities = [finding["severity"] for finding in
                      json.loads(capsys.readouterr().out)["findings"]]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index)


class TestValidateThroughEngine:
    def test_validate_json_format(self, capsys):
        code = main(["--ontology-file", DIRTY_OWL, "validate", "dirty",
                     "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0  # warnings only
        assert report["version"] == 1
        assert report["summary"]["warning"] >= 2

    def test_validate_text_shows_rule_codes(self, capsys):
        main(["--ontology-file", DIRTY_OWL, "validate", "dirty"])
        assert "warning[no-documentation]" in capsys.readouterr().out


class TestQueryPrevalidation:
    def test_bad_query_blocked_before_execution(self, capsys, clean_file):
        code = main(["--ontology-file", clean_file, "query",
                     "SELECT nam FROM concepts IN univ"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown-select-field" in captured.err
        assert "(0 rows)" not in captured.out

    def test_good_query_still_runs(self, capsys, clean_file):
        code = main(["--ontology-file", clean_file, "query",
                     "SELECT name FROM concepts IN univ"])
        assert code == 0
        assert "Person" in capsys.readouterr().out
