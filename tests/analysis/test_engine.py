"""Unit tests for the static-analysis rule engine."""

import json

import pytest

from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    RuleRegistry,
    gate,
    render_json,
    render_text,
    run_rules,
    severity_rank,
    sort_findings,
    summarize,
)
from repro.errors import UnknownRuleError


def build_registry() -> RuleRegistry:
    registry = RuleRegistry()

    @registry.rule("one", "error", "test", "first rule")
    def _one(rule, context):
        yield rule.finding("broken", subject="a")

    @registry.rule("two", "warning", "test", "second rule")
    def _two(rule, context):
        yield rule.finding("smelly", subject="b")

    return registry


class TestFinding:
    def test_str_with_location(self):
        finding = Finding("error", "code", "msg", subject="X",
                          ontology="onto", line=3, column=7)
        assert str(finding) == \
            "error[code] onto:X (line 3, column 7): msg"

    def test_str_without_location(self):
        finding = Finding("warning", "code", "msg", subject="X")
        assert str(finding) == "warning[code] X: msg"

    def test_as_dict_key_order_is_stable(self):
        keys = list(Finding("error", "c", "m").as_dict())
        assert keys == ["severity", "code", "ontology", "subject",
                        "message", "line", "column", "hint"]


class TestSeverity:
    def test_rank_ordering(self):
        assert severity_rank("error") > severity_rank("warning")
        assert severity_rank("warning") > severity_rank("info")

    def test_unknown_severity_ranks_lowest(self):
        assert severity_rank("bogus") < severity_rank("info")


class TestRegistry:
    def test_codes_are_sorted(self):
        assert build_registry().codes() == ["one", "two"]

    def test_family_filter(self):
        registry = build_registry()
        assert registry.codes("test") == ["one", "two"]
        assert registry.codes("other") == []

    def test_unknown_code_raises(self):
        with pytest.raises(UnknownRuleError, match="ghost"):
            build_registry().get("ghost")

    def test_rule_description_from_docstring(self):
        registry = RuleRegistry()

        @registry.rule("doc", "warning", "test")
        def _doc(rule, context):
            """Short description line."""
            return ()

        assert registry.get("doc").description == "Short description line."


class TestConfig:
    def test_only_restricts_rules(self):
        config = AnalysisConfig.create(only=["one"])
        findings = run_rules(build_registry(), "test", None, config)
        assert [finding.code for finding in findings] == ["one"]

    def test_disable_drops_rules(self):
        config = AnalysisConfig.create(disabled=["one"])
        findings = run_rules(build_registry(), "test", None, config)
        assert [finding.code for finding in findings] == ["two"]

    def test_min_severity_gates_findings(self):
        config = AnalysisConfig.create(min_severity="error")
        findings = run_rules(build_registry(), "test", None, config)
        assert [finding.code for finding in findings] == ["one"]

    def test_validate_accepts_codes_of_any_registry(self):
        other = RuleRegistry()

        @other.rule("three", "warning", "other")
        def _three(rule, context):
            return ()

        config = AnalysisConfig.create(only=["one", "three"])
        config.validate(build_registry(), other)

    def test_validate_rejects_unknown_codes(self):
        config = AnalysisConfig.create(disabled=["ghost"])
        with pytest.raises(UnknownRuleError):
            config.validate(build_registry())


class TestReporting:
    def test_sorted_errors_first(self):
        findings = run_rules(build_registry(), "test", None)
        assert [finding.severity for finding in findings] == \
            ["error", "warning"]

    def test_sort_is_deterministic(self):
        first = Finding("error", "a", "m", subject="x", line=2)
        second = Finding("error", "a", "m", subject="x", line=1)
        assert sort_findings([first, second]) == \
            sort_findings([second, first])

    def test_gate_thresholds(self):
        findings = [Finding("warning", "c", "m")]
        assert gate(findings, "warning") is True
        assert gate(findings, "error") is False
        assert gate([], "warning") is False

    def test_summarize_counts(self):
        counts = summarize(run_rules(build_registry(), "test", None))
        assert counts["error"] == 1
        assert counts["warning"] == 1
        assert counts["total"] == 2

    def test_render_text_empty(self):
        assert render_text([]) == "no findings"

    def test_render_text_summary_line(self):
        text = render_text(run_rules(build_registry(), "test", None))
        assert "error[one] a: broken" in text
        assert "(2 findings: 1 error(s), 1 warning(s))" in text

    def test_render_json_schema(self):
        report = json.loads(
            render_json(run_rules(build_registry(), "test", None)))
        assert report["version"] == 1
        assert report["summary"]["total"] == 2
        assert report["findings"][0]["code"] == "one"
        assert set(report["findings"][0]) == {
            "severity", "code", "ontology", "subject", "message", "line",
            "column", "hint"}
