"""Unit tests for the analyze baseline: fingerprints, load/write
round-trips, and the new-vs-accepted split that gates CI."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    Baseline,
    fingerprint,
    write_baseline,
)
from repro.analysis.engine import Finding
from repro.errors import SSTError


def finding(code="wallclock-call", path="src/mod.py", subject="f",
            message="wall-clock read", line=10, severity="warning"):
    return Finding(severity=severity, code=code, message=message,
                   subject=subject, ontology=path, line=line, column=3)


class TestFingerprint:
    def test_is_stable_and_line_independent(self):
        assert fingerprint(finding(line=10)) == fingerprint(finding(line=99))

    def test_changes_with_identity_fields(self):
        base = fingerprint(finding())
        assert fingerprint(finding(code="unseeded-random")) != base
        assert fingerprint(finding(path="src/other.py")) != base
        assert fingerprint(finding(subject="g")) != base
        assert fingerprint(finding(message="different")) != base

    def test_is_short_hex(self):
        value = fingerprint(finding())
        assert len(value) == 16
        assert int(value, 16) >= 0


class TestLoad:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        assert finding() not in baseline

    def test_none_path_is_empty(self):
        assert len(Baseline.load(None)) == 0

    def test_missing_required_file_raises(self, tmp_path):
        with pytest.raises(SSTError, match="does not exist"):
            Baseline.load(tmp_path / "typo.json", required=True)

    def test_malformed_json_raises(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text("{truncated", encoding="utf-8")
        with pytest.raises(SSTError, match="malformed"):
            Baseline.load(target)

    def test_missing_keys_raise(self, tmp_path):
        target = tmp_path / "nokeys.json"
        target.write_text('{"version": 1}', encoding="utf-8")
        with pytest.raises(SSTError, match="malformed"):
            Baseline.load(target)

    def test_wrong_version_raises(self, tmp_path):
        target = tmp_path / "future.json"
        target.write_text('{"version": 99, "findings": []}',
                          encoding="utf-8")
        with pytest.raises(SSTError, match="version"):
            Baseline.load(target)


class TestRoundTrip:
    def test_written_findings_come_back_accepted(self, tmp_path):
        accepted = finding()
        target = write_baseline(tmp_path / "baseline.json", [accepted])
        baseline = Baseline.load(target)
        assert accepted in baseline
        new, old = baseline.split([accepted, finding(code="metric-name")])
        assert [f.code for f in new] == ["metric-name"]
        assert [f.code for f in old] == ["wallclock-call"]

    def test_line_drift_does_not_resurrect(self, tmp_path):
        target = write_baseline(tmp_path / "baseline.json",
                                [finding(line=10)])
        assert finding(line=42) in Baseline.load(target)

    def test_file_keeps_human_readable_context(self, tmp_path):
        target = write_baseline(tmp_path / "baseline.json", [finding()])
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["version"] == BASELINE_VERSION
        entry = payload["findings"][0]
        assert entry["code"] == "wallclock-call"
        assert entry["path"] == "src/mod.py"
        assert entry["subject"] == "f"
        assert entry["fingerprint"] == fingerprint(finding())

    def test_regeneration_is_byte_identical(self, tmp_path):
        findings = [finding(), finding(code="metric-name", severity="error")]
        first = write_baseline(tmp_path / "a.json", findings)
        second = write_baseline(tmp_path / "b.json", list(reversed(findings)))
        assert first.read_text(encoding="utf-8") \
            == second.read_text(encoding="utf-8")

    def test_empty_baseline_accepts_nothing(self, tmp_path):
        target = write_baseline(tmp_path / "baseline.json", [])
        baseline = Baseline.load(target)
        new, old = baseline.split([finding()])
        assert len(new) == 1 and old == []
