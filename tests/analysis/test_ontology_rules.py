"""Unit tests for every ontology-linter rule: one positive and one
negative case per rule code."""

from repro.analysis import lint_concepts, lint_ontology
from repro.soqa.metamodel import (
    Attribute,
    Concept,
    Instance,
    Ontology,
    OntologyMetadata,
    Relationship,
)


def build(*concepts: Concept) -> Ontology:
    return Ontology(OntologyMetadata(name="test", language="OWL"),
                    concepts)


def codes(ontology: Ontology) -> list[str]:
    return [finding.code for finding in lint_ontology(ontology)]


def raw_codes(*concepts: Concept) -> list[str]:
    return [finding.code
            for finding in lint_concepts(list(concepts), name="test")]


class TestStructuralRules:
    def test_taxonomy_cycle_detected(self):
        found = raw_codes(
            Concept("A", documentation="d", superconcept_names=["B"]),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "taxonomy-cycle" in found

    def test_taxonomy_cycle_reported_once(self):
        findings = lint_concepts([
            Concept("A", documentation="d", superconcept_names=["B"]),
            Concept("B", documentation="d", superconcept_names=["A"]),
        ], name="test")
        cycles = [finding for finding in findings
                  if finding.code == "taxonomy-cycle"]
        assert len(cycles) == 1
        assert "A" in cycles[0].message and "B" in cycles[0].message

    def test_acyclic_taxonomy_clean(self):
        found = raw_codes(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "taxonomy-cycle" not in found

    def test_dangling_superconcept_detected(self):
        found = raw_codes(
            Concept("A", documentation="d", superconcept_names=["Ghost"]))
        assert "dangling-superconcept" in found

    def test_resolved_superconcept_clean(self):
        found = raw_codes(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "dangling-superconcept" not in found

    def test_duplicate_concept_detected(self):
        found = raw_codes(Concept("A", documentation="d"),
                          Concept("A", documentation="d"))
        assert "duplicate-concept" in found

    def test_case_collision_is_warning(self):
        findings = lint_concepts([
            Concept("Person", documentation="d"),
            Concept("person", documentation="d"),
        ], name="test")
        hits = [finding for finding in findings
                if finding.code == "duplicate-concept"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_distinct_concepts_clean(self):
        found = raw_codes(Concept("A", documentation="d"),
                          Concept("B", documentation="d"))
        assert "duplicate-concept" not in found


class TestContentRules:
    def test_no_documentation(self):
        assert "no-documentation" in codes(build(Concept("A")))

    def test_documented_clean(self):
        assert codes(build(Concept("A", documentation="d"))) == []

    def test_isolated_concept_needs_multiple_roots(self):
        connected = build(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "isolated-concept" not in codes(connected)
        forest = build(
            Concept("A", documentation="d"),
            Concept("B", documentation="d", superconcept_names=["A"]),
            Concept("Island", documentation="d"))
        assert "isolated-concept" in codes(forest)

    def test_dangling_equivalent(self):
        ontology = build(Concept("A", documentation="d",
                                 equivalent_concept_names=["Ghost"]))
        assert "dangling-equivalent" in codes(ontology)

    def test_resolved_equivalent_clean(self):
        ontology = build(
            Concept("A", documentation="d",
                    equivalent_concept_names=["B"]),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "dangling-equivalent" not in codes(ontology)

    def test_dangling_antonym(self):
        ontology = build(Concept("A", documentation="d",
                                 antonym_concept_names=["Ghost"]))
        assert "dangling-antonym" in codes(ontology)

    def test_resolved_antonym_clean(self):
        ontology = build(
            Concept("A", documentation="d", antonym_concept_names=["B"]),
            Concept("B", documentation="d", superconcept_names=["A"]))
        assert "dangling-antonym" not in codes(ontology)

    def test_unknown_related_concept(self):
        ontology = build(Concept(
            "A", documentation="d",
            relationships=[Relationship(
                "r", related_concept_names=["A", "Ghost"])]))
        assert "unknown-related-concept" in codes(ontology)

    def test_literal_typed_relationship_clean(self):
        ontology = build(Concept(
            "A", documentation="d",
            relationships=[Relationship(
                "r", related_concept_names=["A", "STRING"])]))
        assert "unknown-related-concept" not in codes(ontology)

    def test_duplicate_instance(self):
        ontology = build(
            Concept("A", documentation="d",
                    instances=[Instance("x", "A")]),
            Concept("B", documentation="d",
                    instances=[Instance("x", "B")]))
        assert "duplicate-instance" in codes(ontology)

    def test_unique_instances_clean(self):
        ontology = build(
            Concept("A", documentation="d",
                    instances=[Instance("x", "A"), Instance("y", "A")]))
        assert "duplicate-instance" not in codes(ontology)

    def test_dangling_instance_target(self):
        ontology = build(Concept(
            "A", documentation="d",
            instances=[Instance("x", "A",
                                relationship_targets={"r": ["ghost"]})]))
        assert "dangling-instance-target" in codes(ontology)

    def test_resolved_instance_target_clean(self):
        ontology = build(Concept(
            "A", documentation="d",
            instances=[
                Instance("x", "A", relationship_targets={"r": ["y"]}),
                Instance("y", "A"),
            ]))
        assert "dangling-instance-target" not in codes(ontology)


class TestNewContentRules:
    def test_attribute_shadowing_detected(self):
        ontology = build(
            Concept("Person", documentation="d",
                    attributes=[Attribute("name", "Person")]),
            Concept("Student", documentation="d",
                    superconcept_names=["Person"],
                    attributes=[Attribute("name", "Student")]))
        assert "attribute-shadowing" in codes(ontology)

    def test_attribute_shadowing_reaches_indirect_ancestors(self):
        ontology = build(
            Concept("Person", documentation="d",
                    attributes=[Attribute("name", "Person")]),
            Concept("Employee", documentation="d",
                    superconcept_names=["Person"]),
            Concept("Professor", documentation="d",
                    superconcept_names=["Employee"],
                    attributes=[Attribute("name", "Professor")]))
        assert "attribute-shadowing" in codes(ontology)

    def test_distinct_attributes_clean(self):
        ontology = build(
            Concept("Person", documentation="d",
                    attributes=[Attribute("name", "Person")]),
            Concept("Student", documentation="d",
                    superconcept_names=["Person"],
                    attributes=[Attribute("matriculation", "Student")]))
        assert "attribute-shadowing" not in codes(ontology)

    def test_relationship_range_violation_detected(self):
        ontology = build(
            Concept("Professor", documentation="d",
                    relationships=[Relationship(
                        "advises",
                        related_concept_names=["Professor", "Student"])],
                    instances=[Instance(
                        "smith", "Professor",
                        relationship_targets={"advises": ["db1"]})]),
            Concept("Student", documentation="d"),
            Concept("Course", documentation="d",
                    instances=[Instance("db1", "Course")]))
        assert "relationship-range-violation" in codes(ontology)

    def test_range_satisfied_by_subconcept(self):
        ontology = build(
            Concept("Professor", documentation="d",
                    relationships=[Relationship(
                        "advises",
                        related_concept_names=["Professor", "Student"])],
                    instances=[Instance(
                        "smith", "Professor",
                        relationship_targets={"advises": ["jane"]})]),
            Concept("Student", documentation="d"),
            Concept("PhDStudent", documentation="d",
                    superconcept_names=["Student"],
                    instances=[Instance("jane", "PhDStudent")]))
        assert "relationship-range-violation" not in codes(ontology)

    def test_untyped_instance_detected(self):
        found = raw_codes(Concept(
            "A", documentation="d",
            instances=[Instance("x", "Ghost")]))
        assert "untyped-instance" in found
        empty = raw_codes(Concept(
            "A", documentation="d", instances=[Instance("x", "")]))
        assert "untyped-instance" in empty

    def test_typed_instance_clean(self):
        ontology = build(Concept(
            "A", documentation="d", instances=[Instance("x", "A")]))
        assert "untyped-instance" not in codes(ontology)


class TestFindingQuality:
    def test_findings_carry_ontology_and_hint(self):
        findings = lint_ontology(build(Concept("A")))
        assert findings[0].ontology == "test"
        assert findings[0].hint

    def test_errors_sort_before_warnings(self):
        ontology = build(
            Concept("A",  # no documentation (warning)
                    relationships=[Relationship(
                        "r", related_concept_names=["Ghost"])]))
        findings = lint_ontology(ontology)
        assert findings[0].severity == "error"
