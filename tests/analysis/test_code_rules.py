"""Unit tests for the code-rule family: one positive and one negative
fixture per rule, pragma suppression, and config filtering."""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.code_rules import CODE_RULES, METRIC_NAMESPACES

FIXTURES = Path(__file__).parent / "code_fixtures"


def findings_for(name, config=None):
    return analyze_paths([str(FIXTURES / name)], config=config)


def codes(name, config=None):
    return [finding.code for finding in findings_for(name, config)]


#: ``(positive fixture, negative fixture, rule code, finding count)``.
RULE_CASES = [
    ("wallclock_bad.py", "wallclock_good.py", "wallclock-call", 3),
    ("unseeded_random_bad.py", "unseeded_random_good.py",
     "unseeded-random", 2),
    ("unsorted_iteration_bad.py", "unsorted_iteration_good.py",
     "unsorted-iteration", 3),
    ("worker_mutation_bad.py", "worker_mutation_good.py",
     "worker-shared-mutation", 2),
    ("unlocked_state_bad.py", "unlocked_state_good.py",
     "unlocked-shared-state", 1),
    ("fork_initargs_bad.py", "fork_initargs_good.py",
     "fork-unsafe-initargs", 2),
    ("async_blocking_bad.py", "async_blocking_good.py",
     "async-blocking-call", 3),
    ("nonatomic_write_bad.py", "nonatomic_write_good.py",
     "nonatomic-write", 3),
    ("fault_site_bad.py", "fault_site_good.py", "unknown-fault-site", 1),
    ("swallowed_exception_bad.py", "swallowed_exception_good.py",
     "swallowed-exception", 3),
    ("metric_name_bad.py", "metric_name_good.py", "metric-name", 3),
    ("span_discipline_bad.py", "span_discipline_good.py",
     "span-discipline", 1),
    ("mutable_default_bad.py", "mutable_default_good.py",
     "mutable-default-argument", 3),
    ("prefer_batch_kernel_bad.py", "prefer_batch_kernel_good.py",
     "prefer-batch-kernel", 2),
    ("full_materialization_bad.py", "full_materialization_good.py",
     "full-materialization", 3),
    ("executor_shutdown_bad.py", "executor_shutdown_good.py",
     "abandoning-executor-shutdown", 2),
    ("signal_thread_bad.py", "signal_thread_good.py",
     "signal-off-main-thread", 1),
]


class TestEveryRule:
    @pytest.mark.parametrize("bad,good,code,count", RULE_CASES,
                             ids=[case[2] for case in RULE_CASES])
    def test_positive_fixture_flagged(self, bad, good, code, count):
        found = codes(bad)
        assert found == [code] * count, found

    @pytest.mark.parametrize("bad,good,code,count", RULE_CASES,
                             ids=[case[2] for case in RULE_CASES])
    def test_negative_fixture_clean(self, bad, good, code, count):
        assert codes(good) == []

    def test_every_registered_rule_has_a_fixture_pair(self):
        covered = {case[2] for case in RULE_CASES} | {"module-syntax-error"}
        assert {rule.code for rule in CODE_RULES.rules()} == covered
        assert len(CODE_RULES.rules()) >= 10


class TestFindingShape:
    def test_path_subject_and_position(self):
        finding = findings_for("wallclock_bad.py")[0]
        assert finding.ontology.endswith("code_fixtures/wallclock_bad.py")
        assert finding.subject == "stamp_result"
        assert finding.line == 8
        assert finding.column > 0
        assert "time.time" in finding.message
        assert finding.hint

    def test_class_methods_get_dotted_qualnames(self):
        finding = findings_for("unlocked_state_bad.py")[0]
        assert finding.subject == "Cache.clear"
        assert "self._entries" in finding.message
        assert "self._lock" in finding.message

    def test_bare_except_escalates_to_error(self):
        findings = findings_for("swallowed_exception_bad.py")
        by_severity = {finding.severity for finding in findings}
        assert by_severity == {"error", "warning"}
        bare = next(f for f in findings if f.severity == "error")
        assert "bare except" in bare.message


class TestSyntaxErrors:
    def test_unparseable_file_becomes_finding(self):
        findings = findings_for("syntax_error_bad.py")
        assert [f.code for f in findings] == ["module-syntax-error"]
        assert findings[0].severity == "error"
        assert findings[0].line == 4

    def test_syntax_error_rule_can_be_disabled(self):
        config = AnalysisConfig.create(disabled=["module-syntax-error"])
        assert codes("syntax_error_bad.py", config) == []

    def test_broken_file_does_not_abort_the_run(self):
        findings = analyze_paths([str(FIXTURES / "syntax_error_bad.py"),
                                  str(FIXTURES / "wallclock_bad.py")])
        found = {finding.code for finding in findings}
        assert found == {"module-syntax-error", "wallclock-call"}


class TestSuppression:
    def test_pragmas_silence_named_code_and_all(self):
        assert codes("pragma_suppressed.py") == []

    def test_pragma_does_not_leak_to_other_lines(self, tmp_path):
        source = dedent("""\
            import time

            def stamped():
                a = time.time()  # sst: disable=wallclock-call
                b = time.time()
                return a, b
        """)
        target = tmp_path / "sample.py"
        target.write_text(source, encoding="utf-8")
        findings = analyze_paths([str(target)])
        assert [f.code for f in findings] == ["wallclock-call"]
        assert findings[0].line == 5


class TestConfigFiltering:
    def test_only_selects_one_rule(self):
        config = AnalysisConfig.create(only=["metric-name"])
        assert set(codes("metric_name_bad.py", config)) == {"metric-name"}
        assert codes("wallclock_bad.py", config) == []

    def test_min_severity_drops_warnings(self):
        config = AnalysisConfig.create(min_severity="error")
        assert codes("wallclock_bad.py", config) == []
        assert codes("nonatomic_write_bad.py", config) \
            == ["nonatomic-write"] * 3


class TestDirectoryAnalysis:
    def test_directory_walk_is_deterministic(self):
        config = AnalysisConfig.create(disabled=["module-syntax-error"])
        first = analyze_paths([str(FIXTURES)], config=config)
        second = analyze_paths([str(FIXTURES)], config=config)
        assert [f.as_dict() for f in first] == [f.as_dict() for f in second]
        assert first, "fixture directory must produce findings"

    def test_errors_sort_before_warnings(self):
        config = AnalysisConfig.create(disabled=["module-syntax-error"])
        severities = [f.severity for f in
                      analyze_paths([str(FIXTURES)], config=config)]
        assert severities == sorted(
            severities, key=lambda s: 0 if s == "error" else 1)


class TestSeededViolation:
    def test_wallclock_in_a_measure_is_detected(self, tmp_path):
        """The acceptance scenario: a similarity measure that stamps its
        result with ``time.time()`` must be caught."""
        source = dedent("""\
            import time

            class JitterMeasure:
                def similarity(self, first, second):
                    return (hash((first, second)) % 100) / 100.0

                def report(self, first, second):
                    return {"value": self.similarity(first, second),
                            "at": time.time()}
        """)
        target = tmp_path / "jitter_measure.py"
        target.write_text(source, encoding="utf-8")
        findings = analyze_paths([str(target)])
        assert [f.code for f in findings] == ["wallclock-call"]
        assert findings[0].subject == "JitterMeasure.report"


def test_metric_namespaces_cover_the_codebase():
    """Every namespace the toolkit emits today is registered."""
    for root in ("cache", "facade", "faults", "graphindex", "parallel",
                 "resilience", "soqa"):
        assert root in METRIC_NAMESPACES
