"""Unit tests for the SOQA-QL static checker: one positive and one
negative case per rule code, plus checks across every bundled wrapper."""

import pytest

from repro.analysis import AnalysisConfig, check_query
from repro.soqa.api import SOQA
from tests.conftest import MINI_OWL, MINI_PLOOM, MINI_WORDNET
from tests.soqa.test_more_wrappers import (
    ONTOLINGUA_TEXT,
    RDFS_TEXT,
    SHOE_TEXT,
)
from tests.soqa.test_wrappers import DAML_TEXT


def codes(query: str, soqa=None, config=None) -> list[str]:
    """Finding codes, minus the advisory ``full-scan`` cost warning
    (dedicated coverage in :class:`TestRedundancyAndCost`)."""
    return [finding.code
            for finding in check_query(query, soqa=soqa, config=config)
            if finding.code != "full-scan"]


@pytest.fixture
def soqa() -> SOQA:
    facade = SOQA()
    facade.load_text(MINI_OWL, "univ", "OWL")
    return facade


class TestFieldRules:
    def test_unknown_select_field(self):
        findings = check_query("SELECT nam FROM concepts")
        assert findings[0].code == "unknown-select-field"
        assert (findings[0].line, findings[0].column) == (1, 8)
        assert "available" in findings[0].message

    def test_known_select_fields_clean(self):
        assert codes("SELECT name, ontology FROM concepts") == []

    def test_star_and_count_skip_field_checks(self):
        assert codes("SELECT * FROM concepts") == []
        assert codes("SELECT COUNT(*) FROM concepts") == []

    def test_unknown_where_field_with_line_and_column(self):
        findings = check_query(
            "SELECT name\nFROM concepts\nWHERE ghost = 1")
        assert findings[0].code == "unknown-where-field"
        assert (findings[0].line, findings[0].column) == (3, 7)

    def test_known_where_field_clean(self):
        assert codes("SELECT name FROM concepts WHERE is_root = true") == []

    def test_unknown_order_field(self):
        found = codes("SELECT name FROM concepts ORDER BY ghost")
        assert "unknown-order-field" in found

    def test_known_order_field_clean(self):
        assert codes("SELECT name FROM concepts ORDER BY name DESC") == []

    def test_schema_matches_every_source(self):
        for source in ("ontologies", "concepts", "attributes", "methods",
                       "relationships", "instances"):
            assert codes(f"SELECT name FROM {source}") == []


class TestTypeRules:
    def test_numeric_field_with_text_literal(self):
        found = codes(
            "SELECT name FROM concepts WHERE attribute_count = 'many'")
        assert "type-mismatch" in found

    def test_numeric_field_with_number_clean(self):
        assert codes(
            "SELECT name FROM concepts WHERE attribute_count > 2") == []

    def test_string_field_ordered_against_number(self):
        found = codes("SELECT name FROM concepts WHERE name < 5")
        assert "type-mismatch" in found

    def test_string_field_like_clean(self):
        assert codes(
            "SELECT name FROM concepts WHERE name LIKE '%prof%'") == []


class TestDegeneratePredicates:
    def test_contradictory_equalities_always_false(self):
        found = codes("SELECT name FROM concepts "
                      "WHERE name = 'A' AND name = 'B'")
        assert "always-false" in found

    def test_same_equalities_not_always_false(self):
        found = codes("SELECT name FROM concepts "
                      "WHERE name = 'A' AND name = 'A'")
        assert "always-false" not in found
        assert found == ["duplicate-comparison"]

    def test_empty_numeric_interval_always_false(self):
        found = codes("SELECT name FROM concepts "
                      "WHERE attribute_count < 1 AND attribute_count > 5")
        assert "always-false" in found

    def test_satisfiable_interval_clean(self):
        assert codes("SELECT name FROM concepts "
                     "WHERE attribute_count > 1 AND attribute_count < 5"
                     ) == []

    def test_boolean_field_with_impossible_literal(self):
        found = codes("SELECT name FROM concepts WHERE is_root = 'maybe'")
        assert "always-false" in found

    def test_boolean_field_with_true_clean(self):
        assert codes(
            "SELECT name FROM concepts WHERE is_root = false") == []

    def test_disjoint_inequalities_always_true(self):
        found = codes("SELECT name FROM concepts "
                      "WHERE name != 'A' OR name != 'B'")
        assert "always-true" in found

    def test_single_inequality_clean(self):
        assert codes("SELECT name FROM concepts WHERE name != 'A'") == []


class TestCatalogRules:
    def test_unknown_ontology(self, soqa):
        findings = check_query(
            "SELECT name FROM concepts IN ghosts", soqa=soqa)
        assert findings[0].code == "unknown-ontology"
        assert "univ" in findings[0].message

    def test_loaded_ontology_clean(self, soqa):
        assert codes("SELECT name FROM concepts IN univ", soqa=soqa) == []

    def test_no_catalog_without_soqa(self):
        assert codes("SELECT name FROM concepts IN ghosts") == []

    def test_unknown_concept_in_describe(self, soqa):
        found = codes("DESCRIBE CONCEPT Ghost IN univ", soqa=soqa)
        assert "unknown-concept" in found
        anywhere = codes("DESCRIBE CONCEPT Ghost", soqa=soqa)
        assert "unknown-concept" in anywhere

    def test_known_concept_clean(self, soqa):
        assert codes("DESCRIBE CONCEPT Professor IN univ",
                     soqa=soqa) == []
        assert codes("DESCRIBE CONCEPT Professor", soqa=soqa) == []

    def test_describe_in_unknown_ontology_reports_ontology_only(self, soqa):
        found = codes("DESCRIBE CONCEPT Professor IN ghosts", soqa=soqa)
        assert found == ["unknown-ontology"]


def raw_codes(query: str, soqa=None) -> list[str]:
    return [finding.code for finding in check_query(query, soqa=soqa)]


class TestRedundancyAndCost:
    def test_duplicate_in_and_group(self):
        findings = check_query(
            "SELECT name FROM concepts IN u "
            "WHERE is_root = true AND is_root = true")
        assert [f.code for f in findings] == ["duplicate-comparison"]
        assert "shadowed" in findings[0].message
        assert findings[0].severity == "warning"

    def test_duplicate_in_or_group(self):
        found = raw_codes("SELECT name FROM concepts IN u "
                          "WHERE name = 'A' OR name = 'A'")
        assert found == ["duplicate-comparison"]

    def test_distinct_predicates_clean(self):
        assert raw_codes("SELECT name FROM concepts IN u "
                         "WHERE name = 'A' AND is_root = true") == []

    def test_same_field_different_op_is_not_a_duplicate(self):
        assert raw_codes(
            "SELECT name FROM attributes "
            "WHERE name = 'A' OR name != 'A'") == []

    def test_full_scan_on_unindexed_filter(self, soqa):
        findings = check_query(
            "SELECT name FROM concepts WHERE is_root = true", soqa=soqa)
        assert [f.code for f in findings] == ["full-scan"]
        assert findings[0].severity == "warning"
        assert f"({soqa.concept_count()} loaded concepts)" \
            in findings[0].message
        assert "LIMIT" in (findings[0].hint or "")

    def test_full_scan_without_soqa_omits_scale(self):
        findings = check_query(
            "SELECT name FROM concepts WHERE attribute_count > 2")
        assert [f.code for f in findings] == ["full-scan"]
        assert "loaded concepts" not in findings[0].message

    def test_name_equality_uses_index(self):
        assert raw_codes(
            "SELECT name FROM concepts WHERE name = 'Professor'") == []

    def test_in_ontology_suppresses_full_scan(self):
        assert raw_codes(
            "SELECT name FROM concepts IN u WHERE is_root = true") == []

    def test_limit_suppresses_full_scan(self):
        assert raw_codes("SELECT name FROM concepts "
                         "WHERE is_root = true LIMIT 5") == []

    def test_plain_enumeration_is_not_a_scan(self):
        assert raw_codes("SELECT name FROM concepts") == []

    def test_count_is_not_flagged(self):
        assert raw_codes(
            "SELECT COUNT(*) FROM concepts WHERE is_root = true") == []

    def test_non_concepts_source_not_flagged(self):
        assert raw_codes(
            "SELECT name FROM attributes WHERE datatype = 'String'") == []


class TestSyntaxErrors:
    def test_unparseable_query_becomes_finding(self):
        findings = check_query("SELEC name FROM concepts")
        assert [finding.code for finding in findings] == ["syntax-error"]
        assert findings[0].severity == "error"
        assert findings[0].line == 1

    def test_syntax_error_can_be_disabled(self):
        config = AnalysisConfig.create(disabled=["syntax-error"])
        assert codes("SELEC name", config=config) == []

    def test_error_position_on_later_line(self):
        findings = check_query("SELECT name\nFROM concepts\nWIDTH x = 1")
        assert findings[0].code == "syntax-error"
        assert "line 3" in findings[0].message


class TestNoExecution:
    def test_checker_never_evaluates(self, soqa, monkeypatch):
        """The static checker must not touch the evaluator at all."""
        from repro.soqa.soqaql import evaluator

        def explode(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("static checker executed the query")

        monkeypatch.setattr(evaluator.SOQAQLEngine, "execute", explode)
        monkeypatch.setattr(evaluator.SOQAQLEngine, "_rows_for", explode)
        findings = soqa.check_query(
            "SELECT nam FROM concepts WHERE ghost = 3")
        assert [finding.code for finding in findings] == [
            "unknown-select-field", "unknown-where-field", "full-scan"]


#: One small ontology per bundled wrapper language.
WRAPPER_SOURCES = (
    ("OWL", MINI_OWL),
    ("DAML", DAML_TEXT),
    ("RDFS", RDFS_TEXT),
    ("PowerLoom", MINI_PLOOM),
    ("Ontolingua", ONTOLINGUA_TEXT),
    ("SHOE", SHOE_TEXT),
    ("WordNet", MINI_WORDNET),
)


class TestAcrossWrappers:
    @pytest.mark.parametrize("language,text", WRAPPER_SOURCES,
                             ids=[lang for lang, _ in WRAPPER_SOURCES])
    def test_valid_query_is_clean_for_every_wrapper(self, language, text):
        soqa = SOQA()
        soqa.load_text(text, f"mini-{language}", language)
        for source in ("concepts", "attributes", "relationships",
                       "instances"):
            query = f"SELECT name FROM {source} IN 'mini-{language}'"
            assert codes(query, soqa=soqa) == [], (language, source)

    @pytest.mark.parametrize("language,text", WRAPPER_SOURCES,
                             ids=[lang for lang, _ in WRAPPER_SOURCES])
    def test_unknown_field_flagged_for_every_wrapper(self, language, text):
        soqa = SOQA()
        soqa.load_text(text, f"mini-{language}", language)
        findings = soqa.check_query(
            f"SELECT bogus FROM concepts IN 'mini-{language}'")
        assert [finding.code for finding in findings] == \
            ["unknown-select-field"]
        assert findings[0].line == 1
        assert findings[0].column == 8
