"""Fixture: abandoning pool shutdowns outside a drain path (positive)."""
from concurrent.futures import ThreadPoolExecutor


class Runner:
    def __init__(self):
        self.pool = ThreadPoolExecutor(2)

    def stop(self):
        self.pool.shutdown(wait=False)


def halt(pool):
    pool.shutdown(wait=False, cancel_futures=True)
