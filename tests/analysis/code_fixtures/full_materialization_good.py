"""Negative fixture: indexed lookups, non-storage classes, and scans
that do not filter by name stay clean."""


class ToyOntologyStore:
    def __init__(self, concepts):
        self._concepts = {concept.name: concept for concept in concepts}

    def concepts(self):
        return list(self._concepts.values())

    def find(self, wanted):
        # Indexed lookup — no scan.
        return self._concepts.get(wanted)

    def depths(self):
        # Iterating every concept is fine when the work genuinely
        # needs all of them.
        return [concept.depth for concept in self.concepts()]

    def roots(self):
        for concept in self._concepts.values():
            if not concept.parents:
                yield concept


class ReportBuilder:
    # Not a storage class: free to scan however it likes.
    def find(self, ontology, wanted):
        for concept in ontology.concepts():
            if concept.name == wanted:
                return concept
        return None


def module_level_scan(ontology, wanted):
    # Rule only binds inside storage classes.
    return [concept for concept in ontology.concepts()
            if concept.name == wanted]
