"""Negative fixture: batch scoring, a pragma'd deliberate fallback,
single calls outside loops, and non-pair ``.run`` arities."""

from repro.core import kernel


def score_batch(runner, pairs):
    values = kernel.try_batch(runner, pairs)
    if values is None:
        values = [runner.run(first, second)  # sst: disable=prefer-batch-kernel
                  for first, second in pairs]
    return values


def score_one(runner, first, second):
    return runner.run(first, second)


def restart_services(services):
    for service in services:
        service.run(once=True)
