"""Fixture: worker returns a merge delta (negative)."""


def score_chunk(chunk):
    scored = []
    for item in chunk:
        scored.append(item * 2)
    return scored


def run(pool, chunks):
    merged = []
    for future in [pool.submit(score_chunk, chunk) for chunk in chunks]:
        merged.extend(future.result())
    return merged
