"""Fixture: owned, seeded random stream (negative)."""
import random


def jitter(seed=7):
    rng = random.Random(seed)
    return rng.random()
