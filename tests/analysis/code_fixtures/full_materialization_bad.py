"""Positive fixture: storage classes scanning every concept to find
one by name — each lookup should hit the by-name index instead."""


class ToyOntologyStore:
    def __init__(self, concepts):
        self._concepts = {concept.name: concept for concept in concepts}

    def concepts(self):
        return list(self._concepts.values())

    def find(self, wanted):
        for concept in self.concepts():
            if concept.name == wanted:
                return concept
        return None

    def find_reversed(self, wanted):
        # Comparison order must not matter.
        matches = [concept for concept in self._concepts.values()
                   if wanted == concept.name]
        return matches[0] if matches else None


class ToyWrapper:
    def resolve(self, ontology, wanted):
        return next(concept for concept in ontology.concepts()
                    if concept.name == wanted)
