"""Fixture: malformed metric names (positive)."""
from repro.core import telemetry


def record(hits, size):
    telemetry.count("hits")
    telemetry.gauge("bogus.index.size", size)
    telemetry.observe(f"widget.{hits}.latency", 1.5)
