"""Fixture: violations silenced by inline pragmas."""
import time


def stamp():
    return time.time()  # sst: disable=wallclock-call


def stamp_all():
    return time.time()  # sst: disable=all
