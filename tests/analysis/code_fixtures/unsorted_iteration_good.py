"""Fixture: ordered or order-insensitive set use (negative)."""


def label_all(names):
    return [name.upper() for name in sorted(set(names))]


def total(values):
    return sum({value * 2 for value in values})


def contains(name, names):
    return name in {n.lower() for n in names}
