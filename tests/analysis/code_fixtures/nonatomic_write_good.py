"""Fixture: atomic writes and plain reads (negative)."""
from repro.core.resilience import atomic_write_text


def dump(path, text):
    atomic_write_text(path, text)


def slurp(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def slurp_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()
