"""Fixture: unregistered fault-injection site string (positive)."""
from repro.core import resilience


def flaky_load(path):
    resilience.maybe_raise("loader.oi")
    return path
