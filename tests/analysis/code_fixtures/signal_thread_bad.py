"""Fixture: signal registration with no main-thread guard (positive)."""
import signal


def arm(callback):
    signal.signal(signal.SIGTERM, lambda _s, _f: callback())
