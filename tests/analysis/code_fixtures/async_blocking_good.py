"""Fixture: async code that never blocks the loop (negative)."""
import asyncio
import time


async def pause():
    await asyncio.sleep(0.5)


async def offload(work):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, work)


async def offload_sleep():
    loop = asyncio.get_running_loop()

    def blocking():
        # Runs on an executor thread, not in the loop's own flow.
        time.sleep(0.5)

    return await loop.run_in_executor(None, blocking)


def synchronous_wait():
    time.sleep(0.5)
