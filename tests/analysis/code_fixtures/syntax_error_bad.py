"""Fixture: a file that does not parse (module-syntax-error)."""


def broken(:
    return None
