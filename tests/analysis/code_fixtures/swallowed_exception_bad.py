"""Fixture: swallowed exceptions (positive)."""


def swallow_everything(work):
    try:
        return work()
    except:  # noqa: E722
        return None


def swallow_broad(work):
    try:
        return work()
    except Exception:
        return None


def swallow_despite_nested_raiser(work):
    try:
        return work()
    except Exception:
        def raiser():
            raise RuntimeError("defined, never called: not a re-raise")
        return raiser
