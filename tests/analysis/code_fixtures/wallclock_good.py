"""Fixture: duration measurement via monotonic clocks (negative)."""
import time


def measure(work):
    start = time.perf_counter()
    result = work()
    return result, time.perf_counter() - start


def coarse(work):
    start = time.monotonic()
    work()
    return time.monotonic() - start
