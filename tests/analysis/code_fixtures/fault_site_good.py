"""Fixture: registered fault-injection sites (negative)."""
from repro.core import resilience


def flaky_load(path):
    resilience.maybe_raise("loader.io")
    if resilience.maybe_fire("cache.corrupt") is not None:
        return None
    return path
