"""Fixture: fork-unsafe resources in process-pool initargs (positive)."""
import sqlite3
from concurrent.futures import ProcessPoolExecutor


def _init_worker(connection, handle):
    pass


def run(path):
    connection = sqlite3.connect(path)
    pool = ProcessPoolExecutor(
        initializer=_init_worker,
        initargs=(connection, open(path)))
    return pool
