"""Fixture: spans as context managers (negative)."""
from repro.core import telemetry


def trace(work):
    with telemetry.span("facade.compare"):
        return work()


def trace_bound(work):
    with telemetry.span("facade.compare") as span:
        span.note = "bound"
        return work()
