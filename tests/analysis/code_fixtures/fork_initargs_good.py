"""Fixture: initargs carry plain data; workers open handles (negative)."""
import sqlite3
from concurrent.futures import ProcessPoolExecutor

_WORKER_DB = None


def _init_worker(path):
    global _WORKER_DB
    _WORKER_DB = sqlite3.connect(path)


def run(path):
    return ProcessPoolExecutor(initializer=_init_worker,
                               initargs=(str(path),))
