"""Fixture: set iteration order reaching output (positive)."""


def label_all(names):
    lines = []
    for name in set(names):
        lines.append(name.upper())
    return lines


def render(names):
    return ", ".join({name for name in names})


def as_list():
    return list({3, 1, 2})
