"""Fixture: blocking calls inside async functions (positive)."""
import subprocess
import time
import urllib.request


async def stall_loop():
    time.sleep(0.5)


async def shell_out():
    subprocess.run(["true"], check=True)


async def fetch(url):
    return urllib.request.urlopen(url).read()
