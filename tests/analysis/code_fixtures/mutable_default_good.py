"""Fixture: None defaults, object created per call (negative)."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def label(name, suffix=""):
    return name + suffix
