"""Fixture: lock-guarded attribute mutated unguarded (positive)."""
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def clear(self):
        self._entries.clear()
