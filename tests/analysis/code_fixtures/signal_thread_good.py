"""Fixture: loop installation with a guarded fallback (negative)."""
import signal
import threading


def arm(loop, callback):
    try:
        loop.add_signal_handler(signal.SIGTERM, callback)
    except NotImplementedError:
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, lambda _s, _f: callback())
