"""Fixture: wall-clock reads in similarity code (positive)."""
import datetime
import time
from time import time as now


def stamp_result(value):
    return value, time.time()


def stamp_aliased(value):
    return value, now()


def stamp_datetime():
    return datetime.datetime.now()
