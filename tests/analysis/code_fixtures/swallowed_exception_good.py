"""Fixture: narrow or re-raising handlers (negative)."""


def tolerate_missing(path):
    try:
        return open(path, encoding="utf-8").read()
    except FileNotFoundError:
        return ""


def record_and_reraise(work, failures):
    try:
        return work()
    except Exception as error:
        failures.append(error)
        raise
