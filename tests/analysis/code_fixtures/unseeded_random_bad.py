"""Fixture: draws from the global unseeded RNG (positive)."""
import random
from random import shuffle as mix


def jitter():
    return random.random()


def scramble(items):
    mix(items)
    return items
