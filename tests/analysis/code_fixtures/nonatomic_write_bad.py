"""Fixture: direct artifact writes (positive)."""
from pathlib import Path


def dump(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def dump_path(path, text):
    Path(path).write_text(text, encoding="utf-8")


def append_log(path, line):
    with open(path, mode="a") as handle:
        handle.write(line)
