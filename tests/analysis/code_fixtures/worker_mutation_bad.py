"""Fixture: pool worker mutating shared state (positive)."""
RESULTS = []
PROGRESS = {"done": 0}


def score_chunk(chunk):
    for item in chunk:
        RESULTS.append(item * 2)
    PROGRESS["done"] += 1


def run(pool, chunks):
    for chunk in chunks:
        pool.submit(score_chunk, chunk)
