"""Positive fixture: per-pair scoring loops in a kernel-importing
module — each should be one batch call."""

from repro.core import kernel


def score_loop(runner, pairs):
    engine = kernel.resolve_engine()
    values = []
    for first, second in pairs:
        values.append(runner.run(first, second))
    return engine, values


def score_comprehension(runner, pairs):
    return [runner.run(first, second) for first, second in pairs]
