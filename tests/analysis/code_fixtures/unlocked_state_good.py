"""Fixture: consistent lock discipline (negative)."""
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def clear(self):
        with self._lock:
            self._entries.clear()
