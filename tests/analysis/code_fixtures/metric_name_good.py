"""Fixture: namespaced dotted metric names (negative)."""
from repro.core import telemetry


def record(hits, kind, size):
    telemetry.count("cache.l2.hits", hits)
    telemetry.gauge("graphindex.nodes", size)
    telemetry.observe(f"parallel.{kind}.latency", 1.5)
