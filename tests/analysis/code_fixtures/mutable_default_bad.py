"""Fixture: mutable default arguments (positive)."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, *, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def build(seed, pool=set()):
    pool.add(seed)
    return pool
