"""Fixture: span opened outside a with statement (positive)."""
from repro.core import telemetry


def trace_by_hand(work):
    span = telemetry.span("facade.compare")
    span.__enter__()
    try:
        return work()
    finally:
        span.__exit__(None, None, None)
