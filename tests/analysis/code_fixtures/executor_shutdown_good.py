"""Fixture: waiting shutdowns and the drain-aware teardown (negative)."""
from concurrent.futures import ThreadPoolExecutor


class Runner:
    def __init__(self):
        self.pool = ThreadPoolExecutor(2)
        self.active = 0

    def stop(self):
        self.pool.shutdown(wait=True)

    def _drain_aware_stop(self):
        # The drain loop already waited for in-flight work and counted
        # the survivors; abandoning the rest is the contract here.
        self.pool.shutdown(wait=False, cancel_futures=True)

    def stop_unless_wedged(self, wedged):
        # A computed wait= is a decision, not an abandonment.
        self.pool.shutdown(wait=not wedged, cancel_futures=True)


def close(pool):
    pool.shutdown()
