"""Unit tests for the mini-Lucene text engine (tokenizer, Porter, TFIDF)."""

import pytest

from repro.errors import EmptyCorpusError
from repro.simpack.text.index import InvertedIndex
from repro.simpack.text.porter import porter_stem
from repro.simpack.text.tfidf import TfidfVectorSpace
from repro.simpack.text.tokenizer import STOP_WORDS, tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_camel_case_split(self):
        assert tokenize("AssistantProfessor") == ["assistant", "professor"]

    def test_acronym_preserved(self):
        assert tokenize("OWLClass") == ["owl", "class"]

    def test_snake_and_dash_split(self):
        assert tokenize("univ-bench_owl") == ["univ", "bench", "owl"]

    def test_stop_words_dropped(self):
        assert tokenize("the professor of the university") == [
            "professor", "university"]

    def test_stop_words_kept_on_request(self):
        assert "the" in tokenize("the professor", drop_stop_words=False)

    def test_pure_numbers_dropped(self):
        assert tokenize("room 42") == ["room"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_stop_word_list_contents(self):
        assert "the" in STOP_WORDS
        assert "professor" not in STOP_WORDS


class TestPorterStemmer:
    # Expected outputs from Porter's published vocabulary.
    CASES = {
        "caresses": "caress",
        "ponies": "poni",
        "ties": "ti",
        "caress": "caress",
        "cats": "cat",
        "feed": "feed",
        "agreed": "agre",
        "plastered": "plaster",
        "bled": "bled",
        "motoring": "motor",
        "sing": "sing",
        "conflated": "conflat",
        "troubled": "troubl",
        "sized": "size",
        "hopping": "hop",
        "tanned": "tan",
        "falling": "fall",
        "hissing": "hiss",
        "fizzed": "fizz",
        "failing": "fail",
        "filing": "file",
        "happy": "happi",
        "sky": "sky",
        "relational": "relat",
        "conditional": "condit",
        "rational": "ration",
        "valenci": "valenc",
        "hesitanci": "hesit",
        "digitizer": "digit",
        "conformabli": "conform",
        "radicalli": "radic",
        "differentli": "differ",
        "vileli": "vile",
        "analogousli": "analog",
        "vietnamization": "vietnam",
        "predication": "predic",
        "operator": "oper",
        "feudalism": "feudal",
        "decisiveness": "decis",
        "hopefulness": "hope",
        "callousness": "callous",
        "formaliti": "formal",
        "sensitiviti": "sensit",
        "sensibiliti": "sensibl",
        "triplicate": "triplic",
        "formative": "form",
        "formalize": "formal",
        "electriciti": "electr",
        "electrical": "electr",
        "hopeful": "hope",
        "goodness": "good",
        "revival": "reviv",
        "allowance": "allow",
        "inference": "infer",
        "airliner": "airlin",
        "gyroscopic": "gyroscop",
        "adjustable": "adjust",
        "defensible": "defens",
        "irritant": "irrit",
        "replacement": "replac",
        "adjustment": "adjust",
        "dependent": "depend",
        "adoption": "adopt",
        "homologou": "homolog",
        "communism": "commun",
        "activate": "activ",
        "angulariti": "angular",
        "homologous": "homolog",
        "effective": "effect",
        "bowdlerize": "bowdler",
        "probate": "probat",
        "rate": "rate",
        "cease": "ceas",
        "controll": "control",
        "roll": "roll",
        "universities": "univers",
    }

    @pytest.mark.parametrize("word,stem", sorted(CASES.items()))
    def test_vocabulary(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_untouched(self):
        assert porter_stem("at") == "at"
        assert porter_stem("by") == "by"

    def test_uppercase_normalized(self):
        assert porter_stem("Universities") == "univers"


class TestInvertedIndex:
    @pytest.fixture
    def index(self) -> InvertedIndex:
        index = InvertedIndex()
        index.add_documents([
            ("prof", "The professor teaches courses and advises students"),
            ("student", "A student takes courses at the university"),
            ("bird", "The blackbird sings in the garden"),
        ])
        return index

    def test_document_count(self, index):
        assert index.document_count == 3
        assert index.document_ids() == ["prof", "student", "bird"]

    def test_contains(self, index):
        assert "prof" in index
        assert "ghost" not in index

    def test_term_frequency_uses_stems(self, index):
        # 'teaches' stems to 'teach'; 'courses' stems to 'cours'.
        assert index.term_frequency("teach", "prof") == 1
        assert index.term_frequency("cours", "prof") == 1
        assert index.term_frequency("cours", "bird") == 0

    def test_document_frequency(self, index):
        assert index.document_frequency("cours") == 2
        assert index.document_frequency("blackbird") == 1
        assert index.document_frequency("nothing") == 0

    def test_document_terms(self, index):
        terms = index.document_terms("bird")
        assert "blackbird" in terms
        assert "sing" in terms

    def test_unknown_document_raises(self, index):
        with pytest.raises(EmptyCorpusError):
            index.document_terms("ghost")

    def test_reindex_replaces(self, index):
        index.add_document("prof", "completely different words")
        assert index.term_frequency("teach", "prof") == 0
        assert index.document_count == 3

    def test_remove_document_drops_postings(self, index):
        index.remove_document("bird")
        assert index.document_count == 2
        assert index.document_frequency("blackbird") == 0

    def test_documents_containing(self, index):
        assert set(index.documents_containing("cours")) == {"prof",
                                                            "student"}


class TestTfidf:
    @pytest.fixture
    def space(self) -> TfidfVectorSpace:
        index = InvertedIndex()
        index.add_documents([
            ("prof", "The professor teaches courses and advises students"),
            ("student", "A student takes courses at the university"),
            ("bird", "The blackbird sings in the garden"),
            ("prof2", "The professor teaches courses and advises students"),
        ])
        return TfidfVectorSpace(index)

    def test_identical_documents_similarity_one(self, space):
        assert space.similarity("prof", "prof2") == pytest.approx(1.0)

    def test_self_similarity_one(self, space):
        assert space.similarity("prof", "prof") == pytest.approx(1.0)

    def test_related_above_unrelated(self, space):
        assert space.similarity("prof", "student") > space.similarity(
            "prof", "bird")

    def test_disjoint_documents_zero(self, space):
        assert space.similarity("student", "bird") == 0.0

    def test_vectors_l2_normalized(self, space):
        vector = space.vector("prof")
        norm = sum(weight * weight for weight in vector.values())
        assert norm == pytest.approx(1.0)

    def test_rank_orders_best_first(self, space):
        ranked = space.rank("prof")
        assert ranked[0][0] == "prof2"
        assert ranked[0][1] >= ranked[-1][1]

    def test_rank_with_explicit_candidates(self, space):
        ranked = space.rank("prof", candidate_ids=["bird", "student"])
        assert [doc for doc, _ in ranked] == ["student", "bird"]

    def test_rank_unknown_query_raises(self, space):
        with pytest.raises(EmptyCorpusError):
            space.rank("ghost")

    def test_invalidate_clears_cache(self, space):
        space.vector("prof")
        space.invalidate()
        assert space.vector("prof")  # recomputed without error
