"""Unit tests for the distance-based taxonomy measures (Eq. 5-6)."""

import pytest

from repro.simpack.graphdist import (
    leacock_chodorow_similarity,
    shortest_path_similarity,
    wu_palmer_similarity,
)
from repro.soqa.graph import Taxonomy


@pytest.fixture
def taxonomy() -> Taxonomy:
    """The biology-style example: sparrow closer to blackbird than whale."""
    return Taxonomy({
        "Animal": [],
        "Bird": ["Animal"],
        "Sparrow": ["Bird"],
        "Blackbird": ["Bird"],
        "Mammal": ["Animal"],
        "Whale": ["Mammal"],
        "Dolphin": ["Whale"],
    })


class TestShortestPathSimilarity:
    def test_identity_is_one(self, taxonomy):
        assert shortest_path_similarity(taxonomy, "Whale", "Whale") == 1.0

    def test_eq5_formula(self, taxonomy):
        # MAX = 3 (Animal->Mammal->Whale->Dolphin), len(Sparrow,Blackbird)=2.
        expected = (2 * 3 - 2) / (2 * 3)
        assert shortest_path_similarity(
            taxonomy, "Sparrow", "Blackbird") == pytest.approx(expected)

    def test_sparrow_closer_to_blackbird_than_whale(self, taxonomy):
        assert shortest_path_similarity(taxonomy, "Sparrow", "Blackbird") > \
            shortest_path_similarity(taxonomy, "Sparrow", "Whale")

    def test_disconnected_scores_zero(self):
        forest = Taxonomy({"A": [], "B": []})
        assert shortest_path_similarity(forest, "A", "B") == 0.0

    def test_flat_taxonomy_max_zero(self):
        flat = Taxonomy({"A": [], "B": []})
        assert shortest_path_similarity(flat, "A", "A") == 1.0
        assert shortest_path_similarity(flat, "A", "B") == 0.0

    def test_any_path_policy_accepted(self, taxonomy):
        value = shortest_path_similarity(taxonomy, "Sparrow", "Blackbird",
                                         policy="any")
        assert value == pytest.approx((6 - 2) / 6)


class TestWuPalmer:
    def test_eq6_formula(self, taxonomy):
        # MRCA(Sparrow, Blackbird) = Bird: N1=N2=1, N3=depth(Bird)=1.
        expected = 2 * 1 / (1 + 1 + 2 * 1)
        assert wu_palmer_similarity(
            taxonomy, "Sparrow", "Blackbird") == pytest.approx(expected)

    def test_root_mrca_scores_zero(self, taxonomy):
        # MRCA(Sparrow, Whale) = Animal at depth 0.
        assert wu_palmer_similarity(taxonomy, "Sparrow", "Whale") == 0.0

    def test_identity_of_root(self, taxonomy):
        assert wu_palmer_similarity(taxonomy, "Animal", "Animal") == 1.0

    def test_identity_of_deep_node(self, taxonomy):
        assert wu_palmer_similarity(taxonomy, "Dolphin",
                                    "Dolphin") == pytest.approx(1.0)

    def test_ancestor_relationship(self, taxonomy):
        # MRCA(Whale, Mammal) = Mammal: N1=1, N2=0, N3=1.
        assert wu_palmer_similarity(taxonomy, "Whale",
                                    "Mammal") == pytest.approx(2 / 3)

    def test_disconnected_scores_zero(self):
        forest = Taxonomy({"A": [], "B": []})
        assert wu_palmer_similarity(forest, "A", "B") == 0.0


class TestLeacockChodorow:
    def test_identity_is_one(self, taxonomy):
        assert leacock_chodorow_similarity(taxonomy, "Bird", "Bird") == 1.0

    def test_monotone_in_distance(self, taxonomy):
        near = leacock_chodorow_similarity(taxonomy, "Sparrow", "Blackbird")
        far = leacock_chodorow_similarity(taxonomy, "Sparrow", "Dolphin")
        assert near > far

    def test_bounded(self, taxonomy):
        for pair in [("Sparrow", "Blackbird"), ("Sparrow", "Dolphin"),
                     ("Animal", "Dolphin")]:
            value = leacock_chodorow_similarity(taxonomy, *pair)
            assert 0.0 <= value <= 1.0

    def test_disconnected_scores_zero(self):
        forest = Taxonomy({"A": [], "B": []})
        assert leacock_chodorow_similarity(forest, "A", "B") == 0.0
