"""Unit tests for the character-level string metrics."""

import pytest

from repro.errors import MeasureInputError
from repro.simpack.strings import (
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_length,
    lcs_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    needleman_wunsch_similarity,
    qgram_similarity,
    qgrams,
    smith_waterman_similarity,
    soundex,
    soundex_similarity,
)

ALL_SIMILARITIES = [
    jaro_similarity, jaro_winkler_similarity, lcs_similarity,
    levenshtein_similarity, qgram_similarity,
    needleman_wunsch_similarity, smith_waterman_similarity,
    soundex_similarity,
]


class TestLevenshtein:
    def test_classic_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_similarity_normalized(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(
            1 - 3 / 7)

    def test_empty_strings(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("", "abc") == 0.0


class TestJaro:
    def test_known_value_martha(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(
            0.944444, abs=1e-5)

    def test_known_value_dixon(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(
            0.766667, abs=1e-5)

    def test_winkler_boosts_shared_prefix(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.961111, abs=1e-5)

    def test_no_matches_is_zero(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_prefix_scale_bounds(self):
        with pytest.raises(MeasureInputError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)


class TestQGrams:
    def test_padding(self):
        assert qgrams("ab") == ["#a", "ab", "b#"]

    def test_no_padding(self):
        assert qgrams("abc", pad=False) == ["ab", "bc"]

    def test_short_string_without_padding_empty(self):
        assert qgrams("a", size=2, pad=False) == []

    def test_size_validation(self):
        with pytest.raises(MeasureInputError):
            qgrams("abc", size=0)

    def test_similarity_multiset_semantics(self):
        # 'aa' vs 'aaa' share grams respecting multiplicity.
        value = qgram_similarity("aa", "aaa")
        assert 0.0 < value < 1.0


class TestLCS:
    def test_length(self):
        assert lcs_length("ABCBDAB", "BDCABA") == 4

    def test_similarity(self):
        assert lcs_similarity("ABCBDAB", "BDCABA") == pytest.approx(4 / 7)

    def test_empty(self):
        assert lcs_length("", "abc") == 0
        assert lcs_similarity("", "") == 1.0


class TestMongeElkan:
    def test_token_best_match(self):
        value = monge_elkan_similarity("assistant professor",
                                       "professor")
        assert value > 0.4  # 'professor' token matches perfectly

    def test_empty_both_sides(self):
        assert monge_elkan_similarity("", "") == 1.0

    def test_empty_one_side(self):
        assert monge_elkan_similarity("abc", "") == 0.0

    def test_asymmetry(self):
        forward = monge_elkan_similarity("graduate student", "student")
        backward = monge_elkan_similarity("student", "graduate student")
        assert backward >= forward


class TestAlignment:
    def test_needleman_wunsch_identical(self):
        assert needleman_wunsch_similarity("GATTACA", "GATTACA") == 1.0

    def test_needleman_wunsch_partial(self):
        value = needleman_wunsch_similarity("GATTACA", "GCATGCU")
        assert 0.0 <= value < 1.0

    def test_smith_waterman_substring_scores_one(self):
        assert smith_waterman_similarity("Professor",
                                         "AssistantProfessor") == 1.0

    def test_smith_waterman_disjoint_low(self):
        assert smith_waterman_similarity("aaa", "bbb") == 0.0

    def test_empty_inputs(self):
        assert needleman_wunsch_similarity("", "") == 1.0
        assert smith_waterman_similarity("", "") == 1.0
        assert smith_waterman_similarity("a", "") == 0.0


class TestSoundex:
    def test_classic_codes(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == "A261"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"

    def test_empty_word(self):
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_similarity_equal_codes(self):
        assert soundex_similarity("Robert", "Rupert") == 1.0

    def test_similarity_different_codes_graded(self):
        value = soundex_similarity("Robert", "Smith")
        assert 0.0 <= value < 1.0


class TestCommonProperties:
    @pytest.mark.parametrize("measure", ALL_SIMILARITIES)
    def test_identity_is_one(self, measure):
        assert measure("professor", "professor") == pytest.approx(1.0)

    @pytest.mark.parametrize("measure", ALL_SIMILARITIES)
    def test_range_bounds(self, measure):
        for pair in [("abc", "abd"), ("a", "zzzz"), ("hello", "world")]:
            value = measure(*pair)
            assert 0.0 <= value <= 1.0
