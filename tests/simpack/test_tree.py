"""Unit tests for the Zhang-Shasha tree edit distance."""

import pytest

from repro.simpack.tree import (
    TreeNode,
    subtree_of,
    tree_edit_distance,
    tree_similarity,
)
from repro.soqa.graph import Taxonomy


def leaf(label: str) -> TreeNode:
    return TreeNode(label)


class TestTreeEditDistance:
    def test_identical_trees_zero(self):
        tree = TreeNode("a", [leaf("b"), leaf("c")])
        other = TreeNode("a", [leaf("b"), leaf("c")])
        assert tree_edit_distance(tree, other) == 0.0

    def test_single_relabel(self):
        assert tree_edit_distance(leaf("a"), leaf("b")) == 1.0

    def test_single_insert(self):
        tree = TreeNode("a", [leaf("b")])
        other = TreeNode("a", [leaf("b"), leaf("c")])
        assert tree_edit_distance(tree, other) == 1.0

    def test_single_delete(self):
        tree = TreeNode("a", [leaf("b"), leaf("c")])
        other = TreeNode("a", [leaf("b")])
        assert tree_edit_distance(tree, other) == 1.0

    def test_classic_zhang_shasha_example(self):
        """The f(d(a c(b)) e) vs f(c(d(a b)) e) example: distance 2."""
        first = TreeNode("f", [
            TreeNode("d", [leaf("a"), TreeNode("c", [leaf("b")])]),
            leaf("e"),
        ])
        second = TreeNode("f", [
            TreeNode("c", [TreeNode("d", [leaf("a"), leaf("b")])]),
            leaf("e"),
        ])
        assert tree_edit_distance(first, second) == 2.0

    def test_empty_vs_full_is_size(self):
        tree = TreeNode("a", [leaf("b"), TreeNode("c", [leaf("d")])])
        assert tree_edit_distance(tree, leaf("a")) == 3.0

    def test_symmetry(self):
        first = TreeNode("a", [leaf("x"), TreeNode("y", [leaf("z")])])
        second = TreeNode("a", [TreeNode("y", [leaf("q")])])
        assert tree_edit_distance(first, second) == tree_edit_distance(
            second, first)

    def test_custom_costs(self):
        # A cheap relabel is preferred...
        assert tree_edit_distance(leaf("a"), leaf("b"),
                                  relabel_cost=0.5) == 0.5
        # ...but an expensive one is replaced by delete + insert.
        assert tree_edit_distance(leaf("a"), leaf("b"),
                                  relabel_cost=5.0) == 2.0


class TestTreeSimilarity:
    def test_identical_is_one(self):
        tree = TreeNode("a", [leaf("b")])
        assert tree_similarity(tree, TreeNode("a", [leaf("b")])) == 1.0

    def test_bounded(self):
        first = TreeNode("a", [leaf("b"), leaf("c")])
        second = TreeNode("x", [leaf("y")])
        assert 0.0 <= tree_similarity(first, second) <= 1.0

    def test_size(self):
        tree = TreeNode("a", [leaf("b"), TreeNode("c", [leaf("d")])])
        assert tree.size() == 4


class TestSubtreeOf:
    @pytest.fixture
    def taxonomy(self) -> Taxonomy:
        return Taxonomy({
            "Root": [],
            "A": ["Root"],
            "B": ["Root"],
            "C": ["A", "B"],
            "D": ["C"],
        })

    def test_children_sorted(self, taxonomy):
        tree = subtree_of(taxonomy, "Root")
        assert [child.label for child in tree.children] == ["A", "B"]

    def test_dag_unfolded_under_both_parents(self, taxonomy):
        tree = subtree_of(taxonomy, "Root")
        a_children = tree.children[0].children
        b_children = tree.children[1].children
        assert [c.label for c in a_children] == ["C"]
        assert [c.label for c in b_children] == ["C"]

    def test_max_depth_bounds_unfolding(self, taxonomy):
        tree = subtree_of(taxonomy, "Root", max_depth=1)
        assert all(not child.children for child in tree.children)

    def test_leaf_subtree(self, taxonomy):
        tree = subtree_of(taxonomy, "D")
        assert tree.label == "D"
        assert tree.size() == 1
