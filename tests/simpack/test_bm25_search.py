"""Unit tests for BM25 scoring and free-text search."""

import pytest

from repro.errors import EmptyCorpusError, MeasureInputError
from repro.simpack.text.bm25 import BM25Scorer
from repro.simpack.text.index import InvertedIndex
from repro.simpack.text.tfidf import TfidfVectorSpace


@pytest.fixture
def index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_documents([
        ("prof", "A professor teaches courses at the university and "
                 "conducts research"),
        ("ta", "A teaching assistant helps teach courses"),
        ("student", "A student takes courses at the university"),
        ("bird", "A blackbird sings in the garden"),
    ])
    return index


class TestBM25Scoring:
    def test_relevant_document_scores_higher(self, index):
        scorer = BM25Scorer(index)
        assert scorer.score("teaches courses", "prof") > scorer.score(
            "teaches courses", "bird")

    def test_score_zero_without_shared_terms(self, index):
        scorer = BM25Scorer(index)
        assert scorer.score("zebra", "prof") == 0.0

    def test_search_ranks_by_score(self, index):
        scorer = BM25Scorer(index)
        ranked = scorer.search("teaching courses")
        assert ranked[0][0] == "ta"
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_search_omits_unrelated(self, index):
        scorer = BM25Scorer(index)
        ranked = scorer.search("blackbird")
        assert [doc for doc, _ in ranked] == ["bird"]

    def test_similarity_symmetric_and_bounded(self, index):
        scorer = BM25Scorer(index)
        forward = scorer.similarity("prof", "student")
        backward = scorer.similarity("student", "prof")
        assert forward == pytest.approx(backward)
        assert 0.0 < forward < 1.0

    def test_self_similarity_is_one(self, index):
        scorer = BM25Scorer(index)
        assert scorer.similarity("prof", "prof") == pytest.approx(1.0)

    def test_parameter_validation(self, index):
        with pytest.raises(MeasureInputError):
            BM25Scorer(index, k1=-1.0)
        with pytest.raises(MeasureInputError):
            BM25Scorer(index, b=2.0)

    def test_empty_corpus(self):
        scorer = BM25Scorer(InvertedIndex())
        assert scorer.search("anything") == []  # no candidates at all
        with pytest.raises(EmptyCorpusError):
            scorer.score("anything", "ghost")

    def test_invalidate_recomputes_avgdl(self, index):
        scorer = BM25Scorer(index)
        scorer.search("courses")
        index.add_document("extra", "many many many words " * 20)
        scorer.invalidate()
        assert scorer.search("courses")  # no stale statistics crash


class TestTfidfSearch:
    def test_query_finds_relevant_documents(self, index):
        space = TfidfVectorSpace(index)
        ranked = space.search("professor teaching research")
        assert ranked[0][0] == "prof"

    def test_query_scores_bounded(self, index):
        space = TfidfVectorSpace(index)
        for _, score in space.search("university courses"):
            assert 0.0 <= score <= 1.0

    def test_empty_query_returns_nothing(self, index):
        space = TfidfVectorSpace(index)
        assert space.search("") == []
        assert space.search("zzz qqq") == []

    def test_k_limits_results(self, index):
        space = TfidfVectorSpace(index)
        assert len(space.search("courses university", k=1)) == 1


class TestFacadeSearch:
    def test_search_concepts_tfidf(self, mini_sst):
        hits = mini_sst.search_concepts("person employed university", k=3)
        assert hits
        names = [hit.concept_name for hit in hits]
        assert "Employee" in names

    def test_search_concepts_bm25(self, mini_sst):
        hits = mini_sst.search_concepts("studying courses", k=3,
                                        scheme="bm25")
        assert hits
        assert any(hit.concept_name.lower().startswith("student")
                   for hit in hits)

    def test_unknown_scheme_rejected(self, mini_sst):
        from repro.errors import SSTCoreError

        with pytest.raises(SSTCoreError):
            mini_sst.search_concepts("x", scheme="magic")

    def test_browser_find_command(self, mini_sst):
        import io

        from repro.browser.shell import run_browser

        output = io.StringIO()
        run_browser(mini_sst, lines=["find senior teacher researcher"],
                    stdout=output)
        assert "Professor" in output.getvalue()

    def test_browser_find_no_hits(self, mini_sst):
        import io

        from repro.browser.shell import run_browser

        output = io.StringIO()
        run_browser(mini_sst, lines=["find zzzunknownzzz"], stdout=output)
        assert "nothing matches" in output.getvalue()

    def test_cli_search(self, capsys, tmp_path):
        from repro.cli import main
        from tests.conftest import MINI_OWL

        path = tmp_path / "univ.owl"
        path.write_text(MINI_OWL, encoding="utf-8")
        assert main(["--ontology-file", str(path), "search",
                     "teacher researcher", "-k", "3"]) == 0
        assert "Professor" in capsys.readouterr().out
