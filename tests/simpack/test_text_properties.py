"""Property-based tests for the text engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simpack.text.index import InvertedIndex
from repro.simpack.text.porter import porter_stem
from repro.simpack.text.tfidf import TfidfVectorSpace
from repro.simpack.text.tokenizer import tokenize

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=15)
texts = st.lists(words, min_size=1, max_size=12).map(" ".join)


@given(words)
@settings(max_examples=200, deadline=None)
def test_porter_output_never_longer_than_input(word):
    assert len(porter_stem(word)) <= len(word)


@given(words)
@settings(max_examples=200, deadline=None)
def test_porter_output_nonempty_and_lowercase(word):
    stem = porter_stem(word)
    assert stem
    assert stem == stem.lower()


@given(words)
@settings(max_examples=200, deadline=None)
def test_porter_deterministic(word):
    assert porter_stem(word) == porter_stem(word)


@given(st.text(max_size=60))
@settings(max_examples=150, deadline=None)
def test_tokenizer_outputs_lowercase_words(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token
        assert not token.isdigit()


@given(st.lists(texts, min_size=2, max_size=6, unique=True))
@settings(max_examples=60, deadline=None)
def test_tfidf_similarity_symmetric_and_bounded(documents):
    index = InvertedIndex()
    for number, document in enumerate(documents):
        index.add_document(f"d{number}", document)
    space = TfidfVectorSpace(index)
    for first in range(len(documents)):
        for second in range(len(documents)):
            forward = space.similarity(f"d{first}", f"d{second}")
            backward = space.similarity(f"d{second}", f"d{first}")
            assert abs(forward - backward) < 1e-9
            assert 0.0 <= forward <= 1.0


@given(st.lists(texts, min_size=2, max_size=6, unique=True))
@settings(max_examples=60, deadline=None)
def test_tfidf_query_with_own_text_ranks_self_maximal(documents):
    """Querying with a document's full text scores that document at
    least as high as any other."""
    index = InvertedIndex()
    for number, document in enumerate(documents):
        index.add_document(f"d{number}", document)
    space = TfidfVectorSpace(index)
    for number, document in enumerate(documents):
        if not index.document_terms(f"d{number}"):
            continue  # tokenizer dropped everything (stop words)
        ranked = dict(space.search(document, k=len(documents)))
        own_score = ranked.get(f"d{number}", 0.0)
        assert own_score >= max(ranked.values()) - 1e-9


@given(st.lists(texts, min_size=2, max_size=5, unique=True))
@settings(max_examples=40, deadline=None)
def test_bm25_self_similarity_maximal(documents):
    from repro.simpack.text.bm25 import BM25Scorer

    index = InvertedIndex()
    for number, document in enumerate(documents):
        index.add_document(f"d{number}", document)
    scorer = BM25Scorer(index)
    for number in range(len(documents)):
        if not index.document_terms(f"d{number}"):
            continue
        own = scorer.similarity(f"d{number}", f"d{number}")
        for other in range(len(documents)):
            assert own >= scorer.similarity(f"d{number}",
                                            f"d{other}") - 1e-9
