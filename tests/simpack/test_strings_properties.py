"""Property-based tests for string metrics and the sequence measure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simpack.sequence import (
    EditCosts,
    sequence_edit_distance,
    sequence_similarity,
    worst_case_cost,
)
from repro.simpack.strings import (
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_length,
    levenshtein_distance,
    qgram_similarity,
)

words = st.text(alphabet="abcdef", max_size=12)
sequences = st.lists(st.sampled_from(["w", "x", "y", "z"]), max_size=8)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_levenshtein_symmetry(first, second):
    assert levenshtein_distance(first, second) == levenshtein_distance(
        second, first)


@given(words, words, words)
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (levenshtein_distance(a, b)
                                          + levenshtein_distance(b, c))


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_levenshtein_identity_of_indiscernibles(first, second):
    distance = levenshtein_distance(first, second)
    assert (distance == 0) == (first == second)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_levenshtein_bounded_by_longer_length(first, second):
    assert levenshtein_distance(first, second) <= max(len(first),
                                                      len(second))


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_lcs_bounded_by_shorter_length(first, second):
    assert lcs_length(first, second) <= min(len(first), len(second))


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_jaro_symmetric_and_bounded(first, second):
    value = jaro_similarity(first, second)
    assert 0.0 <= value <= 1.0
    assert value == jaro_similarity(second, first)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_winkler_never_below_jaro(first, second):
    assert jaro_winkler_similarity(first, second) >= jaro_similarity(
        first, second) - 1e-12


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_qgram_symmetric_and_bounded(first, second):
    value = qgram_similarity(first, second)
    assert 0.0 <= value <= 1.0
    assert value == qgram_similarity(second, first)


@given(sequences, sequences)
@settings(max_examples=150, deadline=None)
def test_sequence_distance_bounded_by_worst_case(first, second):
    assert sequence_edit_distance(first, second) <= worst_case_cost(
        first, second) + 1e-12


@given(sequences, sequences)
@settings(max_examples=150, deadline=None)
def test_sequence_similarity_bounded_and_symmetric(first, second):
    value = sequence_similarity(first, second)
    assert 0.0 <= value <= 1.0
    assert value == sequence_similarity(second, first)


@given(sequences)
@settings(max_examples=100, deadline=None)
def test_sequence_similarity_identity(sequence):
    assert sequence_similarity(sequence, sequence) == 1.0


@given(sequences, sequences)
@settings(max_examples=100, deadline=None)
def test_weighted_distance_never_above_uniform_scaled(first, second):
    """With replace <= delete+insert, weighted <= uniform * max-weight."""
    weighted = sequence_edit_distance(first, second, EditCosts())
    uniform = sequence_edit_distance(first, second, EditCosts.uniform())
    assert weighted <= uniform * 1.5 + 1e-12
