"""Unit tests for the information-theoretic measures (Eq. 7-8)."""

import math

import pytest

from repro.errors import MeasureInputError
from repro.simpack.infocontent import (
    InformationContent,
    jiang_conrath_similarity,
    lin_similarity,
    resnik_similarity,
)
from repro.soqa.graph import Taxonomy


@pytest.fixture
def taxonomy() -> Taxonomy:
    return Taxonomy({
        "Thing": [],
        "Person": ["Thing"],
        "Employee": ["Person"],
        "Professor": ["Employee"],
        "Student": ["Person"],
        "Animal": ["Thing"],
        "Bird": ["Animal"],
    })


@pytest.fixture
def subclass_ic(taxonomy) -> InformationContent:
    return InformationContent(taxonomy)


class TestProbabilities:
    def test_root_probability_is_one(self, subclass_ic):
        assert subclass_ic.probability("Thing") == 1.0
        assert subclass_ic.ic("Thing") == 0.0

    def test_leaf_probability(self, subclass_ic):
        assert subclass_ic.probability("Professor") == pytest.approx(1 / 7)

    def test_inner_node_probability(self, subclass_ic):
        # Person subtree: Person, Employee, Professor, Student.
        assert subclass_ic.probability("Person") == pytest.approx(4 / 7)

    def test_ic_decreases_with_generality(self, subclass_ic):
        assert subclass_ic.ic("Professor") > subclass_ic.ic("Person")
        assert subclass_ic.ic("Person") > subclass_ic.ic("Thing")

    def test_max_ic(self, subclass_ic):
        assert subclass_ic.max_ic() == pytest.approx(math.log2(7))

    def test_invalid_source_rejected(self, taxonomy):
        with pytest.raises(MeasureInputError):
            InformationContent(taxonomy, source="magic")

    def test_instance_source_requires_counts(self, taxonomy):
        with pytest.raises(MeasureInputError):
            InformationContent(taxonomy, source="instances")


class TestInstanceEstimator:
    def test_counts_include_descendants(self, taxonomy):
        ic = InformationContent(taxonomy, source="instances",
                                instance_counts={"Professor": 3,
                                                 "Student": 5})
        # Person mass = 0 + 3 + 5 (+1 smoothing), total = 8 + 7 concepts.
        assert ic.probability("Person") == pytest.approx(9 / 15)

    def test_smoothing_avoids_zero_probability(self, taxonomy):
        ic = InformationContent(taxonomy, source="instances",
                                instance_counts={})
        assert ic.probability("Bird") > 0.0
        assert math.isfinite(ic.ic("Bird"))

    def test_more_instances_means_lower_ic(self, taxonomy):
        ic = InformationContent(taxonomy, source="instances",
                                instance_counts={"Professor": 50,
                                                 "Bird": 1})
        assert ic.ic("Professor") < ic.ic("Bird")


class TestResnik:
    def test_self_similarity_is_own_ic(self, subclass_ic):
        assert resnik_similarity(subclass_ic, "Professor",
                                 "Professor") == pytest.approx(
            subclass_ic.ic("Professor"))

    def test_siblings_share_parent_ic(self, subclass_ic):
        assert resnik_similarity(subclass_ic, "Professor",
                                 "Student") == pytest.approx(
            subclass_ic.ic("Person"))

    def test_cross_branch_root_subsumer_is_zero(self, subclass_ic):
        assert resnik_similarity(subclass_ic, "Professor", "Bird") == 0.0

    def test_no_common_subsumer_is_zero(self):
        ic = InformationContent(Taxonomy({"A": [], "B": []}))
        assert resnik_similarity(ic, "A", "B") == 0.0

    def test_normalized_bounded(self, subclass_ic):
        value = resnik_similarity(subclass_ic, "Professor", "Student",
                                  normalized=True)
        assert 0.0 <= value <= 1.0

    def test_no_negative_zero(self, subclass_ic):
        value = resnik_similarity(subclass_ic, "Professor", "Bird")
        assert str(value) == "0.0"


class TestLin:
    def test_identity_is_one(self, subclass_ic):
        assert lin_similarity(subclass_ic, "Professor", "Professor") == 1.0

    def test_eq8_formula(self, subclass_ic):
        expected = (2 * subclass_ic.ic("Person")
                    / (subclass_ic.ic("Professor")
                       + subclass_ic.ic("Student")))
        assert lin_similarity(subclass_ic, "Professor",
                              "Student") == pytest.approx(expected)

    def test_cross_branch_is_zero(self, subclass_ic):
        assert lin_similarity(subclass_ic, "Professor", "Bird") == 0.0

    def test_root_with_root_zero_denominator(self, subclass_ic):
        # Thing vs Thing: identity short-circuit wins.
        assert lin_similarity(subclass_ic, "Thing", "Thing") == 1.0

    def test_bounded(self, subclass_ic, taxonomy):
        nodes = taxonomy.nodes()
        for first in nodes:
            for second in nodes:
                assert 0.0 <= lin_similarity(subclass_ic, first,
                                             second) <= 1.0


class TestJiangConrath:
    def test_identity_is_one(self, subclass_ic):
        assert jiang_conrath_similarity(subclass_ic, "Student",
                                        "Student") == 1.0

    def test_monotone_with_relatedness(self, subclass_ic):
        sibling = jiang_conrath_similarity(subclass_ic, "Professor",
                                           "Student")
        cross = jiang_conrath_similarity(subclass_ic, "Professor", "Bird")
        assert sibling > cross

    def test_bounded(self, subclass_ic, taxonomy):
        for first in taxonomy.nodes():
            for second in taxonomy.nodes():
                value = jiang_conrath_similarity(subclass_ic, first, second)
                assert 0.0 <= value <= 1.0

    def test_disconnected_zero(self):
        ic = InformationContent(Taxonomy({"A": [], "B": []}))
        assert jiang_conrath_similarity(ic, "A", "B") == 0.0


class TestMostInformativeSubsumer:
    def test_differs_from_mrca_when_ic_says_so(self):
        # Diamond where one common ancestor is more informative: D has
        # parents B (covers B, D) and C (covers C, D, E) — B has higher IC.
        taxonomy = Taxonomy({
            "Root": [],
            "B": ["Root"],
            "C": ["Root"],
            "D": ["B", "C"],
            "E": ["C"],
        })
        ic = InformationContent(taxonomy)
        assert ic.most_informative_subsumer("D", "D") == "D"
        # Common subsumers of D and E: Root, C (and not B).
        assert ic.most_informative_subsumer("D", "E") == "C"

    def test_none_for_disconnected(self):
        ic = InformationContent(Taxonomy({"A": [], "B": []}))
        assert ic.most_informative_subsumer("A", "B") is None
