"""Unit tests for the sequence Levenshtein measure (Eq. 4)."""

import pytest

from repro.errors import MeasureInputError
from repro.simpack.sequence import (
    EditCosts,
    sequence_edit_distance,
    sequence_similarity,
    worst_case_cost,
)


class TestEditCosts:
    def test_default_satisfies_paper_constraint(self):
        costs = EditCosts()
        assert costs.delete + costs.insert >= costs.replace

    def test_uniform(self):
        costs = EditCosts.uniform()
        assert (costs.delete, costs.insert, costs.replace) == (1, 1, 1)

    def test_violating_constraint_rejected(self):
        with pytest.raises(MeasureInputError, match="c\\(delete\\)"):
            EditCosts(delete=1, insert=1, replace=3)

    def test_negative_cost_rejected(self):
        with pytest.raises(MeasureInputError):
            EditCosts(delete=-1)


class TestEditDistance:
    def test_identical_sequences_zero(self):
        assert sequence_edit_distance(["a", "b"], ["a", "b"]) == 0.0

    def test_classic_levenshtein_on_strings(self):
        assert sequence_edit_distance("kitten", "sitting",
                                      EditCosts.uniform()) == 3

    def test_insertion_only(self):
        assert sequence_edit_distance([], ["a", "b"]) == 2 * EditCosts().insert

    def test_deletion_only(self):
        assert sequence_edit_distance(["a", "b"], []) == 2 * EditCosts().delete

    def test_replace_cheaper_than_delete_insert(self):
        costs = EditCosts(delete=1, insert=1, replace=1.5)
        assert sequence_edit_distance(["a"], ["b"], costs) == 1.5

    def test_replace_avoided_when_expensive(self):
        costs = EditCosts(delete=0.4, insert=0.4, replace=0.8)
        # delete+insert (0.8) ties replace; distance is 0.8 either way.
        assert sequence_edit_distance(["a"], ["b"],
                                      costs) == pytest.approx(0.8)

    def test_custom_equality(self):
        equal = lambda a, b: a.lower() == b.lower()  # noqa: E731
        assert sequence_edit_distance(["A"], ["a"], equal=equal) == 0.0


class TestWorstCase:
    def test_equal_lengths_all_replacements(self):
        costs = EditCosts()
        assert worst_case_cost(["a", "b"], ["x", "y"],
                               costs) == 2 * costs.replace

    def test_longer_first_adds_deletions(self):
        costs = EditCosts()
        expected = 1 * costs.replace + 2 * costs.delete
        assert worst_case_cost(["a", "b", "c"], ["x"], costs) == expected

    def test_longer_second_adds_insertions(self):
        costs = EditCosts()
        expected = 1 * costs.replace + 2 * costs.insert
        assert worst_case_cost(["a"], ["x", "y", "z"], costs) == expected

    def test_worst_case_bounds_actual_distance(self):
        for first, second in [("abc", "xyz"), ("abc", ""), ("", "xy"),
                              ("abcd", "bc")]:
            assert sequence_edit_distance(first, second) <= worst_case_cost(
                first, second)


class TestSimilarity:
    def test_identical_is_one(self):
        assert sequence_similarity(["x", "y"], ["x", "y"]) == 1.0

    def test_completely_different_is_low(self):
        value = sequence_similarity(["a", "b"], ["x", "y"])
        assert 0.0 <= value < 0.5

    def test_empty_sequences_identical(self):
        assert sequence_similarity([], []) == 1.0

    def test_empty_vs_nonempty_is_zero(self):
        assert sequence_similarity([], ["a"]) == 0.0

    def test_symmetry(self):
        first, second = ["a", "b", "c"], ["a", "x"]
        assert sequence_similarity(first, second) == pytest.approx(
            sequence_similarity(second, first))

    def test_shared_prefix_raises_similarity(self):
        base = ["root", "person", "employee"]
        close = sequence_similarity(base, ["root", "person", "student"])
        far = sequence_similarity(base, ["root", "animal", "bird"])
        assert close > far
