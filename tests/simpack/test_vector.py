"""Unit tests for the vector-based measures (Eq. 1-3 + Dice)."""

import pytest

from repro.errors import MeasureInputError
from repro.simpack.base import feature_sets_to_vectors
from repro.simpack.vector import (
    cosine_similarity,
    dice_similarity,
    dot_product,
    extended_jaccard_similarity,
    l1_norm,
    l2_norm,
    overlap_similarity,
)


class TestNormsAndProducts:
    def test_dot_product(self):
        assert dot_product([1, 2, 3], [4, 5, 6]) == 32

    def test_l1_norm(self):
        assert l1_norm([1, -2, 3]) == 6

    def test_l2_norm(self):
        assert l2_norm([3, 4]) == 5.0

    def test_length_mismatch_raises(self):
        with pytest.raises(MeasureInputError):
            dot_product([1], [1, 2])


class TestPaperExample:
    """The worked example of section 2.2: Rx={type,name}, Ry={type,age}."""

    def setup_method(self):
        self.x, self.y = feature_sets_to_vectors({"type", "name"},
                                                 {"type", "age"})

    def test_mapping_m1(self):
        # Dimensions sorted: age, name, type.
        assert self.x == [0, 1, 1]
        assert self.y == [1, 0, 1]

    def test_cosine(self):
        assert cosine_similarity(self.x, self.y) == pytest.approx(0.5)

    def test_extended_jaccard(self):
        assert extended_jaccard_similarity(self.x, self.y) == pytest.approx(
            1 / 3)

    def test_overlap(self):
        assert overlap_similarity(self.x, self.y) == pytest.approx(0.5)

    def test_dice(self):
        assert dice_similarity(self.x, self.y) == pytest.approx(0.5)


class TestEdgeCases:
    @pytest.mark.parametrize("measure", [
        cosine_similarity, extended_jaccard_similarity,
        overlap_similarity, dice_similarity])
    def test_zero_vectors_score_zero(self, measure):
        assert measure([0, 0], [0, 0]) == 0.0

    @pytest.mark.parametrize("measure", [
        cosine_similarity, extended_jaccard_similarity,
        overlap_similarity, dice_similarity])
    def test_identical_binary_vectors_score_one(self, measure):
        assert measure([1, 0, 1], [1, 0, 1]) == pytest.approx(1.0)

    @pytest.mark.parametrize("measure", [
        cosine_similarity, extended_jaccard_similarity,
        overlap_similarity, dice_similarity])
    def test_disjoint_vectors_score_zero(self, measure):
        assert measure([1, 0], [0, 1]) == 0.0

    def test_overlap_of_subset_is_one(self):
        # {a} fully contained in {a, b}.
        x, y = feature_sets_to_vectors({"a"}, {"a", "b"})
        assert overlap_similarity(x, y) == pytest.approx(1.0)

    def test_jaccard_equals_set_ratio_for_binary(self):
        x, y = feature_sets_to_vectors({"a", "b", "c"}, {"b", "c", "d"})
        assert extended_jaccard_similarity(x, y) == pytest.approx(2 / 4)

    def test_cosine_real_valued(self):
        assert cosine_similarity([1.0, 1.0], [2.0, 2.0]) == pytest.approx(
            1.0)

    def test_empty_feature_sets_map_to_empty_vectors(self):
        x, y = feature_sets_to_vectors(set(), set())
        assert x == [] and y == []
        assert cosine_similarity(x, y) == 0.0
