"""Unit tests for the heatmap visualization."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.errors import VisualizationError
from repro.viz.charts import HeatmapChart
from repro.viz.heatmap import render_heatmap_ascii, render_heatmap_svg

LABELS = ["a:X", "a:Y", "b:Z"]
MATRIX = [[1.0, 0.5, 0.1],
          [0.5, 1.0, 0.2],
          [0.1, 0.2, 1.0]]


class TestSVGHeatmap:
    def test_valid_xml(self):
        svg = render_heatmap_svg("demo", LABELS, MATRIX)
        root = ElementTree.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_cell_per_matrix_entry(self):
        svg = render_heatmap_svg("demo", LABELS, MATRIX)
        root = ElementTree.fromstring(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 1 + 9  # background + 3x3 cells

    def test_values_annotated(self):
        svg = render_heatmap_svg("demo", LABELS, MATRIX)
        assert "0.50" in svg
        assert "1.00" in svg

    def test_labels_escaped(self):
        svg = render_heatmap_svg("a < b", ["x & y"], [[1.0]])
        assert "&lt;" in svg
        assert "&amp;" in svg

    def test_empty_rejected(self):
        with pytest.raises(VisualizationError):
            render_heatmap_svg("demo", [], [])

    def test_non_square_rejected(self):
        with pytest.raises(VisualizationError):
            render_heatmap_svg("demo", LABELS, [[1.0, 0.5]])


class TestASCIIHeatmap:
    def test_shades_reflect_values(self):
        text = render_heatmap_ascii("demo", LABELS, MATRIX)
        assert "███" in text  # the 1.0 diagonal
        assert "legend:" in text

    def test_column_key_printed(self):
        text = render_heatmap_ascii("demo", LABELS, MATRIX)
        assert "0=a:X" in text

    def test_out_of_range_values_clamped(self):
        text = render_heatmap_ascii("demo", ["a"], [[7.5]])
        assert "███" in text


class TestHeatmapChart:
    def test_save_writes_svg_and_text(self, tmp_path):
        chart = HeatmapChart("demo", LABELS, MATRIX)
        paths = chart.save(tmp_path, stem="matrix")
        assert sorted(path.name for path in paths) == ["matrix.svg",
                                                       "matrix.txt"]
        assert all(path.exists() for path in paths)

    def test_facade_matrix_plot(self, mini_sst):
        from repro.core.registry import Measure

        chart = mini_sst.get_matrix_plot(
            [("univ", "Professor"), ("univ", "Student"),
             ("MINI", "EMPLOYEE")], Measure.SHORTEST_PATH)
        assert isinstance(chart, HeatmapChart)
        assert chart.matrix[0][0] == 1.0
        assert chart.labels[0] == "univ:Professor"

    def test_facade_matrix_plot_normalizes_resnik(self, mini_sst):
        from repro.core.registry import Measure

        chart = mini_sst.get_matrix_plot(
            [("univ", "Professor"), ("univ", "Student")], Measure.RESNIK)
        assert "normalized" in chart.title
        assert all(0.0 <= value <= 1.0
                   for row in chart.matrix for value in row)
