"""Unit tests for the visualization backend."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.errors import VisualizationError
from repro.viz.ascii import render_bar_chart_ascii, render_table
from repro.viz.charts import BarChart, GroupedBarChart
from repro.viz.gnuplot import gnuplot_bar_chart
from repro.viz.svg import render_bar_chart_svg, render_grouped_bar_chart_svg

LABELS = ["univ:Professor", "univ:Student", "MINI:EMPLOYEE"]
VALUES = [1.0, 0.5, 0.25]


class TestGnuplot:
    def test_script_references_data_and_output(self):
        artifacts = gnuplot_bar_chart("demo", LABELS, VALUES,
                                      output_name="out.png")
        assert 'set output "out.png"' in artifacts.script
        assert '"chart.dat"' in artifacts.script
        assert "histogram" in artifacts.script

    def test_data_file_one_row_per_value(self):
        artifacts = gnuplot_bar_chart("demo", LABELS, VALUES)
        lines = artifacts.data.strip().splitlines()
        assert len(lines) == 3
        assert lines[0] == '"univ:Professor" 1.000000'

    def test_quote_escaping(self):
        artifacts = gnuplot_bar_chart('say "hi"', ['l"l'], [1.0])
        assert '"' not in artifacts.script.split("set title ")[1].split(
            "\n")[0].strip('"')[4:]  # no raw double quotes inside title

    def test_write_creates_files(self, tmp_path):
        artifacts = gnuplot_bar_chart("demo", LABELS, VALUES)
        script_path, data_path = artifacts.write(tmp_path)
        assert script_path.read_text(encoding="utf-8") == artifacts.script
        assert data_path.read_text(encoding="utf-8") == artifacts.data

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(VisualizationError):
            gnuplot_bar_chart("demo", ["a"], [1.0, 2.0])

    def test_empty_series_rejected(self):
        with pytest.raises(VisualizationError):
            gnuplot_bar_chart("demo", [], [])


class TestSVG:
    def test_valid_xml(self):
        svg = render_bar_chart_svg("demo", LABELS, VALUES)
        root = ElementTree.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_bar(self):
        svg = render_bar_chart_svg("demo", LABELS, VALUES)
        root = ElementTree.fromstring(svg)
        rects = root.findall(
            ".//{http://www.w3.org/2000/svg}rect")
        # background + 3 bars
        assert len(rects) == 4

    def test_labels_escaped(self):
        svg = render_bar_chart_svg("a < b", ["x & y"], [1.0])
        assert "&lt;" in svg
        assert "&amp;" in svg

    def test_empty_series_rejected(self):
        with pytest.raises(VisualizationError):
            render_bar_chart_svg("demo", [], [])

    def test_grouped_chart_series_validation(self):
        with pytest.raises(VisualizationError):
            render_grouped_bar_chart_svg("demo", ["g1", "g2"],
                                         {"s": [1.0]})

    def test_grouped_chart_legend(self):
        svg = render_grouped_bar_chart_svg(
            "demo", ["g1", "g2"], {"Lin": [0.1, 0.2], "TFIDF": [0.3, 0.4]})
        assert "Lin" in svg
        assert "TFIDF" in svg


class TestASCII:
    def test_bars_scaled_to_max(self):
        text = render_bar_chart_ascii("demo", ["a", "b"], [1.0, 0.5],
                                      width=10)
        lines = text.splitlines()
        assert lines[2].count("█") == 10
        assert lines[3].count("█") == 5

    def test_zero_value_gets_sliver(self):
        text = render_bar_chart_ascii("demo", ["a", "b"], [1.0, 0.0])
        assert "▏" in text

    def test_values_printed(self):
        text = render_bar_chart_ascii("demo", ["a"], [0.1234])
        assert "0.1234" in text

    def test_table_alignment(self):
        text = render_table(["col", "value"], [["x", "1"], ["long", "22"]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1  # pipes aligned

    def test_table_row_width_validation(self):
        with pytest.raises(VisualizationError):
            render_table(["a", "b"], [["only-one"]])


class TestChartObjects:
    def test_bar_chart_all_renderings(self):
        chart = BarChart("demo", LABELS, VALUES)
        assert "<svg" in chart.to_svg()
        assert "demo" in chart.to_ascii()
        assert "histogram" in chart.to_gnuplot().script

    def test_bar_chart_save_writes_three_files(self, tmp_path):
        chart = BarChart("demo", LABELS, VALUES)
        paths = chart.save(tmp_path, stem="fig5")
        assert sorted(path.name for path in paths) == [
            "fig5.dat", "fig5.gp", "fig5.svg"]
        assert all(path.exists() for path in paths)

    def test_grouped_chart_save(self, tmp_path):
        chart = GroupedBarChart("demo", ["g"],
                                {"Lin": [0.5], "TFIDF": [0.7]})
        paths = chart.save(tmp_path, stem="cmp")
        assert (tmp_path / "cmp.svg").exists()
        assert (tmp_path / "cmp-0.gp").exists()
        assert (tmp_path / "cmp-1.dat").exists()
        assert len(paths) == 5

    def test_grouped_chart_ascii_sections(self):
        chart = GroupedBarChart("demo", ["g"],
                                {"Lin": [0.5], "TFIDF": [0.7]})
        text = chart.to_ascii()
        assert "demo — Lin" in text
        assert "demo — TFIDF" in text
