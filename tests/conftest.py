"""Shared fixtures: mini ontologies and the session-wide paper corpus."""

from __future__ import annotations

import pytest

from repro.core.facade import SOQASimPackToolkit
from repro.ontologies.library import load_corpus
from repro.soqa.api import SOQA

MINI_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/univ">
  <owl:Ontology rdf:about="">
    <rdfs:comment>Tiny university ontology</rdfs:comment>
    <owl:versionInfo>0.1</owl:versionInfo>
  </owl:Ontology>
  <owl:Class rdf:ID="Person">
    <rdfs:comment>A human being at the university</rdfs:comment>
  </owl:Class>
  <owl:Class rdf:ID="Employee">
    <rdfs:comment>A person employed by the university</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:Class rdf:ID="Professor">
    <rdfs:comment>A senior teacher and researcher</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Employee"/>
  </owl:Class>
  <owl:Class rdf:ID="Student">
    <rdfs:comment>A person studying courses</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:Class rdf:ID="Course">
    <rdfs:comment>A course of lectures</rdfs:comment>
  </owl:Class>
  <owl:DatatypeProperty rdf:ID="name">
    <rdfs:comment>the person's name</rdfs:comment>
    <rdfs:domain rdf:resource="#Person"/>
  </owl:DatatypeProperty>
  <owl:ObjectProperty rdf:ID="advises">
    <rdfs:domain rdf:resource="#Professor"/>
    <rdfs:range rdf:resource="#Student"/>
  </owl:ObjectProperty>
  <owl:ObjectProperty rdf:ID="takes">
    <rdfs:domain rdf:resource="#Student"/>
    <rdfs:range rdf:resource="#Course"/>
  </owl:ObjectProperty>
  <Professor rdf:ID="smith">
    <name>Prof. Smith</name>
    <advises rdf:resource="#jane"/>
  </Professor>
  <Student rdf:ID="jane">
    <name>Jane</name>
    <takes rdf:resource="#db1"/>
  </Student>
  <Course rdf:ID="db1"/>
</rdf:RDF>
"""

MINI_ORNITHOLOGY_OWL = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/birds">
  <owl:Class rdf:ID="Blackbird">
    <rdfs:comment>A common black thrush</rdfs:comment>
  </owl:Class>
  <owl:Class rdf:ID="Sparrow">
    <rdfs:comment>A small dull-colored singing bird</rdfs:comment>
  </owl:Class>
</rdf:RDF>
"""

MINI_PLOOM = """
(defmodule "MINI" :documentation "Mini course module" :version "1.0")
(in-module "MINI")
(defconcept PERSON :documentation "A person")
(defconcept EMPLOYEE (?e PERSON) :documentation "An employed person")
(defconcept STUDENT (?s PERSON))
(defconcept COURSE)
(defrelation teaches ((?e EMPLOYEE) (?c COURSE)) :documentation "teaches")
(defrelation salary ((?e EMPLOYEE) (?n NUMBER)))
(deffunction full-name ((?p PERSON)) :-> (?n STRING))
(assert (EMPLOYEE bob))
(assert (salary bob 50000))
(assert (teaches bob algebra))
"""

MINI_WORDNET = """00001740 03 n 01 entity 0 000 | that which exists
00002137 03 n 02 being 0 organism 0 001 @ 00001740 n 0000 | a living thing
00004475 03 n 01 person 0 002 @ 00002137 n 0000 ! 00004480 n 0101 | a human being
00004480 03 n 01 nonperson 0 001 @ 00002137 n 0000 | not a person
00007846 03 n 01 researcher 0 001 @ 00004475 n 0000 | one who researches
"""


@pytest.fixture(scope="session")
def _session_cache_dir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("sst-disk-cache"))


@pytest.fixture(autouse=True)
def _isolated_disk_cache(_session_cache_dir, monkeypatch):
    """Point SST_CACHE_DIR at a session temp dir.

    Keeps the suite from ever touching ``~/.cache/sst`` while still
    exercising the persistent tier on every facade-built runner.
    """
    monkeypatch.setenv("SST_CACHE_DIR", _session_cache_dir)


@pytest.fixture
def mini_soqa() -> SOQA:
    """A SOQA facade with one small ontology per supported language."""
    soqa = SOQA()
    soqa.load_text(MINI_OWL, "univ", "OWL")
    soqa.load_text(MINI_PLOOM, "MINI", "PowerLoom")
    soqa.load_text(MINI_WORDNET, "wn", "WordNet")
    return soqa


@pytest.fixture
def mini_sst(mini_soqa) -> SOQASimPackToolkit:
    """An SST facade over the mini multi-language corpus."""
    return SOQASimPackToolkit(mini_soqa)


@pytest.fixture(scope="session")
def corpus_soqa() -> SOQA:
    """The paper's five-ontology corpus (943 concepts); loaded once."""
    return load_corpus()


@pytest.fixture(scope="session")
def corpus_sst(corpus_soqa) -> SOQASimPackToolkit:
    """An SST facade over the paper corpus; shared across the session.

    Tests must not mutate it (no ontology loading, no runner
    registration) — use ``mini_sst`` for that.
    """
    return SOQASimPackToolkit(corpus_soqa)
