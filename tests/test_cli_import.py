"""Tests for ``sst import`` and the store-backed CLI path."""

import pytest

from repro.cli import main
from repro.ontologies.generator import generate_wordnet_data
from tests.conftest import MINI_OWL, MINI_WORDNET


@pytest.fixture
def owl_file(tmp_path) -> str:
    path = tmp_path / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


@pytest.fixture
def wordnet_file(tmp_path) -> str:
    path = tmp_path / "mini.wn"
    path.write_text(MINI_WORDNET, encoding="utf-8")
    return str(path)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch) -> str:
    directory = tmp_path / "import-cache"
    monkeypatch.setenv("SST_CACHE_DIR", str(directory))
    return str(directory)


class TestImportCommand:
    def test_single_source(self, capsys, tmp_path, owl_file):
        output = tmp_path / "corpus.sstdb"
        assert main(["import", owl_file, "-o", str(output)]) == 0
        out = capsys.readouterr().out
        assert "imported univ (5 concepts, OWL)" in out
        assert "1 ontologies, 5 concepts" in out
        assert output.exists()

    def test_multiple_sources(self, capsys, tmp_path, owl_file,
                              wordnet_file):
        output = tmp_path / "corpus.sstdb"
        assert main(["import", owl_file, wordnet_file,
                     "-o", str(output)]) == 0
        out = capsys.readouterr().out
        assert "imported univ" in out
        assert "imported mini" in out
        assert "2 ontologies, 10 concepts" in out

    def test_refuses_to_clobber_without_overwrite(self, capsys, tmp_path,
                                                  owl_file):
        output = tmp_path / "corpus.sstdb"
        assert main(["import", owl_file, "-o", str(output)]) == 0
        capsys.readouterr()
        assert main(["import", owl_file, "-o", str(output)]) != 0
        assert main(["import", owl_file, "-o", str(output),
                     "--overwrite"]) == 0

    def test_generated_wordnet_corpus_imports(self, capsys, tmp_path):
        source = tmp_path / "synth.wn"
        source.write_text(generate_wordnet_data(300, seed=1),
                          encoding="utf-8")
        output = tmp_path / "synth.sstdb"
        assert main(["import", str(source), "-o", str(output)]) == 0
        assert "300 concepts" in capsys.readouterr().out


class TestStoreBackedQueries:
    @pytest.fixture
    def store_file(self, capsys, tmp_path, owl_file) -> str:
        output = tmp_path / "corpus.sstdb"
        assert main(["import", owl_file, "-o", str(output)]) == 0
        capsys.readouterr()
        return str(output)

    def test_sim_answers_from_the_store(self, capsys, store_file,
                                        owl_file, cache_dir):
        argv = ["--ontology-file", store_file, "sim",
                "univ", "Person", "univ", "Student"]
        assert main(argv) == 0
        from_store = capsys.readouterr().out
        assert main(["--ontology-file", owl_file, "sim",
                     "univ", "Person", "univ", "Student"]) == 0
        from_memory = capsys.readouterr().out
        assert from_store == from_memory  # bit-identical scores

    def test_stats_reports_sqlite_backend(self, capsys, store_file,
                                          cache_dir):
        assert main(["--ontology-file", store_file, "stats"]) == 0
        assert "store backend: 1 sqlite" in capsys.readouterr().out


class TestIndexProvenanceReport:
    def test_second_run_loads_the_artifact(self, capsys, owl_file,
                                           cache_dir, monkeypatch):
        monkeypatch.setenv("SST_INDEX_PERSIST", "0")
        argv = ["--ontology-file", owl_file, "--index-threshold", "0",
                "stats"]
        assert main(argv) == 0
        assert "graph index compiled fresh" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "graph index loaded from persisted artifact" in out


class TestCacheMaintenanceCommands:
    def test_compact(self, capsys, cache_dir):
        assert main(["cache", "compact"]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_prune_requires_budget(self, capsys, cache_dir):
        assert main(["cache", "prune"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_with_budget(self, capsys, cache_dir):
        assert main(["cache", "prune", "--max-bytes", "1000000"]) == 0
        assert "pruned" in capsys.readouterr().out

    def test_stats_shows_per_shard_table(self, capsys, cache_dir):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "similarity-cache.sqlite" in out  # shard 0 legacy name
