"""Unit and property tests for agglomerative concept clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.agglomerative import (
    ClusterNode,
    ConceptClusterer,
    agglomerate,
    cut_clusters,
    render_dendrogram,
)
from repro.core.registry import Measure
from repro.errors import SSTCoreError

#: Two tight pairs (0,1) and (2,3), far apart from each other.
BLOCK_MATRIX = [
    [1.0, 0.9, 0.1, 0.1],
    [0.9, 1.0, 0.1, 0.1],
    [0.1, 0.1, 1.0, 0.8],
    [0.1, 0.1, 0.8, 1.0],
]


class TestAgglomerate:
    def test_single_item_is_leaf(self):
        root = agglomerate([[1.0]])
        assert root.is_leaf
        assert root.leaves() == [0]

    def test_block_structure_recovered(self):
        root = agglomerate(BLOCK_MATRIX)
        assert sorted(root.leaves()) == [0, 1, 2, 3]
        first, second = root.children
        assert {tuple(sorted(first.leaves())),
                tuple(sorted(second.leaves()))} == {(0, 1), (2, 3)}

    def test_merge_similarities_monotone_decreasing(self):
        root = agglomerate(BLOCK_MATRIX)

        def check(node: ClusterNode) -> None:
            for child in node.children:
                if not child.is_leaf:
                    assert child.similarity >= node.similarity
                    check(child)
        check(root)

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_all_linkages_cover_all_items(self, linkage):
        root = agglomerate(BLOCK_MATRIX, linkage=linkage)
        assert sorted(root.leaves()) == [0, 1, 2, 3]

    def test_single_vs_complete_on_chain(self):
        # A chain 0-1-2 where 0 and 2 are dissimilar: single linkage
        # merges the chain at 0.8; complete linkage rates the final
        # merge by the far pair (0.1).
        chain = [
            [1.0, 0.8, 0.1],
            [0.8, 1.0, 0.8],
            [0.1, 0.8, 1.0],
        ]
        single_root = agglomerate(chain, linkage="single")
        complete_root = agglomerate(chain, linkage="complete")
        assert single_root.similarity == pytest.approx(0.8)
        assert complete_root.similarity == pytest.approx(0.1)

    def test_unknown_linkage_rejected(self):
        with pytest.raises(SSTCoreError):
            agglomerate(BLOCK_MATRIX, linkage="median")

    def test_empty_rejected(self):
        with pytest.raises(SSTCoreError):
            agglomerate([])

    def test_non_square_rejected(self):
        with pytest.raises(SSTCoreError):
            agglomerate([[1.0, 0.5]])


class TestCutClusters:
    def test_high_threshold_gives_singletons(self):
        root = agglomerate(BLOCK_MATRIX)
        groups = cut_clusters(root, threshold=0.95)
        assert sorted(map(tuple, map(sorted, groups))) == [
            (0,), (1,), (2,), (3,)]

    def test_mid_threshold_gives_blocks(self):
        root = agglomerate(BLOCK_MATRIX)
        groups = cut_clusters(root, threshold=0.5)
        assert sorted(map(tuple, map(sorted, groups))) == [(0, 1), (2, 3)]

    def test_zero_threshold_gives_one_cluster(self):
        root = agglomerate(BLOCK_MATRIX)
        groups = cut_clusters(root, threshold=0.0)
        assert len(groups) == 1
        assert sorted(groups[0]) == [0, 1, 2, 3]


class TestDendrogramRendering:
    def test_labels_and_merges_shown(self):
        root = agglomerate(BLOCK_MATRIX)
        text = render_dendrogram(root, ["w", "x", "y", "z"])
        assert "merge @" in text
        for label in ("w", "x", "y", "z"):
            assert f"- {label}" in text


class TestConceptClusterer:
    def test_clusters_separate_domains(self, mini_sst):
        concepts = [("univ", "Professor"), ("univ", "Employee"),
                    ("univ", "Person"), ("MINI", "COURSE"),
                    ("univ", "Course")]
        clusterer = ConceptClusterer(mini_sst, Measure.SHORTEST_PATH)
        groups = clusterer.cluster(concepts, threshold=0.4)
        person_group = next(group for group in groups
                            if ("univ", "Professor") in group)
        assert ("univ", "Employee") in person_group
        assert ("MINI", "COURSE") not in person_group

    def test_empty_input(self, mini_sst):
        clusterer = ConceptClusterer(mini_sst, Measure.SHORTEST_PATH)
        assert clusterer.cluster([]) == []

    def test_dendrogram_text(self, mini_sst):
        clusterer = ConceptClusterer(mini_sst, Measure.SHORTEST_PATH)
        text = clusterer.dendrogram([("univ", "Professor"),
                                     ("univ", "Student")])
        assert "univ:Professor" in text
        assert "merge @" in text


@st.composite
def random_similarity_matrices(draw):
    size = draw(st.integers(1, 8))
    values = {}
    for first in range(size):
        for second in range(first + 1, size):
            values[(first, second)] = draw(
                st.floats(min_value=0.0, max_value=1.0))
    return [[1.0 if first == second
             else values[tuple(sorted((first, second)))]
             for second in range(size)] for first in range(size)]


@given(random_similarity_matrices(),
       st.sampled_from(["single", "complete", "average"]))
@settings(max_examples=60, deadline=None)
def test_dendrogram_is_a_permutation_partition(matrix, linkage):
    root = agglomerate(matrix, linkage=linkage)
    assert sorted(root.leaves()) == list(range(len(matrix)))


@given(random_similarity_matrices(),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_cut_is_a_partition_at_any_threshold(matrix, threshold):
    root = agglomerate(matrix)
    groups = cut_clusters(root, threshold)
    flattened = sorted(index for group in groups for index in group)
    assert flattened == list(range(len(matrix)))


@given(random_similarity_matrices())
@settings(max_examples=40, deadline=None)
def test_threshold_monotonicity(matrix):
    """Raising the threshold never produces fewer clusters."""
    root = agglomerate(matrix)
    low = len(cut_clusters(root, 0.2))
    high = len(cut_clusters(root, 0.8))
    assert high >= low
