"""Tests for the bundled five-ontology corpus and the generators."""

import pytest

from repro.errors import SSTError
from repro.ontologies.generator import (
    generate_sumo_owl,
    generate_synthetic_taxonomy,
    sumo_class_list,
)
from repro.ontologies.library import (
    CORPUS_NAMES,
    PAPER_CONCEPT_COUNT,
    load_course_ontology,
    load_daml_university,
    load_sumo,
    load_swrc,
    load_univ_bench,
    load_wordnet,
)
from repro.soqa.graph import Taxonomy


class TestCorpusScale:
    """Experiment X1: the paper's '943 concepts' claim."""

    def test_total_is_943(self, corpus_soqa):
        assert corpus_soqa.concept_count() == PAPER_CONCEPT_COUNT == 943

    def test_all_five_ontologies_loaded(self, corpus_soqa):
        assert tuple(corpus_soqa.ontology_names()) == CORPUS_NAMES

    def test_languages(self, corpus_soqa):
        languages = {corpus_soqa.ontology(name).language
                     for name in corpus_soqa.ontology_names()}
        assert languages == {"OWL", "PowerLoom", "DAML"}

    def test_univ_bench_has_43_classes(self, corpus_soqa):
        assert len(corpus_soqa.ontology("univ-bench_owl")) == 43

    def test_swrc_has_54_classes(self, corpus_soqa):
        assert len(corpus_soqa.ontology("swrc_owl")) == 54


class TestTable1Concepts:
    """Every concept Table 1 and Figures 5/6 mention must exist."""

    @pytest.mark.parametrize("ontology,concept", [
        ("base1_0_daml", "Professor"),
        ("univ-bench_owl", "AssistantProfessor"),
        ("COURSES", "EMPLOYEE"),
        ("SUMO_owl_txt", "Human"),
        ("SUMO_owl_txt", "Mammal"),
        ("univ-bench_owl", "Person"),
    ])
    def test_concept_present(self, corpus_soqa, ontology, concept):
        assert concept in corpus_soqa.ontology(ontology)

    def test_human_under_mammal_chain(self, corpus_soqa):
        taxonomy = corpus_soqa.taxonomy("SUMO_owl_txt")
        ancestors = taxonomy.ancestors_with_distance("Human")
        assert "Mammal" in ancestors
        assert "Entity" in ancestors

    def test_human_also_cognitive_agent(self, corpus_soqa):
        """Real SUMO subsumes Human under CognitiveAgent too; this is
        what ranks SUMO:Human above SUMO:Mammal in Table 1."""
        concept = corpus_soqa.concept("Human", "SUMO_owl_txt")
        assert set(concept.superconcept_names) == {"Hominid",
                                                   "CognitiveAgent"}

    def test_professor_chain_in_daml(self, corpus_soqa):
        taxonomy = corpus_soqa.taxonomy("base1_0_daml")
        assert taxonomy.depth("Professor") == 3  # Person>Employee>Faculty


class TestIndividualLoaders:
    def test_univ_bench(self):
        ontology = load_univ_bench()
        assert ontology.language == "OWL"
        assert "GraduateStudent" in ontology
        assert len(ontology.all_instances()) > 0

    def test_course_ontology(self):
        ontology = load_course_ontology()
        assert ontology.language == "PowerLoom"
        assert "PHD-STUDENT" in ontology
        methods = ontology.concept("PERSON").methods
        assert [m.name for m in methods] == ["full-name"]

    def test_daml_university(self):
        ontology = load_daml_university()
        assert ontology.language == "DAML"
        assert ontology.concept("Professor").superconcept_names == [
            "Faculty"]

    def test_swrc(self):
        ontology = load_swrc()
        assert "PhDThesis" in ontology
        assert ontology.concept("TechnicalReport").superconcept_names == [
            "Report"]

    def test_sumo_default_size(self):
        ontology = load_sumo()
        assert len(ontology) == 943 - 43 - 22 - 35 - 54

    def test_sumo_custom_size(self):
        ontology = load_sumo(concept_count=150)
        assert len(ontology) == 150

    def test_wordnet(self):
        ontology = load_wordnet()
        assert ontology.language == "WordNet"
        assert "researcher" in ontology
        assert "student" in ontology


class TestSumoGenerator:
    def test_exact_count(self):
        for count in (120, 300, 789):
            assert len(sumo_class_list(count)) == count

    def test_no_duplicate_names(self):
        names = [name for name, _, _ in sumo_class_list(789)]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        assert generate_sumo_owl(300) == generate_sumo_owl(300)

    def test_prefix_stability(self):
        small = [name for name, _, _ in sumo_class_list(200)]
        large = [name for name, _, _ in sumo_class_list(400)]
        assert large[:200] == small

    def test_all_parents_defined_before_use(self):
        classes = sumo_class_list(789)
        defined = set()
        for name, parent, _ in classes:
            parents = ((parent,) if isinstance(parent, str)
                       else parent or ())
            for parent_name in parents:
                assert parent_name in defined or any(
                    parent_name == other for other, _, _ in classes)
            defined.add(name)

    def test_too_small_count_rejected(self):
        with pytest.raises(SSTError):
            sumo_class_list(10)

    def test_overflow_generates_variants(self):
        classes = sumo_class_list(2000)
        assert len(classes) == 2000
        assert any("Variant" in name for name, _, _ in classes)

    def test_glosses_present(self):
        assert all(gloss for _, _, gloss in sumo_class_list(200))


class TestSyntheticTaxonomy:
    def test_size_and_single_root(self):
        parents = generate_synthetic_taxonomy(50)
        taxonomy = Taxonomy(parents)
        assert len(taxonomy) == 50
        assert taxonomy.roots() == ["Node0"]

    def test_branching_respected(self):
        taxonomy = Taxonomy(generate_synthetic_taxonomy(20, branching=2))
        assert all(len(taxonomy.children(node)) <= 2
                   for node in taxonomy.nodes())

    def test_invalid_size_rejected(self):
        with pytest.raises(SSTError):
            generate_synthetic_taxonomy(0)
