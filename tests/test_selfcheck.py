"""Self-check: the bundled ontology corpus must lint clean.

Every ontology shipped with the toolkit — the paper's five-ontology
corpus plus the WordNet noun fragment — is run through the full
ontology linter. Warnings are tolerated (real-world ontologies are
imperfect), but error-severity findings in our own corpus would mean
either broken bundled data or a lint rule producing false positives.
"""

import pytest

from repro.analysis import lint_ontology
from repro.ontologies import load_wordnet


def error_findings(ontology):
    return [finding for finding in lint_ontology(ontology)
            if finding.severity == "error"]


def test_corpus_ontologies_have_no_error_findings(corpus_soqa):
    for name in corpus_soqa.ontology_names():
        errors = error_findings(corpus_soqa.ontology(name))
        assert errors == [], (
            f"bundled ontology {name!r} has error findings: "
            + "; ".join(str(finding) for finding in errors))


def test_corpus_covers_the_papers_five_ontologies(corpus_soqa):
    assert len(corpus_soqa.ontology_names()) == 5


def test_wordnet_fragment_has_no_error_findings():
    errors = error_findings(load_wordnet())
    assert errors == []


def test_query_examples_in_cli_docstring_are_clean(corpus_soqa):
    """The SOQA-QL examples we advertise must pass the static checker."""
    from repro.analysis import check_query

    examples = (
        "SELECT name, documentation FROM concepts IN 'univ-bench_owl'",
        "SELECT COUNT(*) FROM concepts IN COURSES",
        "DESCRIBE CONCEPT Professor IN 'univ-bench_owl'",
    )
    for example in examples:
        findings = check_query(example, soqa=corpus_soqa)
        assert findings == [], example
