"""Doctest execution and public-API surface checks.

Several modules carry ``>>>`` examples in their docstrings; running them
as tests keeps the documentation honest.  The API-surface tests pin the
package's public exports so accidental removals fail loudly.
"""

import doctest

import pytest

import repro
import repro.simpack.base
import repro.simpack.strings
import repro.simpack.text.porter
import repro.simpack.text.tokenizer
import repro.soqa.rdfxml

DOCTEST_MODULES = [
    repro.simpack.base,
    repro.simpack.strings,
    repro.simpack.text.porter,
    repro.simpack.text.tokenizer,
    repro.soqa.rdfxml,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES,
                         ids=lambda module: module.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module lost its doctests"


class TestPublicAPI:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_from_docstring_works(self):
        """The quickstart in the package docstring must actually run."""
        from repro import Measure, SOQASimPackToolkit, load_corpus

        sst = SOQASimPackToolkit(load_corpus())
        value = sst.get_similarity("Professor", "base1_0_daml",
                                   "AssistantProfessor", "univ-bench_owl",
                                   Measure.TFIDF)
        assert 0.0 < value < 1.0
        hits = sst.get_most_similar_concepts("Person", "univ-bench_owl",
                                             k=10, measure=Measure.TFIDF)
        assert len(hits) == 10

    def test_subpackage_all_exports_resolve(self):
        import repro.align as align
        import repro.cluster as cluster
        import repro.core as core
        import repro.ontologies as ontologies
        import repro.simpack as simpack
        import repro.soqa as soqa
        import repro.viz as viz

        for module in (align, cluster, core, ontologies, simpack, soqa,
                       viz):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_facade_doctest(self):
        results = doctest.testmod(
            __import__("repro.core.facade", fromlist=["facade"]),
            verbose=False)
        assert results.failed == 0
