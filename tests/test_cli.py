"""Tests for the ``sst`` command-line interface.

Most subcommands run against the small multi-language fixture corpus via
``--ontology-file`` so CLI tests stay fast; ``table1`` (which needs the
paper corpus) is exercised in the integration tests.
"""

import pytest

from repro.cli import build_parser, main
from tests.conftest import MINI_OWL, MINI_PLOOM


@pytest.fixture
def ontology_files(tmp_path) -> list[str]:
    owl_path = tmp_path / "univ.owl"
    owl_path.write_text(MINI_OWL, encoding="utf-8")
    ploom_path = tmp_path / "MINI.ploom"
    ploom_path.write_text(MINI_PLOOM, encoding="utf-8")
    return [str(owl_path), str(ploom_path)]


def run_cli(capsys, ontology_files, *arguments: str) -> str:
    argv = []
    for path in ontology_files:
        argv.extend(["--ontology-file", path])
    argv.extend(arguments)
    assert main(argv) == 0
    return capsys.readouterr().out


class TestSubcommands:
    def test_ontologies(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "ontologies")
        assert "univ" in out
        assert "PowerLoom" in out

    def test_sim_all_table1_measures(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "sim", "univ", "Professor",
                      "univ", "Student")
        assert "Conceptual Similarity" in out
        assert "TFIDF" in out

    def test_sim_single_measure(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "sim", "univ", "Professor",
                      "univ", "Student", "-m", "5")
        assert "0.2500" in out

    def test_sim_measure_by_name(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "sim", "univ", "Professor",
                      "univ", "Student", "-m", "Lin")
        assert "Lin" in out

    def test_ksim(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "ksim", "univ", "Professor",
                      "-k", "2")
        assert "Employee" in out
        assert "rank" in out

    def test_ksim_with_subtree(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "ksim", "univ", "Professor",
                      "-k", "10", "--subtree", "univ:Person")
        assert "MINI" not in out.split("rank")[1]

    def test_kdissim(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "kdissim", "univ",
                      "Professor", "-k", "2")
        assert "rank" in out

    def test_chart_ascii(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "chart", "univ", "Professor",
                      "-k", "3")
        assert "█" in out

    def test_chart_writes_artifacts(self, capsys, ontology_files,
                                    tmp_path):
        out_dir = tmp_path / "charts"
        out = run_cli(capsys, ontology_files, "chart", "univ", "Professor",
                      "-k", "3", "-o", str(out_dir))
        assert "wrote:" in out
        assert (out_dir / "chart.svg").exists()
        assert (out_dir / "chart.gp").exists()
        assert (out_dir / "chart.dat").exists()

    def test_measures(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "measures")
        assert "Jaro-Winkler" in out

    def test_query(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "query",
                      "SELECT name FROM concepts IN univ LIMIT 2")
        assert "(2 rows)" in out


class TestErrors:
    def test_unknown_concept_reports_error(self, capsys, ontology_files):
        argv = ["--ontology-file", ontology_files[0], "sim", "univ",
                "Ghost", "univ", "Student"]
        assert main(argv) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
