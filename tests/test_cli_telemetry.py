"""Tests for the observability CLI surface (sst trace / sst metrics).

Also pins the telemetry-backed disk-cache stderr report, stdout
determinism under the ``SST_TELEMETRY`` kill switch, and the
cross-strategy agreement of the cache counters.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import telemetry
from tests.conftest import MINI_OWL

MATRIX_ARGS = ["matrix", "univ:Person", "univ:Student", "univ:Course"]

#: Symmetric 3-concept matrix: 3 diagonal + 3 upper-triangle pairs.
MATRIX_PAIRS = 6

STRATEGIES = ["serial", "thread", "process"]


@pytest.fixture
def owl_file(tmp_path) -> str:
    path = tmp_path / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch) -> str:
    directory = tmp_path / "telemetry-cache"
    monkeypatch.setenv("SST_CACHE_DIR", str(directory))
    return str(directory)


def _argv(owl_file: str, *arguments: str) -> list[str]:
    return ["--ontology-file", owl_file, *arguments]


def _parse_metrics_text(output: str) -> dict[str, str]:
    """The ``name value`` lines following the ``── metrics`` rule."""
    metrics: dict[str, str] = {}
    in_metrics = False
    for line in output.splitlines():
        if line.startswith("── metrics"):
            in_metrics = True
            continue
        if in_metrics and line.strip():
            name, _, value = line.partition("  ")
            metrics[name.strip()] = value.strip()
    return metrics


class TestTraceCommand:
    def test_trace_wraps_matrix(self, capsys, owl_file, cache_dir):
        assert main(_argv(owl_file, "trace", *MATRIX_ARGS)) == 0
        out = capsys.readouterr().out
        # The wrapped command's own output is preserved...
        assert "univ:Person" in out
        # ...followed by the span tree and the metrics dump.
        assert "── trace" in out
        assert "── metrics" in out
        assert "sst.matrix" in out
        assert "facade.similarity_matrix" in out
        assert "parallel.score_pairs" in out
        assert " ms" in out
        metrics = _parse_metrics_text(out)
        assert metrics["cache.l1.misses"] == str(MATRIX_PAIRS)

    def test_trace_forces_telemetry_on(self, capsys, owl_file, cache_dir,
                                       monkeypatch):
        # An explicit request to trace beats the ambient kill switch.
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "off")
        assert main(_argv(owl_file, "trace", *MATRIX_ARGS)) == 0
        assert "sst.matrix" in capsys.readouterr().out

    def test_trace_without_command_is_an_error(self, capsys, owl_file):
        assert main(_argv(owl_file, "trace")) == 2
        assert "needs a subcommand" in capsys.readouterr().err

    def test_trace_cannot_nest(self, capsys, owl_file):
        assert main(_argv(owl_file, "trace", "trace", "measures")) == 2
        assert "cannot nest" in capsys.readouterr().err

    def test_trace_inherits_global_options(self, capsys, owl_file,
                                           cache_dir):
        # --ontology-file given before ``trace`` reaches the wrapped run.
        assert main(["--ontology-file", owl_file, "trace",
                     "ksim", "univ", "Person", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "Employee" in out
        assert "sst.ksim" in out


class TestMetricsCommand:
    def test_json_format_is_pure(self, capsys, owl_file, cache_dir):
        assert main(_argv(owl_file, "metrics", "--format", "json",
                          *MATRIX_ARGS)) == 0
        out = capsys.readouterr().out
        # The wrapped command's stdout is swallowed: the output is one
        # machine-parseable JSON document and nothing else.
        rendered = json.loads(out)
        assert rendered["cache.l1.misses"] == MATRIX_PAIRS
        assert rendered["facade.get_similarity_matrix.calls"] == 1

    def test_text_format_default(self, capsys, owl_file, cache_dir):
        assert main(_argv(owl_file, "metrics", *MATRIX_ARGS)) == 0
        out = capsys.readouterr().out
        assert "cache.l1.misses" in out
        assert "univ:Person" not in out

    def test_prometheus_format(self, capsys, owl_file, cache_dir):
        assert main(_argv(owl_file, "metrics", "--format", "prometheus",
                          *MATRIX_ARGS)) == 0
        out = capsys.readouterr().out
        assert "# TYPE sst_cache_l1_misses counter" in out
        assert f"sst_cache_l1_misses {MATRIX_PAIRS}" in out

    def test_metrics_without_command_is_empty(self, capsys):
        assert main(["metrics"]) == 0
        assert "(no metrics recorded)" in capsys.readouterr().out

    def test_metrics_cannot_nest(self, capsys, owl_file):
        assert main(_argv(owl_file, "metrics", "metrics", "measures")) == 2
        assert "cannot nest" in capsys.readouterr().err


class TestCacheReport:
    """The telemetry-backed ``disk cache: ...`` stderr line."""

    def test_cold_and_warm_hit_rates(self, capsys, owl_file, cache_dir):
        argv = _argv(owl_file, *MATRIX_ARGS)
        assert main(argv) == 0
        cold = capsys.readouterr().err
        assert f"disk cache: 0/{MATRIX_PAIRS} hits (0.0%)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().err
        assert (f"disk cache: {MATRIX_PAIRS}/{MATRIX_PAIRS} hits (100.0%)"
                in warm)
        # The report names the cache directory (shard files live inside).
        assert "telemetry-cache" in warm

    def test_silent_under_kill_switch(self, capsys, owl_file, cache_dir,
                                      monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "off")
        assert main(_argv(owl_file, *MATRIX_ARGS)) == 0
        assert "disk cache" not in capsys.readouterr().err


class TestKillSwitchDeterminism:
    """``SST_TELEMETRY=off`` must not change a single stdout byte."""

    @pytest.mark.parametrize("arguments", [
        MATRIX_ARGS,
        ["ksim", "univ", "Person", "-k", "3"],
        ["align", "univ", "univ", "-m", "TFIDF"],
    ], ids=["matrix", "ksim", "align"])
    def test_stdout_is_byte_identical(self, capsys, owl_file, tmp_path,
                                      monkeypatch, arguments):
        argv = _argv(owl_file, *arguments)
        monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "cache-on"))
        monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
        assert main(argv) == 0
        with_telemetry = capsys.readouterr().out
        monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "cache-off"))
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "off")
        assert main(argv) == 0
        without_telemetry = capsys.readouterr().out
        assert with_telemetry == without_telemetry


class TestCrossStrategyParity:
    def _metrics(self, capsys, owl_file, strategy: str) -> dict:
        assert main(_argv(owl_file, "metrics", "--format", "json",
                          *MATRIX_ARGS, "--strategy", strategy,
                          "--workers", "2")) == 0
        return json.loads(capsys.readouterr().out)

    def test_warm_l2_hits_identical_across_strategies(self, capsys,
                                                      owl_file, cache_dir):
        # Warm the persistent tier once, serially.
        assert main(_argv(owl_file, *MATRIX_ARGS)) == 0
        capsys.readouterr()
        reports = {strategy: self._metrics(capsys, owl_file, strategy)
                   for strategy in STRATEGIES}
        for strategy, report in reports.items():
            assert report["cache.l2.hits"] == MATRIX_PAIRS, strategy
            assert report["cache.l1.misses"] == MATRIX_PAIRS, strategy
            assert "cache.l2.misses" not in report, strategy

    def test_cold_counters_reconcile_per_strategy(self, capsys, owl_file,
                                                  tmp_path, monkeypatch):
        for strategy in STRATEGIES:
            monkeypatch.setenv("SST_CACHE_DIR",
                               str(tmp_path / f"cache-{strategy}"))
            report = self._metrics(capsys, owl_file, strategy)
            assert report["cache.l1.misses"] == MATRIX_PAIRS, strategy
            assert report["cache.l2.misses"] == MATRIX_PAIRS, strategy
            assert report["cache.l2.stores"] == MATRIX_PAIRS, strategy
            assert report["cache.l2.flushed_rows"] == MATRIX_PAIRS, strategy


class TestTraceMetricsReconciliation:
    """``sst trace`` and ``sst metrics`` keep identical books."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cache_counters_agree(self, capsys, owl_file, tmp_path,
                                  monkeypatch, strategy):
        run = ["--strategy", strategy, "--workers", "2"]
        monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "trace-cache"))
        assert main(_argv(owl_file, "trace", *MATRIX_ARGS, *run)) == 0
        traced = _parse_metrics_text(capsys.readouterr().out)
        monkeypatch.setenv("SST_CACHE_DIR", str(tmp_path / "metrics-cache"))
        assert main(_argv(owl_file, "metrics", "--format", "json",
                          *MATRIX_ARGS, *run)) == 0
        reported = json.loads(capsys.readouterr().out)
        cache_keys = {name for name in (set(traced) | set(reported))
                      if name.startswith("cache.")}
        assert cache_keys  # the cache path was exercised
        for name in sorted(cache_keys):
            assert int(traced[name]) == reported[name], name

    def test_process_trace_contains_worker_spans(self, capsys, owl_file,
                                                 cache_dir):
        assert main(_argv(owl_file, "trace", *MATRIX_ARGS,
                          "--strategy", "process", "--workers", "2")) == 0
        out = capsys.readouterr().out
        assert "parallel.chunk" in out
        assert "pid=" in out
