"""Tests for the SST Browser views and command shell."""

import io

from repro.browser.shell import run_browser
from repro.browser.views import (
    render_concept_detail,
    render_hierarchy,
    render_measure_list,
    render_metadata,
    render_similarity_tab,
)
from repro.core.registry import Measure


class TestViews:
    def test_metadata_pane(self, mini_sst):
        text = render_metadata(mini_sst, "univ")
        assert "Tiny university ontology" in text
        assert "concepts" in text
        assert "OWL" in text

    def test_hierarchy_indented_tree(self, mini_sst):
        text = render_hierarchy(mini_sst, "univ")
        lines = text.splitlines()
        assert lines[0] == "univ (OWL)"
        assert "- Person" in text
        assert "  - Employee" in text
        assert "    - Professor" in text

    def test_hierarchy_with_root_restriction(self, mini_sst):
        text = render_hierarchy(mini_sst, "univ", root="Employee")
        assert "Professor" in text
        assert "Student" not in text

    def test_hierarchy_depth_bound(self, mini_sst):
        text = render_hierarchy(mini_sst, "univ", max_depth=1)
        assert "Employee" in text
        assert "Professor" not in text

    def test_concept_detail_lists_structure(self, mini_sst):
        text = render_concept_detail(mini_sst, "Professor", "univ")
        assert "advises" in text
        assert "Employee" in text
        assert "smith" in text

    def test_concept_detail_methods(self, mini_sst):
        text = render_concept_detail(mini_sst, "PERSON", "MINI")
        assert "full-name" in text

    def test_measure_list(self, mini_sst):
        text = render_measure_list(mini_sst)
        assert "TFIDF" in text
        assert "Conceptual Similarity" in text

    def test_similarity_tab_table(self, mini_sst):
        text = render_similarity_tab(mini_sst, "Professor", "univ", k=3,
                                     measure=Measure.SHORTEST_PATH)
        assert "3 most similar concepts" in text
        assert "Employee" in text
        assert "rank" in text


class TestShell:
    def run(self, mini_sst, lines: list[str]) -> str:
        output = io.StringIO()
        run_browser(mini_sst, lines=lines, stdout=output)
        return output.getvalue()

    def test_ontologies_command(self, mini_sst):
        text = self.run(mini_sst, ["ontologies"])
        assert "univ" in text
        assert "PowerLoom" in text

    def test_metadata_command(self, mini_sst):
        text = self.run(mini_sst, ["metadata univ"])
        assert "Tiny university ontology" in text

    def test_tree_command(self, mini_sst):
        text = self.run(mini_sst, ["tree univ Person 1"])
        assert "- Person" in text

    def test_concept_command(self, mini_sst):
        text = self.run(mini_sst, ["concept univ Professor"])
        assert "advises" in text

    def test_sim_command_with_measure_name(self, mini_sst):
        text = self.run(mini_sst,
                        ['sim univ Professor univ Student "Shortest Path"'])
        assert "0.2500" in text

    def test_sim_command_with_measure_id(self, mini_sst):
        text = self.run(mini_sst, ["sim univ Professor univ Student 5"])
        assert "0.2500" in text

    def test_ksim_command(self, mini_sst):
        text = self.run(mini_sst, ["ksim univ Professor 2"])
        assert "Employee" in text

    def test_kdissim_command(self, mini_sst):
        text = self.run(mini_sst, ["kdissim univ Professor 2"])
        assert "rank" in text

    def test_chart_command(self, mini_sst):
        text = self.run(mini_sst, ["chart univ Professor 3"])
        assert "█" in text

    def test_query_command(self, mini_sst):
        text = self.run(mini_sst,
                        ["query SELECT name FROM concepts IN univ LIMIT 2"])
        assert "(2 rows)" in text

    def test_measures_command(self, mini_sst):
        text = self.run(mini_sst, ["measures"])
        assert "TFIDF" in text

    def test_error_handling_unknown_concept(self, mini_sst):
        text = self.run(mini_sst, ["concept univ Ghost"])
        assert "error:" in text

    def test_error_handling_unknown_ontology(self, mini_sst):
        text = self.run(mini_sst, ["metadata ghosts"])
        assert "error:" in text

    def test_usage_messages(self, mini_sst):
        text = self.run(mini_sst, ["sim univ", "ksim", "concept univ",
                                   "metadata", "query"])
        assert text.count("usage:") == 5

    def test_quit(self, mini_sst):
        output = io.StringIO()
        shell = run_browser(mini_sst, lines=[], stdout=output)
        assert shell.onecmd("quit") is True
