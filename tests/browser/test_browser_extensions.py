"""Tests for the browser's search/compare/instances/isim commands."""

import io

from repro.browser.shell import run_browser


def run(mini_sst, lines: list[str]) -> str:
    output = io.StringIO()
    run_browser(mini_sst, lines=lines, stdout=output)
    return output.getvalue()


class TestSearch:
    def test_glob_match_across_ontologies(self, mini_sst):
        text = run(mini_sst, ["search *s*n*"])
        assert "Person" in text
        assert "PERSON" in text  # PowerLoom hit, case-insensitive glob

    def test_exact_name(self, mini_sst):
        text = run(mini_sst, ["search Professor"])
        assert "Professor" in text
        assert "univ" in text

    def test_no_match_message(self, mini_sst):
        text = run(mini_sst, ["search zzz*"])
        assert "no concept matches" in text

    def test_usage(self, mini_sst):
        assert "usage:" in run(mini_sst, ["search"])


class TestCompare:
    def test_all_measures_listed(self, mini_sst):
        text = run(mini_sst, ["compare univ Professor univ Student"])
        for measure in ("Conceptual Similarity", "Levenshtein", "Lin",
                        "Resnik", "Shortest Path", "TFIDF"):
            assert measure in text

    def test_cross_ontology(self, mini_sst):
        text = run(mini_sst, ["compare univ Professor MINI EMPLOYEE"])
        assert "TFIDF" in text

    def test_usage(self, mini_sst):
        assert "usage:" in run(mini_sst, ["compare univ Professor"])

    def test_error_reported(self, mini_sst):
        assert "error:" in run(mini_sst,
                               ["compare univ Ghost univ Student"])


class TestInstances:
    def test_all_instances_of_ontology(self, mini_sst):
        text = run(mini_sst, ["instances univ"])
        assert "smith" in text
        assert "jane" in text

    def test_instances_of_concept_include_subconcepts(self, mini_sst):
        text = run(mini_sst, ["instances univ Person"])
        assert "smith" in text
        assert "db1" not in text

    def test_usage(self, mini_sst):
        assert "usage:" in run(mini_sst, ["instances"])


class TestInstanceSimilarity:
    def test_isim_features(self, mini_sst):
        text = run(mini_sst, ["isim univ smith 3"])
        assert "rank" in text
        assert "jane" in text

    def test_isim_text_view(self, mini_sst):
        text = run(mini_sst, ["isim univ smith 3 text"])
        assert "rank" in text

    def test_isim_unknown_instance(self, mini_sst):
        assert "error:" in run(mini_sst, ["isim univ ghost"])

    def test_usage(self, mini_sst):
        assert "usage:" in run(mini_sst, ["isim"])
