"""Tests for the align/stats/validate CLI subcommands and facade helpers."""

import io

import pytest

from repro.cli import main
from tests.conftest import MINI_OWL, MINI_PLOOM


@pytest.fixture
def ontology_files(tmp_path) -> list[str]:
    owl_path = tmp_path / "univ.owl"
    owl_path.write_text(MINI_OWL, encoding="utf-8")
    ploom_path = tmp_path / "MINI.ploom"
    ploom_path.write_text(MINI_PLOOM, encoding="utf-8")
    return [str(owl_path), str(ploom_path)]


def run_cli(capsys, ontology_files, *arguments: str) -> str:
    argv = []
    for path in ontology_files:
        argv.extend(["--ontology-file", path])
    argv.extend(arguments)
    assert main(argv) == 0
    return capsys.readouterr().out


class TestAlignCommand:
    def test_align_by_name_measure(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "align", "univ", "MINI",
                      "-m", "Jaro-Winkler", "-t", "0.95")
        assert "univ:Person" in out
        assert "MINI:PERSON" in out
        assert "correspondences" in out

    def test_align_high_threshold_empty(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "align", "univ", "MINI",
                      "-m", "TFIDF", "-t", "1.0")
        assert "(0 correspondences)" in out

    def test_align_unknown_ontology_errors(self, capsys, ontology_files):
        argv = ["--ontology-file", ontology_files[0], "align", "univ",
                "ghosts"]
        assert main(argv) == 1
        assert "error:" in capsys.readouterr().err


class TestMatrixCommand:
    def test_matrix_text_output(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "matrix",
                      "univ:Person", "univ:Professor", "MINI:PERSON",
                      "-m", "Shortest Path")
        assert "univ:Person" in out
        assert "MINI:PERSON" in out
        assert "1.0000" in out

    def test_matrix_json_with_workers(self, capsys, ontology_files):
        import json

        out = run_cli(capsys, ontology_files, "matrix",
                      "univ:Person", "univ:Professor", "univ:Student",
                      "--workers", "2", "--strategy", "thread",
                      "--format", "json")
        payload = json.loads(out)
        assert payload["measure"] == "Shortest Path"
        assert payload["labels"][0] == "univ:Person"
        assert len(payload["matrix"]) == 3
        assert payload["matrix"][0][0] == 1.0

    def test_matrix_parallel_equals_serial(self, capsys, ontology_files):
        import json

        arguments = ["matrix", "--from-ontology", "univ", "--format",
                     "json", "-m", "Levenshtein"]
        serial = json.loads(run_cli(capsys, ontology_files, *arguments))
        parallel = json.loads(run_cli(
            capsys, ontology_files, *arguments,
            "--workers", "2", "--strategy", "process"))
        assert parallel == serial

    def test_matrix_from_ontology_with_limit(self, capsys, ontology_files):
        import json

        out = run_cli(capsys, ontology_files, "matrix",
                      "--from-ontology", "univ", "--limit", "2",
                      "--format", "json")
        payload = json.loads(out)
        assert len(payload["labels"]) == 2

    def test_matrix_without_concepts_errors(self, capsys, ontology_files):
        argv = ["--ontology-file", ontology_files[0], "matrix"]
        assert main(argv) == 1
        assert "no concepts" in capsys.readouterr().err

    def test_matrix_malformed_concept_errors(self, capsys, ontology_files):
        argv = ["--ontology-file", ontology_files[0], "matrix", "Person"]
        assert main(argv) == 1
        assert "malformed" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_table(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "stats")
        assert "avg depth" in out
        assert "univ" in out
        assert "MINI" in out


class TestValidateCommand:
    def test_validate_reports_findings(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "validate", "univ")
        assert "findings" in out or "no findings" in out

    def test_validate_unknown_ontology_errors(self, capsys,
                                              ontology_files):
        argv = ["--ontology-file", ontology_files[0], "validate",
                "ghosts"]
        assert main(argv) == 1


class TestFacadeHelpers:
    def test_open_browser_scripted(self, mini_sst):
        output = io.StringIO()
        mini_sst.open_browser(lines=["ontologies"], stdout=output)
        assert "univ" in output.getvalue()

    def test_open_query_shell_scripted(self, mini_sst):
        output = io.StringIO()
        mini_sst.open_query_shell(
            lines=["select name from concepts in univ limit 1"],
            stdout=output)
        assert "(1 rows)" in output.getvalue()
