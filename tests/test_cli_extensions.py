"""Tests for the align/stats/validate CLI subcommands and facade helpers."""

import io

import pytest

from repro.cli import main
from tests.conftest import MINI_OWL, MINI_PLOOM


@pytest.fixture
def ontology_files(tmp_path) -> list[str]:
    owl_path = tmp_path / "univ.owl"
    owl_path.write_text(MINI_OWL, encoding="utf-8")
    ploom_path = tmp_path / "MINI.ploom"
    ploom_path.write_text(MINI_PLOOM, encoding="utf-8")
    return [str(owl_path), str(ploom_path)]


def run_cli(capsys, ontology_files, *arguments: str) -> str:
    argv = []
    for path in ontology_files:
        argv.extend(["--ontology-file", path])
    argv.extend(arguments)
    assert main(argv) == 0
    return capsys.readouterr().out


class TestAlignCommand:
    def test_align_by_name_measure(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "align", "univ", "MINI",
                      "-m", "Jaro-Winkler", "-t", "0.95")
        assert "univ:Person" in out
        assert "MINI:PERSON" in out
        assert "correspondences" in out

    def test_align_high_threshold_empty(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "align", "univ", "MINI",
                      "-m", "TFIDF", "-t", "1.0")
        assert "(0 correspondences)" in out

    def test_align_unknown_ontology_errors(self, capsys, ontology_files):
        argv = ["--ontology-file", ontology_files[0], "align", "univ",
                "ghosts"]
        assert main(argv) == 1
        assert "error:" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_table(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "stats")
        assert "avg depth" in out
        assert "univ" in out
        assert "MINI" in out


class TestValidateCommand:
    def test_validate_reports_findings(self, capsys, ontology_files):
        out = run_cli(capsys, ontology_files, "validate", "univ")
        assert "findings" in out or "no findings" in out

    def test_validate_unknown_ontology_errors(self, capsys,
                                              ontology_files):
        argv = ["--ontology-file", ontology_files[0], "validate",
                "ghosts"]
        assert main(argv) == 1


class TestFacadeHelpers:
    def test_open_browser_scripted(self, mini_sst):
        output = io.StringIO()
        mini_sst.open_browser(lines=["ontologies"], stdout=output)
        assert "univ" in output.getvalue()

    def test_open_query_shell_scripted(self, mini_sst):
        output = io.StringIO()
        mini_sst.open_query_shell(
            lines=["select name from concepts in univ limit 1"],
            stdout=output)
        assert "(1 rows)" in output.getvalue()
