"""Unit tests for the SOQAWrapper for SimPack."""

import pytest

from repro.core.results import QualifiedConcept
from repro.core.unified import UnifiedTree
from repro.core.wrapper import SOQAWrapperForSimPack


@pytest.fixture
def wrapper(mini_soqa) -> SOQAWrapperForSimPack:
    return SOQAWrapperForSimPack(mini_soqa, UnifiedTree(mini_soqa))


PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")
EMPLOYEE_PLOOM = QualifiedConcept("MINI", "EMPLOYEE")


class TestTaxonomyAccess:
    def test_depth_counts_from_super_thing(self, wrapper):
        # Super Thing -> univ:Thing -> Person -> Employee -> Professor.
        assert wrapper.depth(PROFESSOR) == 4

    def test_distance_within_ontology(self, wrapper):
        assert wrapper.distance(PROFESSOR, STUDENT) == 3

    def test_distance_across_ontologies(self, wrapper):
        distance = wrapper.distance(PROFESSOR, EMPLOYEE_PLOOM)
        # Up to Super Thing (4 edges) and down to MINI:EMPLOYEE (3 edges).
        assert distance == 7

    def test_distance_policy_forwarded(self, wrapper):
        assert wrapper.distance(PROFESSOR, STUDENT, policy="any") <= \
            wrapper.distance(PROFESSOR, STUDENT)


class TestFeatureSets:
    def test_features_include_properties_and_supers(self, wrapper):
        features = wrapper.feature_set(PROFESSOR)
        assert "advises" in features
        assert "Employee" in features

    def test_features_cached(self, wrapper):
        assert wrapper.feature_set(PROFESSOR) is wrapper.feature_set(
            PROFESSOR)


class TestStringSequences:
    def test_sequence_walks_to_root_then_properties(self, wrapper):
        sequence = wrapper.string_sequence(PROFESSOR)
        assert sequence[0] == "univ:Professor"
        assert "Super Thing" in sequence
        assert "advises" in sequence

    def test_related_concepts_share_suffix(self, wrapper):
        professor = wrapper.string_sequence(PROFESSOR)
        student = wrapper.string_sequence(STUDENT)
        shared = set(professor) & set(student)
        assert "univ:Person" in shared

    def test_sequence_cached(self, wrapper):
        assert wrapper.string_sequence(STUDENT) is wrapper.string_sequence(
            STUDENT)


class TestVectorSpace:
    def test_all_concepts_indexed(self, wrapper, mini_soqa):
        space = wrapper.vector_space()
        assert space.index.document_count == mini_soqa.concept_count()

    def test_vector_space_cached(self, wrapper):
        assert wrapper.vector_space() is wrapper.vector_space()

    def test_similarity_over_descriptions(self, wrapper):
        space = wrapper.vector_space()
        value = space.similarity("univ:Professor", "univ:Employee")
        assert 0.0 < value <= 1.0


class TestInformationContent:
    def test_subclass_source_default(self, wrapper):
        ic = wrapper.information_content()
        assert ic.source == "subclasses"
        assert ic.probability("Super Thing") == 1.0

    def test_instance_source_counts_instances(self, wrapper):
        ic = wrapper.information_content("instances")
        # univ:Person covers the 'smith' and 'jane' instances; 'Course'
        # only covers 'db1', so Person's use is more probable.
        assert ic.probability("univ:Person") > ic.probability("univ:Course")

    def test_ic_cached_per_source(self, wrapper):
        assert wrapper.information_content() is wrapper.information_content()
        assert wrapper.information_content("instances") is not \
            wrapper.information_content()
