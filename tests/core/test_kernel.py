"""The batch similarity kernel: parity with the per-pair path, engine
selection, cache integration, fallbacks, and edge cases."""

import pytest

from repro.core import kernel, telemetry
from repro.core.cache import CachedRunner
from repro.core.facade import SOQASimPackToolkit
from repro.core.parallel import BatchSimilarityEngine
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.core.runners import (LinRunner, MeasureRunner,
                                ShortestPathRunner)
from repro.errors import SSTCoreError, UnknownConceptError

#: Every measure with a kernel batch form.
BATCHABLE_MEASURES = (
    Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH, Measure.EDGE,
    Measure.LEACOCK_CHODOROW, Measure.LIN, Measure.RESNIK,
    Measure.RESNIK_NORMALIZED, Measure.JIANG_CONRATH,
    Measure.EXTENSIONAL,
)

#: A cross-language, cross-ontology concept panel over the mini corpus.
PANEL = [
    ("univ", "Professor"), ("univ", "Student"), ("univ", "Course"),
    ("MINI", "EMPLOYEE"), ("MINI", "COURSE"), ("wn", "person"),
]


class TestEngineResolution:
    def test_default_is_kernel(self, monkeypatch):
        monkeypatch.delenv(kernel.ENGINE_ENV, raising=False)
        assert kernel.resolve_engine() == kernel.KERNEL

    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(kernel.ENGINE_ENV, "naive")
        assert kernel.resolve_engine("kernel") == kernel.KERNEL

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(kernel.ENGINE_ENV, "naive")
        assert kernel.resolve_engine() == kernel.NAIVE

    def test_case_insensitive(self):
        assert kernel.resolve_engine("KERNEL") == kernel.KERNEL

    def test_unknown_engine_rejected(self):
        with pytest.raises(SSTCoreError, match="unknown batch engine"):
            kernel.resolve_engine("vectorized")

    def test_unknown_environment_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel.ENGINE_ENV, "gpu")
        with pytest.raises(SSTCoreError, match="unknown batch engine"):
            kernel.resolve_engine()

    def test_engine_object_resolves_environment(self, mini_sst,
                                                monkeypatch):
        monkeypatch.setenv(kernel.ENGINE_ENV, "naive")
        engine = BatchSimilarityEngine(
            mini_sst.runner(Measure.SHORTEST_PATH))
        assert engine.engine == kernel.NAIVE


class TestNumpyProbe:
    def test_probe_matches_flag(self):
        assert kernel.numpy_available() == (kernel._NUMPY is not None)

    def test_probe_survives_missing_numpy(self, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy is not installed")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numpy)
        assert kernel._probe_numpy() is None

    def test_batch_parity_without_numpy(self, mini_sst, monkeypatch):
        monkeypatch.setattr(kernel, "_NUMPY", None)
        naive = mini_sst.get_similarity_matrix(
            PANEL, Measure.CONCEPTUAL_SIMILARITY, engine="naive")
        batched = mini_sst.get_similarity_matrix(
            PANEL, Measure.CONCEPTUAL_SIMILARITY, engine="kernel")
        assert batched == naive


class TestBatchability:
    def test_batchable_measures(self, mini_sst):
        for measure in BATCHABLE_MEASURES:
            runner = mini_sst.runner(measure)
            inner = runner.inner if isinstance(runner, CachedRunner) \
                else runner
            assert kernel.batchable(inner), measure

    def test_non_graph_measures_fall_back(self, mini_sst):
        for measure in (Measure.LEVENSHTEIN, Measure.TFIDF,
                        Measure.COSINE, Measure.TREE_EDIT,
                        Measure.NAME_LEVENSHTEIN):
            runner = mini_sst.runner(measure)
            inner = runner.inner if isinstance(runner, CachedRunner) \
                else runner
            assert not kernel.batchable(inner), measure

    def test_subclass_is_not_batchable(self, mini_sst):
        class CustomShortestPath(ShortestPathRunner):
            def run(self, first, second):
                return 0.5

        runner = CustomShortestPath(mini_sst.wrapper)
        assert not kernel.batchable(runner)
        assert kernel.try_batch(runner, [PANEL[0]]) is None

    def test_retargeted_ic_source_is_not_batchable(self, mini_sst):
        runner = LinRunner(mini_sst.wrapper)
        assert kernel.batchable(runner)
        runner.ic_source = "instances"
        assert not kernel.batchable(runner)


def _qualified_panel():
    return [QualifiedConcept(ontology, name) for ontology, name in PANEL]


class TestParity:
    @pytest.mark.parametrize("measure", BATCHABLE_MEASURES,
                             ids=[m.name for m in BATCHABLE_MEASURES])
    def test_matrix_bit_identical(self, mini_sst, measure):
        naive = mini_sst.get_similarity_matrix(PANEL, measure,
                                               engine="naive")
        batched = mini_sst.get_similarity_matrix(PANEL, measure,
                                                 engine="kernel")
        assert batched == naive

    @pytest.mark.parametrize("measure", BATCHABLE_MEASURES,
                             ids=[m.name for m in BATCHABLE_MEASURES])
    def test_uncached_direct_batch_bit_identical(self, mini_sst, measure):
        runner = mini_sst.runner(measure)
        inner = runner.inner if isinstance(runner, CachedRunner) \
            else runner
        concepts = _qualified_panel()
        pairs = [(a, b) for a in concepts for b in concepts]
        batched = kernel.try_batch(inner, pairs)
        assert batched is not None
        assert batched == [inner.run(a, b) for a, b in pairs]

    def test_most_similar_identical_across_engines(self, mini_sst):
        naive = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=5, measure=Measure.LIN,
            engine="naive")
        batched = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=5, measure=Measure.LIN,
            engine="kernel")
        assert batched == naive

    def test_similarity_to_set_identical_across_engines(self, mini_sst):
        others = PANEL[1:]
        naive = mini_sst.get_similarity_to_set(
            "Professor", "univ", others, Measure.JIANG_CONRATH,
            engine="naive")
        batched = mini_sst.get_similarity_to_set(
            "Professor", "univ", others, Measure.JIANG_CONRATH,
            engine="kernel")
        assert batched == naive

    def test_fallback_measure_identical_across_engines(self, mini_sst):
        naive = mini_sst.get_similarity_matrix(
            PANEL, Measure.NAME_LEVENSHTEIN, engine="naive")
        batched = mini_sst.get_similarity_matrix(
            PANEL, Measure.NAME_LEVENSHTEIN, engine="kernel")
        assert batched == naive


class TestEdgeCases:
    def test_empty_concept_set(self, mini_sst):
        assert mini_sst.get_similarity_matrix(
            [], Measure.SHORTEST_PATH, engine="kernel") == []

    def test_singleton_concept_set(self, mini_sst):
        matrix = mini_sst.get_similarity_matrix(
            [PANEL[0]], Measure.SHORTEST_PATH, engine="kernel")
        assert matrix == [[1.0]]

    def test_empty_pair_batch(self, mini_sst):
        runner = mini_sst.runner(Measure.SHORTEST_PATH)
        engine = BatchSimilarityEngine(runner, engine=kernel.KERNEL)
        assert engine.score_pairs([]) == []

    def test_cross_ontology_pairs(self, mini_sst):
        professor = QualifiedConcept("univ", "Professor")
        employee = QualifiedConcept("MINI", "EMPLOYEE")
        runner = mini_sst.runner(Measure.CONCEPTUAL_SIMILARITY)
        inner = runner.inner if isinstance(runner, CachedRunner) \
            else runner
        batched = kernel.try_batch(inner, [(professor, employee)])
        assert batched == [inner.run(professor, employee)]
        # Cross-ontology concepts only meet at Super Thing, but Wu &
        # Palmer's node-counted root distance still scores positively.
        assert batched[0] > 0.0

    def test_unknown_concept_raises_like_naive(self, mini_sst):
        ghost = ("univ", "Ghost")
        with pytest.raises(UnknownConceptError):
            mini_sst.get_similarity_matrix(
                [PANEL[0], ghost], Measure.SHORTEST_PATH, engine="naive")
        with pytest.raises(UnknownConceptError):
            mini_sst.get_similarity_matrix(
                [PANEL[0], ghost], Measure.SHORTEST_PATH, engine="kernel")

    def test_asymmetric_runner_in_asymmetric_matrix(self, mini_sst):
        class Directional(MeasureRunner):
            name = "Directional"

            def run(self, first, second):
                if first == second:
                    return 1.0
                forward = (first.ontology_name, first.concept_name) < (
                    second.ontology_name, second.concept_name)
                return 0.75 if forward else 0.25

        runner = Directional(mini_sst.wrapper)
        concepts = _qualified_panel()
        for engine_name in (kernel.NAIVE, kernel.KERNEL):
            engine = BatchSimilarityEngine(runner, engine=engine_name)
            matrix = engine.similarity_matrix(concepts, symmetric=False)
            assert matrix[0][1] == 0.75
            assert matrix[1][0] == 0.25
            assert all(matrix[i][i] == 1.0
                       for i in range(len(concepts)))


class TestWrapperIntegration:
    def test_kernel_is_cached_per_wrapper(self, mini_sst):
        assert mini_sst.wrapper.kernel() is mini_sst.wrapper.kernel()

    def test_prime_builds_kernel_and_ic(self, mini_sst):
        runner = mini_sst.runner(Measure.LIN)
        kernel.prime(runner)
        built = mini_sst.wrapper._kernel
        assert built is not None
        assert built._ic is not None

    def test_prime_ignores_non_batchable(self, mini_sst):
        runner = mini_sst.runner(Measure.TFIDF)
        kernel.prime(runner)

    def test_tables_are_shared_with_compiled_index(self, mini_sst):
        built = mini_sst.wrapper.kernel()
        compiled = mini_sst.wrapper.taxonomy.compile()
        assert built.tables is compiled.export_tables()
        assert built.tables.size == len(mini_sst.wrapper.taxonomy)


class TestCachedBatches:
    @pytest.fixture
    def cached(self, mini_sst):
        runner = mini_sst.runner(Measure.SHORTEST_PATH)
        return CachedRunner(runner.inner if isinstance(runner, CachedRunner)
                            else runner)

    def test_cold_bulk_lookup_reports_all_pending(self, cached):
        concepts = _qualified_panel()
        pairs = [(concepts[0], concepts[1]), (concepts[0], concepts[2])]
        values, pending = cached.bulk_lookup(pairs)
        assert values == [None, None]
        assert sorted(positions for positions in pending.values()) \
            == [[0], [1]]
        assert cached.misses == 2 and cached.hits == 0

    def test_duplicate_pairs_count_as_hits(self, cached):
        concepts = _qualified_panel()
        pair = (concepts[0], concepts[1])
        mirrored = (concepts[1], concepts[0])
        values, pending = cached.bulk_lookup([pair, mirrored, pair])
        assert values == [None, None, None]
        # One distinct key; the second and third occurrences are the
        # hits the sequential loop would have scored.
        assert len(pending) == 1
        assert list(pending.values()) == [[0, 1, 2]]
        assert cached.misses == 1 and cached.hits == 2

    def test_bulk_store_then_warm_lookup(self, cached):
        concepts = _qualified_panel()
        pairs = [(concepts[0], concepts[1]), (concepts[0], concepts[2])]
        _, pending = cached.bulk_lookup(pairs)
        entries = [(key, 0.5) for key in pending]
        cached.bulk_store(entries)
        values, pending = cached.bulk_lookup(pairs)
        assert values == [0.5, 0.5]
        assert pending == {}
        assert cached.hits == 2

    def test_bulk_store_respects_capacity(self, mini_sst):
        runner = mini_sst.runner(Measure.SHORTEST_PATH)
        cached = CachedRunner(
            runner.inner if isinstance(runner, CachedRunner) else runner,
            capacity=2)
        concepts = _qualified_panel()
        pairs = [(concepts[0], other) for other in concepts[1:5]]
        _, pending = cached.bulk_lookup(pairs)
        cached.bulk_store((key, 0.25) for key in pending)
        assert len(cached) == 2

    def test_try_batch_warm_run_skips_kernel(self, cached):
        concepts = _qualified_panel()
        pairs = [(a, b) for a in concepts for b in concepts]
        cold = kernel.try_batch(cached, pairs)
        built = cached.wrapper.kernel()

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("kernel re-entered on a warm run")

        original = built.batch
        built.batch = boom
        try:
            warm = kernel.try_batch(cached, pairs)
        finally:
            built.batch = original
        assert warm == cold

    def test_cached_engine_matches_uncached(self, mini_sst, cached):
        concepts = _qualified_panel()
        pairs = [(a, b) for a in concepts for b in concepts]
        inner = cached.inner
        assert kernel.try_batch(cached, pairs) \
            == kernel.try_batch(inner, pairs)


class TestTelemetry:
    # Counter-exactness tests run uncached: the suite's session-scoped
    # L2 tier could otherwise satisfy pairs an earlier test already
    # scored, and cached pairs legitimately never reach the kernel.
    def test_batch_counters(self, mini_soqa):
        sst = SOQASimPackToolkit(mini_soqa, cache=False)
        telemetry.reset()
        sst.get_similarity_matrix(PANEL, Measure.SHORTEST_PATH,
                                  engine="kernel")
        registry = telemetry.get_registry()
        # One serial batch over the whole upper triangle (diagonal
        # included).
        pair_count = len(PANEL) * (len(PANEL) + 1) // 2
        assert registry.value("kernel.batches") == 1
        assert registry.value("kernel.pairs") == pair_count

    def test_fallback_counters(self, mini_soqa):
        sst = SOQASimPackToolkit(mini_soqa, cache=False)
        telemetry.reset()
        sst.get_similarity_matrix(PANEL[:3], Measure.NAME_LEVENSHTEIN,
                                  engine="kernel")
        registry = telemetry.get_registry()
        assert registry.value("kernel.fallback.batches") == 1
        assert registry.value("kernel.batches") == 0

    def test_naive_engine_emits_no_kernel_metrics(self, mini_soqa):
        sst = SOQASimPackToolkit(mini_soqa, cache=False)
        telemetry.reset()
        sst.get_similarity_matrix(PANEL[:3], Measure.SHORTEST_PATH,
                                  engine="naive")
        registry = telemetry.get_registry()
        assert registry.value("kernel.batches") == 0
        assert registry.value("kernel.fallback.batches") == 0


class TestStandaloneCorpus:
    def test_cache_disabled_facade_parity(self):
        from repro.ontologies.generator import generate_sumo_owl
        from repro.soqa.api import SOQA

        soqa = SOQA()
        soqa.load_text(generate_sumo_owl(120), "sumo", "OWL")
        sst = SOQASimPackToolkit(soqa, cache=False)
        concepts = [("sumo", concept.name)
                    for concept in soqa.ontology("sumo").concepts()[:10]]
        for measure in BATCHABLE_MEASURES:
            naive = sst.get_similarity_matrix(concepts, measure,
                                              engine="naive")
            batched = sst.get_similarity_matrix(concepts, measure,
                                                engine="kernel")
            assert batched == naive, measure
