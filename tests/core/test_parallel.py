"""Unit tests for the parallel batch similarity engine."""

import pytest

from repro.core.cache import CachedRunner
from repro.core.parallel import (
    PROCESS,
    SERIAL,
    STRATEGIES,
    STRATEGY_ENV,
    THREAD,
    WORKERS_ENV,
    BatchSimilarityEngine,
    chunk_pairs,
    effective_workers,
    resolve_strategy,
    score_against,
    score_pairs,
    similarity_matrix,
)
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError

PERSON = QualifiedConcept("univ", "Person")
EMPLOYEE = QualifiedConcept("univ", "Employee")
PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")
COURSE = QualifiedConcept("univ", "Course")

CONCEPTS = (PERSON, EMPLOYEE, PROFESSOR, STUDENT, COURSE)
PAIRS = [(first, second) for first in CONCEPTS for second in CONCEPTS]


class TestChunking:
    def test_partitions_everything_in_order(self):
        chunks = chunk_pairs(PAIRS, 4)
        assert [pair for chunk in chunks for pair in chunk] == PAIRS

    def test_respects_chunk_count(self):
        assert len(chunk_pairs(PAIRS, 4)) == 4
        assert len(chunk_pairs(PAIRS, 100)) == len(PAIRS)
        assert len(chunk_pairs(PAIRS, 1)) == 1

    def test_balanced_sizes(self):
        sizes = [len(chunk) for chunk in chunk_pairs(PAIRS, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestWorkerResolution:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert effective_workers() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert effective_workers(2) == 2

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert effective_workers() == 3

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(SSTCoreError):
            effective_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(SSTCoreError):
            effective_workers(0)


class TestStrategyResolution:
    def test_defaults_follow_worker_count(self, monkeypatch):
        monkeypatch.delenv(STRATEGY_ENV, raising=False)
        assert resolve_strategy(workers=1) == SERIAL
        assert resolve_strategy(workers=4) == PROCESS

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "thread")
        assert resolve_strategy(workers=4) == THREAD

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "thread")
        assert resolve_strategy("serial", workers=4) == SERIAL

    def test_case_insensitive(self):
        assert resolve_strategy("THREAD") == THREAD

    def test_unknown_rejected(self):
        with pytest.raises(SSTCoreError):
            resolve_strategy("gpu")


class TestBatchScoring:
    @pytest.fixture
    def runner(self, mini_sst):
        return mini_sst.runner(Measure.SHORTEST_PATH)

    def test_empty_batch(self, runner):
        assert score_pairs(runner, []) == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategies_agree_with_serial_loop(self, runner, strategy):
        expected = [runner.run(first, second) for first, second in PAIRS]
        assert score_pairs(runner, PAIRS, workers=2,
                           strategy=strategy) == expected

    def test_score_against(self, runner):
        expected = [runner.run(PERSON, other) for other in CONCEPTS]
        assert score_against(runner, PERSON, CONCEPTS, workers=2,
                             strategy=THREAD) == expected

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matrix_matches_facade(self, mini_sst, runner, strategy):
        expected = mini_sst.get_similarity_matrix(
            [(c.ontology_name, c.concept_name) for c in CONCEPTS],
            Measure.SHORTEST_PATH)
        assert similarity_matrix(runner, list(CONCEPTS), workers=2,
                                 strategy=strategy) == expected

    def test_asymmetric_matrix(self, runner):
        symmetric = similarity_matrix(runner, list(CONCEPTS))
        full = similarity_matrix(runner, list(CONCEPTS), symmetric=False,
                                 workers=2, strategy=THREAD)
        assert full == symmetric  # the measure really is symmetric

    def test_single_pair_short_circuits_to_serial(self, runner):
        engine = BatchSimilarityEngine(runner, workers=4, strategy=PROCESS)
        assert engine.score_pairs([(PERSON, STUDENT)]) == [
            runner.run(PERSON, STUDENT)]

    def test_engine_reads_environment(self, monkeypatch, runner):
        monkeypatch.setenv(WORKERS_ENV, "2")
        monkeypatch.setenv(STRATEGY_ENV, "thread")
        engine = BatchSimilarityEngine(runner)
        assert engine.workers == 2
        assert engine.strategy == THREAD


class TestCacheComposition:
    def test_process_workers_merge_cache_back(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH))
        engine = BatchSimilarityEngine(cached, workers=2, strategy=PROCESS)
        values = engine.score_pairs(PAIRS)
        # All 15 unordered pairs of 5 concepts are now in the parent
        # cache, merged back from the workers.
        assert len(cached) == 15
        assert cached.hits + cached.misses == len(PAIRS)
        # A second batch is served entirely from the parent cache.
        hits_before = cached.hits
        assert engine.score_pairs(PAIRS) == values
        assert cached.hits >= hits_before + len(PAIRS) - 1

    def test_thread_workers_share_one_cache(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH))
        engine = BatchSimilarityEngine(cached, workers=4, strategy=THREAD)
        engine.score_pairs(PAIRS)
        assert len(cached) == 15
        assert cached.hits + cached.misses == len(PAIRS)


class TestFacadeIntegration:
    def test_facade_engine_factory(self, mini_sst):
        engine = mini_sst.engine(Measure.SHORTEST_PATH, workers=3,
                                 strategy="thread")
        assert engine.workers == 3
        assert engine.strategy == THREAD

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_k_most_similar_parallel(self, mini_sst, strategy):
        serial = mini_sst.get_most_similar_concepts("Person", "univ", k=5)
        parallel = mini_sst.get_most_similar_concepts(
            "Person", "univ", k=5, workers=2, strategy=strategy)
        assert parallel == serial

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_similarity_to_set_parallel(self, mini_sst, strategy):
        references = [("univ", "Student"), ("univ", "Course"),
                      ("MINI", "EMPLOYEE")]
        serial = mini_sst.get_similarity_to_set(
            "Person", "univ", references, Measure.SHORTEST_PATH)
        parallel = mini_sst.get_similarity_to_set(
            "Person", "univ", references, Measure.SHORTEST_PATH,
            workers=2, strategy=strategy)
        assert parallel == serial

    def test_matcher_parallel_matches_serial(self, mini_sst):
        from repro.align.matcher import OntologyMatcher

        serial = OntologyMatcher(mini_sst, measure="Jaro-Winkler",
                                 threshold=0.8).match("univ", "MINI")
        parallel = OntologyMatcher(mini_sst, measure="Jaro-Winkler",
                                   threshold=0.8, workers=2,
                                   strategy=THREAD).match("univ", "MINI")
        assert parallel == serial

    def test_clusterer_parallel_matches_serial(self, mini_sst):
        from repro.cluster.agglomerative import ConceptClusterer

        references = [("univ", "Person"), ("univ", "Employee"),
                      ("univ", "Professor"), ("univ", "Course")]
        serial = ConceptClusterer(mini_sst, Measure.SHORTEST_PATH).cluster(
            references, threshold=0.3)
        parallel = ConceptClusterer(
            mini_sst, Measure.SHORTEST_PATH, workers=2,
            strategy=PROCESS).cluster(references, threshold=0.3)
        assert parallel == serial
