"""Determinism: all execution strategies produce bit-identical matrices.

For every registered measure, over a mixed concept set drawn from the
bundled OWL + PowerLoom + WordNet fixtures, the serial, thread and
process strategies must agree on every cell — parallel execution is an
implementation detail, never a semantic one.
"""

import pytest

from repro.core.facade import SOQASimPackToolkit
from repro.core.parallel import PROCESS, THREAD
from repro.soqa.api import SOQA
from tests.conftest import MINI_OWL, MINI_PLOOM, MINI_WORDNET

WORKERS = 2


@pytest.fixture(scope="module")
def shared_sst() -> SOQASimPackToolkit:
    """One facade for the whole module; read-only across parameters."""
    soqa = SOQA()
    soqa.load_text(MINI_OWL, "univ", "OWL")
    soqa.load_text(MINI_PLOOM, "MINI", "PowerLoom")
    soqa.load_text(MINI_WORDNET, "wn", "WordNet")
    return SOQASimPackToolkit(soqa)


@pytest.fixture(scope="module")
def concept_set(shared_sst) -> list[tuple[str, str]]:
    """Two concepts of each language's ontology, deterministically."""
    references = []
    for name in shared_sst.ontology_names():
        ontology = shared_sst.soqa.ontology(name)
        references.extend(
            (name, concept.name) for concept in list(ontology)[:2])
    assert len(references) >= 6
    return references


def _measure_ids(sst: SOQASimPackToolkit) -> list[int]:
    return sst.registry.measure_ids()


# The registry is identical for every facade instance, so a throwaway
# one provides the parametrization ids without touching fixtures.
ALL_MEASURE_IDS = _measure_ids(SOQASimPackToolkit(SOQA()))


@pytest.mark.parametrize("measure_id", ALL_MEASURE_IDS)
def test_strategies_bit_identical(shared_sst, concept_set, measure_id):
    serial = shared_sst.get_similarity_matrix(concept_set, measure_id)
    threaded = shared_sst.get_similarity_matrix(
        concept_set, measure_id, workers=WORKERS, strategy=THREAD)
    processed = shared_sst.get_similarity_matrix(
        concept_set, measure_id, workers=WORKERS, strategy=PROCESS)
    name = shared_sst.runner(measure_id).name
    assert threaded == serial, f"{name}: thread diverged from serial"
    assert processed == serial, f"{name}: process diverged from serial"
