"""Unit tests for instance-level similarity services."""

import pytest

from repro.core.instances import InstanceSimilarityService, QualifiedInstance
from repro.core.registry import Measure
from repro.errors import SSTCoreError, UnknownConceptError


@pytest.fixture
def service(mini_sst) -> InstanceSimilarityService:
    return InstanceSimilarityService(mini_sst)


class TestRegistry:
    def test_all_instances_found(self, service):
        keys = service.all_instances()
        names = {(key.ontology_name, key.instance_name) for key in keys}
        assert ("univ", "smith") in names
        assert ("univ", "jane") in names
        assert ("MINI", "bob") in names

    def test_instance_lookup(self, service):
        instance = service.instance("smith", "univ")
        assert instance.concept_name == "Professor"

    def test_unknown_instance_raises(self, service):
        with pytest.raises(UnknownConceptError):
            service.instance("ghost", "univ")

    def test_refresh_clears_caches(self, service, mini_sst):
        service.all_instances()
        service.vector_space()
        service.refresh()
        assert service.all_instances()  # rebuilt without error

    def test_qualified_instance_display(self):
        assert str(QualifiedInstance("univ", "smith")) == "univ::smith"


class TestFeatureView:
    def test_feature_set_contents(self, service):
        features = service.feature_set("smith", "univ")
        assert "Professor" in features   # its concept
        assert "name" in features        # attribute key
        assert "advises" in features     # relationship key
        assert "jane" in features        # relationship target

    def test_identity_is_one(self, service):
        assert service.get_similarity("smith", "univ", "smith", "univ",
                                      "features") == 1.0

    def test_shared_structure_scores_positive(self, service):
        # smith and jane both carry a 'name' attribute value.
        value = service.get_similarity("smith", "univ", "jane", "univ",
                                       "features")
        assert 0.0 < value < 1.0

    def test_disjoint_instances_score_zero(self, service):
        # univ:db1 (bare course) and MINI:bob share nothing.
        assert service.get_similarity("db1", "univ", "bob", "MINI",
                                      "features") == 0.0


class TestTextView:
    def test_document_text_contains_values(self, service):
        text = service.document_text("smith", "univ")
        assert "Prof. Smith" in text
        assert "Professor" in text

    def test_identity_is_one(self, service):
        assert service.get_similarity("smith", "univ", "smith", "univ",
                                      "text") == pytest.approx(1.0)

    def test_vector_space_covers_all_instances(self, service):
        space = service.vector_space()
        assert space.index.document_count == len(service.all_instances())

    def test_cross_ontology_text_similarity(self, service):
        value = service.get_similarity("smith", "univ", "bob", "MINI",
                                       "text")
        assert 0.0 <= value <= 1.0


class TestConceptView:
    def test_delegates_to_concept_measure(self, service, mini_sst):
        via_instances = service.get_similarity("smith", "univ", "jane",
                                               "univ", "concepts")
        via_concepts = mini_sst.get_similarity(
            "Professor", "univ", "Student", "univ",
            Measure.CONCEPTUAL_SIMILARITY)
        assert via_instances == pytest.approx(via_concepts)

    def test_same_concept_instances_score_one(self, mini_sst):
        service = InstanceSimilarityService(
            mini_sst, concept_measure=Measure.SHORTEST_PATH)
        # Two instances of the same concept are concept-identical.
        mini_sst.soqa.ontology("univ").concept("Student").instances.append(
            type(mini_sst.soqa.ontology("univ").concept(
                "Student").instances[0])("jill", "Student"))
        service.refresh()
        assert service.get_similarity("jane", "univ", "jill", "univ",
                                      "concepts") == 1.0


class TestKMostSimilar:
    def test_ranked_descending(self, service):
        entries = service.get_most_similar_instances("smith", "univ", k=5)
        values = [entry.similarity for entry in entries]
        assert values == sorted(values, reverse=True)

    def test_anchor_excluded(self, service):
        entries = service.get_most_similar_instances("smith", "univ",
                                                     k=100)
        assert all(not (entry.instance_name == "smith"
                        and entry.ontology_name == "univ")
                   for entry in entries)

    def test_entry_carries_concept(self, service):
        entries = service.get_most_similar_instances("smith", "univ", k=1,
                                                     measure="text")
        assert entries[0].concept_name

    def test_str_rendering(self, service):
        entry = service.get_most_similar_instances("smith", "univ",
                                                   k=1)[0]
        assert "::" in str(entry)


class TestValidation:
    def test_unknown_measure_rejected(self, service):
        with pytest.raises(SSTCoreError, match="instance measure"):
            service.get_similarity("smith", "univ", "jane", "univ",
                                   "magic")

    def test_unknown_instance_in_text_view(self, service):
        with pytest.raises(UnknownConceptError):
            service.get_similarity("ghost", "univ", "jane", "univ",
                                   "text")
