"""Property tests: the batch kernel is bit-identical to the per-pair
path on randomized DAGs.

Same two-source strategy as the CompiledTaxonomy equivalence suite: a
hypothesis-generated family (small adversarial shapes — diamonds,
multiple roots, forests) and the seeded realistic generators.  For
every batchable measure, a full all-pairs matrix must agree *exactly*
— same floats, bit for bit — between ``engine="naive"`` and
``engine="kernel"``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.ontologies.generator import (generate_random_dag,
                                        generate_wordnet_taxonomy)
from repro.soqa.api import SOQA
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata

BATCHABLE_MEASURES = (
    Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH, Measure.EDGE,
    Measure.LEACOCK_CHODOROW, Measure.LIN, Measure.RESNIK,
    Measure.RESNIK_NORMALIZED, Measure.JIANG_CONRATH,
    Measure.EXTENSIONAL,
)


def toolkit_over(ontologies: dict[str, dict[str, list[str]]]
                 ) -> SOQASimPackToolkit:
    """An SST facade over ``{ontology: {concept: parents}}`` DAGs."""
    soqa = SOQA()
    for ontology_name, parents in ontologies.items():
        concepts = [Concept(name=name, documentation=f"doc {name}",
                            superconcept_names=list(node_parents))
                    for name, node_parents in parents.items()]
        soqa.add_ontology(Ontology(
            OntologyMetadata(name=ontology_name, language="OWL"),
            concepts))
    return SOQASimPackToolkit(soqa, cache=False)


def assert_engines_agree(ontologies: dict[str, dict[str, list[str]]],
                         concept_limit: int | None = None) -> None:
    sst = toolkit_over(ontologies)
    references = [(ontology_name, concept_name)
                  for ontology_name, parents in ontologies.items()
                  for concept_name in parents]
    if concept_limit is not None:
        references = references[:concept_limit]
    for measure in BATCHABLE_MEASURES:
        naive = sst.get_similarity_matrix(references, measure,
                                          engine="naive")
        batched = sst.get_similarity_matrix(references, measure,
                                            engine="kernel")
        assert batched == naive, measure


@st.composite
def random_dags(draw) -> dict[str, list[str]]:
    """A random DAG as ``{node: parents}`` (acyclic because parents
    precede children; includes forests and diamond shapes)."""
    size = draw(st.integers(min_value=1, max_value=14))
    nodes = [f"n{i}" for i in range(size)]
    parents: dict[str, list[str]] = {nodes[0]: []}
    for index in range(1, size):
        earlier = nodes[:index]
        count = draw(st.integers(min_value=0,
                                 max_value=min(3, len(earlier))))
        chosen = draw(st.permutations(earlier))[:count]
        parents[nodes[index]] = list(chosen)
    return parents


@given(random_dags())
@settings(max_examples=25, deadline=None)
def test_kernel_matches_naive_on_hypothesis_dags(parents):
    assert_engines_agree({"hyp": parents})


@given(random_dags(), random_dags())
@settings(max_examples=10, deadline=None)
def test_kernel_matches_naive_across_two_ontologies(first, second):
    assert_engines_agree({"alpha": first, "beta": second},
                         concept_limit=14)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_matches_naive_on_seeded_random_dags(seed):
    assert_engines_agree({"rnd": generate_random_dag(130, seed=seed)},
                         concept_limit=18)


@pytest.mark.parametrize("seed", [0, 7])
def test_kernel_matches_naive_on_wordnet_shape(seed):
    assert_engines_agree(
        {"wn": generate_wordnet_taxonomy(200, seed=seed)},
        concept_limit=15)
