"""Unit tests for the pairwise similarity cache."""

import pickle
import threading

import pytest

from repro.core.cache import CachedRunner
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError

PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")
EMPLOYEE = QualifiedConcept("univ", "Employee")


@pytest.fixture
def cached(mini_sst) -> CachedRunner:
    return CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH))


class TestCaching:
    def test_same_value_as_inner(self, cached, mini_sst):
        direct = mini_sst.runner(Measure.SHORTEST_PATH).run(PROFESSOR,
                                                            STUDENT)
        assert cached.run(PROFESSOR, STUDENT) == direct

    def test_second_lookup_hits(self, cached):
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 1
        cached.run(PROFESSOR, STUDENT)
        assert cached.hits == 1

    def test_symmetric_pairs_share_entry(self, cached):
        cached.run(PROFESSOR, STUDENT)
        cached.run(STUDENT, PROFESSOR)
        assert cached.hits == 1
        assert cached.misses == 1

    def test_asymmetric_mode_keeps_both_orders(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              symmetric=False)
        cached.run(PROFESSOR, STUDENT)
        cached.run(STUDENT, PROFESSOR)
        assert cached.misses == 2

    def test_hit_rate(self, cached):
        assert cached.hit_rate == 0.0
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              capacity=2)
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, EMPLOYEE)
        cached.run(STUDENT, EMPLOYEE)   # evicts (PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 4
        assert cached.hits == 0

    def test_clear_resets(self, cached):
        cached.run(PROFESSOR, STUDENT)
        cached.clear()
        assert cached.hits == 0
        assert cached.misses == 0
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 1

    def test_metadata_forwarded(self, cached, mini_sst):
        inner = mini_sst.runner(Measure.SHORTEST_PATH)
        assert cached.name == inner.name
        assert cached.is_normalized() == inner.is_normalized()

    def test_invalid_capacity_rejected(self, mini_sst):
        with pytest.raises(SSTCoreError):
            CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                         capacity=0)

    def test_merge_inserts_entries_and_statistics(self, cached):
        key = cached.cache_key(PROFESSOR, STUDENT)
        cached.merge([(key, 0.25)], hits=3, misses=2)
        assert cached.run(PROFESSOR, STUDENT) == 0.25
        assert cached.hits == 3 + 1
        assert cached.misses == 2

    def test_merge_respects_capacity(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              capacity=2)
        entries = [(cached.cache_key(PROFESSOR, STUDENT), 0.1),
                   (cached.cache_key(PROFESSOR, EMPLOYEE), 0.2),
                   (cached.cache_key(STUDENT, EMPLOYEE), 0.3)]
        cached.merge(entries)
        assert len(cached) == 2

    def test_pickle_roundtrip_recreates_lock(self, cached):
        cached.run(PROFESSOR, STUDENT)
        clone = pickle.loads(pickle.dumps(cached))
        assert clone.hits == cached.hits
        assert clone.misses == cached.misses
        assert clone.run(PROFESSOR, STUDENT) == cached.run(PROFESSOR,
                                                           STUDENT)

    def test_registered_as_custom_measure(self, mini_sst):
        measure_id = mini_sst.register_measure_runner(
            "cached-path",
            lambda wrapper: CachedRunner(
                mini_sst.registry.create(Measure.SHORTEST_PATH, wrapper)))
        first = mini_sst.get_similarity("Professor", "univ", "Student",
                                        "univ", measure_id)
        second = mini_sst.get_similarity("Professor", "univ", "Student",
                                         "univ", "cached-path")
        assert first == second
        assert mini_sst.runner(measure_id).hits >= 1


class TestThreadSafety:
    """Hammering: one cache shared by many threads stays consistent."""

    THREADS = 8
    ROUNDS = 40

    def test_hammering_keeps_statistics_consistent(self, mini_sst):
        inner = mini_sst.runner(Measure.SHORTEST_PATH)
        cached = CachedRunner(inner)
        concepts = (PROFESSOR, STUDENT, EMPLOYEE,
                    QualifiedConcept("univ", "Person"),
                    QualifiedConcept("univ", "Course"))
        pairs = [(first, second) for first in concepts
                 for second in concepts]
        errors: list[BaseException] = []
        barrier = threading.Barrier(self.THREADS)

        def hammer() -> None:
            try:
                barrier.wait()
                for _ in range(self.ROUNDS):
                    for first, second in pairs:
                        value = cached.run(first, second)
                        assert value == inner.run(first, second)
            except BaseException as error:  # noqa: BLE001 - rethrown below
                errors.append(error)

        threads = [threading.Thread(target=hammer)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every lookup incremented exactly one counter, none was lost.
        total = self.THREADS * self.ROUNDS * len(pairs)
        assert cached.hits + cached.misses == total
        assert len(cached) == 15  # unordered pairs of 5 concepts

    def test_hammering_under_eviction_pressure(self, mini_sst):
        # Capacity below the working set forces constant LRU mutation.
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              capacity=4)
        concepts = (PROFESSOR, STUDENT, EMPLOYEE,
                    QualifiedConcept("univ", "Person"),
                    QualifiedConcept("univ", "Course"))
        pairs = [(first, second) for first in concepts
                 for second in concepts]
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                for _ in range(self.ROUNDS):
                    for first, second in pairs:
                        cached.run(first, second)
            except BaseException as error:  # noqa: BLE001 - rethrown below
                errors.append(error)

        threads = [threading.Thread(target=hammer)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cached) <= 4
        total = self.THREADS * self.ROUNDS * len(pairs)
        assert cached.hits + cached.misses == total
