"""Unit tests for the pairwise similarity cache."""

import pytest

from repro.core.cache import CachedRunner
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError

PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")
EMPLOYEE = QualifiedConcept("univ", "Employee")


@pytest.fixture
def cached(mini_sst) -> CachedRunner:
    return CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH))


class TestCaching:
    def test_same_value_as_inner(self, cached, mini_sst):
        direct = mini_sst.runner(Measure.SHORTEST_PATH).run(PROFESSOR,
                                                            STUDENT)
        assert cached.run(PROFESSOR, STUDENT) == direct

    def test_second_lookup_hits(self, cached):
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 1
        cached.run(PROFESSOR, STUDENT)
        assert cached.hits == 1

    def test_symmetric_pairs_share_entry(self, cached):
        cached.run(PROFESSOR, STUDENT)
        cached.run(STUDENT, PROFESSOR)
        assert cached.hits == 1
        assert cached.misses == 1

    def test_asymmetric_mode_keeps_both_orders(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              symmetric=False)
        cached.run(PROFESSOR, STUDENT)
        cached.run(STUDENT, PROFESSOR)
        assert cached.misses == 2

    def test_hit_rate(self, cached):
        assert cached.hit_rate == 0.0
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, mini_sst):
        cached = CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                              capacity=2)
        cached.run(PROFESSOR, STUDENT)
        cached.run(PROFESSOR, EMPLOYEE)
        cached.run(STUDENT, EMPLOYEE)   # evicts (PROFESSOR, STUDENT)
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 4
        assert cached.hits == 0

    def test_clear_resets(self, cached):
        cached.run(PROFESSOR, STUDENT)
        cached.clear()
        assert cached.hits == 0
        assert cached.misses == 0
        cached.run(PROFESSOR, STUDENT)
        assert cached.misses == 1

    def test_metadata_forwarded(self, cached, mini_sst):
        inner = mini_sst.runner(Measure.SHORTEST_PATH)
        assert cached.name == inner.name
        assert cached.is_normalized() == inner.is_normalized()

    def test_invalid_capacity_rejected(self, mini_sst):
        with pytest.raises(SSTCoreError):
            CachedRunner(mini_sst.runner(Measure.SHORTEST_PATH),
                         capacity=0)

    def test_registered_as_custom_measure(self, mini_sst):
        measure_id = mini_sst.register_measure_runner(
            "cached-path",
            lambda wrapper: CachedRunner(
                mini_sst.registry.create(Measure.SHORTEST_PATH, wrapper)))
        first = mini_sst.get_similarity("Professor", "univ", "Student",
                                        "univ", measure_id)
        second = mini_sst.get_similarity("Professor", "univ", "Student",
                                         "univ", "cached-path")
        assert first == second
        assert mini_sst.runner(measure_id).hits >= 1
