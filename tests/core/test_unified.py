"""Unit tests for the unified ontology tree (paper Fig. 3)."""

import pytest

from repro.core.results import QualifiedConcept
from repro.core.unified import MERGED_THING, UnifiedTree
from repro.errors import SSTCoreError, UnknownConceptError
from repro.soqa.api import SOQA
from tests.conftest import MINI_ORNITHOLOGY_OWL, MINI_OWL


@pytest.fixture
def two_domain_soqa() -> SOQA:
    """The Figure-3 setting: a university and an ornithology ontology."""
    soqa = SOQA()
    soqa.load_text(MINI_OWL, "univ", "OWL")
    soqa.load_text(MINI_ORNITHOLOGY_OWL, "birds", "OWL")
    return soqa


class TestSuperThingStrategy:
    def test_single_root(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        assert tree.root == "Super Thing"
        assert tree.taxonomy.roots() == ["Super Thing"]

    def test_ontology_roots_under_virtual_things(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        assert tree.taxonomy.parents("univ:Person") == ("univ:Thing",)
        assert tree.taxonomy.parents("univ:Thing") == ("Super Thing",)
        assert tree.taxonomy.parents("birds:Blackbird") == ("birds:Thing",)

    def test_within_ontology_structure_preserved(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        assert tree.taxonomy.parents("univ:Professor") == ("univ:Employee",)

    def test_domains_stay_separated(self, two_domain_soqa):
        """Student is closer to Professor than to Blackbird (Fig. 3a)."""
        tree = UnifiedTree(two_domain_soqa)
        to_professor = tree.taxonomy.shortest_path_length(
            "univ:Student", "univ:Professor")
        to_blackbird = tree.taxonomy.shortest_path_length(
            "univ:Student", "birds:Blackbird")
        assert to_professor < to_blackbird

    def test_cross_ontology_path_exists(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        assert tree.taxonomy.shortest_path_length(
            "univ:Student", "birds:Blackbird") is not None


class TestMergedThingStrategy:
    def test_single_merged_root(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa, strategy=MERGED_THING)
        assert tree.root == "Thing"
        assert tree.taxonomy.parents("univ:Person") == ("Thing",)
        assert tree.taxonomy.parents("birds:Blackbird") == ("Thing",)

    def test_domains_jumbled(self, two_domain_soqa):
        """Root concepts of arbitrary domains become immediate
        neighbors — the distances equalize (Fig. 3b)."""
        tree = UnifiedTree(two_domain_soqa, strategy=MERGED_THING)
        to_person = tree.taxonomy.shortest_path_length(
            "univ:Course", "univ:Person")
        to_blackbird = tree.taxonomy.shortest_path_length(
            "univ:Course", "birds:Blackbird")
        assert to_person == to_blackbird == 2

    def test_unknown_strategy_rejected(self, two_domain_soqa):
        with pytest.raises(SSTCoreError):
            UnifiedTree(two_domain_soqa, strategy="galaxy")


class TestConceptMapping:
    def test_node_of_roundtrip(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        concept = QualifiedConcept("univ", "Professor")
        node = tree.node_of(concept)
        assert node == "univ:Professor"
        assert tree.concept_of(node) == concept

    def test_node_of_unknown_concept_raises(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        with pytest.raises(UnknownConceptError):
            tree.node_of(QualifiedConcept("univ", "Ghost"))

    def test_virtual_nodes_have_no_concept(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        assert tree.concept_of("Super Thing") is None
        assert tree.concept_of("univ:Thing") is None
        assert tree.is_virtual("univ:Thing")
        assert not tree.is_virtual("univ:Person")

    def test_all_concepts_excludes_virtual(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        concepts = tree.all_concepts()
        assert len(concepts) == two_domain_soqa.concept_count()
        assert all(isinstance(concept, QualifiedConcept)
                   for concept in concepts)

    def test_subtree_concepts(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        subtree = tree.subtree_concepts(QualifiedConcept("univ", "Person"))
        names = sorted(concept.concept_name for concept in subtree)
        assert names == ["Employee", "Person", "Professor", "Student"]

    def test_subtree_without_root(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        subtree = tree.subtree_concepts(QualifiedConcept("univ", "Person"),
                                        include_root=False)
        assert all(concept.concept_name != "Person" for concept in subtree)

    def test_path_to_root(self, two_domain_soqa):
        tree = UnifiedTree(two_domain_soqa)
        path = tree.path_to_root(QualifiedConcept("univ", "Professor"))
        assert path == ["univ:Professor", "univ:Employee", "univ:Person",
                        "univ:Thing", "Super Thing"]

    def test_qualified_concept_display(self):
        assert str(QualifiedConcept("base1_0_daml", "Professor")) == \
            "base1_0_daml:Professor"
