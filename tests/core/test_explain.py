"""Unit tests for similarity explanation."""

import pytest

from repro.core.explain import explain_similarity
from repro.core.registry import Measure


class TestExplainSimilarity:
    def test_scores_match_facade(self, mini_sst):
        explanation = explain_similarity(mini_sst, "Professor", "univ",
                                         "Student", "univ")
        direct = mini_sst.get_similarities("Professor", "univ",
                                           "Student", "univ")
        assert explanation.scores == direct

    def test_taxonomy_evidence(self, mini_sst):
        explanation = explain_similarity(mini_sst, "Professor", "univ",
                                         "Student", "univ")
        assert explanation.first_path[0] == "univ:Professor"
        assert explanation.meeting_point == "univ:Person"
        assert explanation.distance == 3

    def test_feature_partition(self, mini_sst):
        explanation = explain_similarity(mini_sst, "Professor", "univ",
                                         "Employee", "univ")
        all_first = set(explanation.shared_features) | set(
            explanation.first_only_features)
        assert all_first == set(
            mini_sst.wrapper.feature_set(explanation.first))

    def test_shared_terms_for_related_concepts(self, mini_sst):
        explanation = explain_similarity(mini_sst, "Professor", "univ",
                                         "Employee", "univ")
        assert explanation.shared_terms  # both mention the university

    def test_name_identity_flag(self, mini_sst):
        explanation = explain_similarity(mini_sst, "Student", "univ",
                                         "STUDENT", "MINI")
        assert explanation.name_identical

    def test_custom_measure_list(self, mini_sst):
        explanation = explain_similarity(
            mini_sst, "Professor", "univ", "Student", "univ",
            measures=[Measure.TFIDF])
        assert list(explanation.scores) == ["TFIDF"]

    def test_text_report_sections(self, mini_sst):
        text = explain_similarity(mini_sst, "Professor", "univ",
                                  "Student", "univ").to_text()
        for expected in ("scores:", "taxonomy evidence:",
                         "feature evidence", "text evidence",
                         "meet at: univ:Person"):
            assert expected in text

    def test_browser_explain_command(self, mini_sst):
        import io

        from repro.browser.shell import run_browser

        output = io.StringIO()
        run_browser(mini_sst,
                    lines=["explain univ Professor univ Student"],
                    stdout=output)
        assert "taxonomy evidence:" in output.getvalue()

    def test_cli_explain(self, capsys, tmp_path):
        from repro.cli import main
        from tests.conftest import MINI_OWL

        path = tmp_path / "univ.owl"
        path.write_text(MINI_OWL, encoding="utf-8")
        assert main(["--ontology-file", str(path), "explain", "univ",
                     "Professor", "univ", "Student"]) == 0
        assert "Why univ:Professor" in capsys.readouterr().out
