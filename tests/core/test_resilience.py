"""Unit tests for the fault-tolerance primitives."""

import pytest

from repro.core import resilience, telemetry
from repro.core.resilience import (
    FAULTS_ENV,
    KNOWN_FAULT_SITES,
    AdmissionController,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    RetryPolicy,
    active_fault_plan,
    atomic_write_text,
    durable_replace,
    injected_faults,
    install_fault_plan,
    io_retry_policy,
    maybe_fire,
    maybe_raise,
    refresh_from_env,
)
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultSpecError,
    OverloadedError,
    ResilienceError,
    RetryExhaustedError,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails its first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, error: BaseException = OSError("io")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestRetryPolicy:
    def test_succeeds_without_retry(self):
        policy = RetryPolicy(sleep=lambda _: None)
        assert policy.call(lambda: 42) == 42

    def test_retries_until_success(self):
        flaky = Flaky(2)
        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3

    def test_exhaustion_chains_last_error(self):
        flaky = Flaky(10)
        policy = RetryPolicy(attempts=2, sleep=lambda _: None)
        with pytest.raises(RetryExhaustedError) as info:
            policy.call(flaky)
        assert flaky.calls == 2
        assert isinstance(info.value.last_error, OSError)
        assert isinstance(info.value.__cause__, OSError)

    def test_non_retryable_passes_through(self):
        flaky = Flaky(1, error=FileNotFoundError("gone"))
        policy = RetryPolicy(attempts=5, retryable=(OSError,),
                             non_retryable=(FileNotFoundError,),
                             sleep=lambda _: None)
        with pytest.raises(FileNotFoundError):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_unlisted_error_passes_through(self):
        policy = RetryPolicy(attempts=5, retryable=(OSError,),
                             sleep=lambda _: None)
        with pytest.raises(ValueError):
            policy.call(Flaky(1, error=ValueError("nope")))

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5)
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_uses_injected_rng(self):
        class Rng:
            def random(self):
                return 1.0  # maximal positive jitter

        policy = RetryPolicy(base_delay=0.1, jitter=0.5, rng=Rng())
        assert policy.delay(0) == pytest.approx(0.15)
        # Without an RNG the schedule is deterministic even with jitter.
        assert RetryPolicy(base_delay=0.1, jitter=0.5).delay(0) == 0.1

    def test_sleeps_between_attempts(self):
        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.05,
                             sleep=slept.append)
        policy.call(Flaky(2))
        assert slept == [0.05, 0.1]

    def test_counts_retries(self):
        telemetry.reset()
        policy = RetryPolicy(attempts=2, sleep=lambda _: None)
        with pytest.raises(RetryExhaustedError):
            policy.call(Flaky(5))
        registry = telemetry.get_registry()
        assert registry.value("resilience.retries") == 2
        assert registry.value("resilience.retry_exhausted") == 1

    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0},
        {"base_delay": -1},
        {"multiplier": 0.5},
        {"jitter": 2.0},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)

    def test_io_policy_fails_fast_on_missing_file(self):
        flaky = Flaky(1, error=FileNotFoundError("gone"))
        with pytest.raises(FileNotFoundError):
            io_retry_policy().call(flaky)
        assert flaky.calls == 1


class TestDeadline:
    def test_boundless(self):
        deadline = Deadline.never()
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # never raises

    def test_expiry(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert not deadline.expired()
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check("matrix batch")

    def test_nonpositive_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10,
                                 clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_and_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(11)
        assert breaker.allow()  # the single half-open probe
        assert not breaker.allow()  # everyone else still refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5)
        assert not breaker.allow()  # a fresh full timeout applies

    def test_call_wrapper(self):
        breaker = CircuitBreaker(failure_threshold=1, name="l2")
        with pytest.raises(ValueError):
            breaker.call(Flaky(5, error=ValueError("boom")))
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: "never runs")
        assert "l2" in str(info.value)

    def test_trip_is_counted(self):
        telemetry.reset()
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        assert telemetry.get_registry().value(
            "resilience.breaker.opened") == 1


class TestFaultPlan:
    def test_parse_counts_and_arguments(self):
        plan = FaultPlan.parse("worker.crash=2,task.slow=1@0.5")
        assert plan.remaining("worker.crash") == 2
        assert plan.remaining("task.slow") == 1
        assert plan.argument("task.slow", 0.25) == 0.5
        assert plan.argument("worker.crash", 0.25) == 0.25

    def test_bare_site_fires_once(self):
        plan = FaultPlan.parse("cache.corrupt")
        assert plan.should_fire("cache.corrupt")
        assert not plan.should_fire("cache.corrupt")
        assert plan.fired("cache.corrupt") == 1

    @pytest.mark.parametrize("spec", [
        "warp.core",            # unknown site
        "worker.crash=zero",    # non-integer count
        "worker.crash=0",       # count below one
        "",                     # empty spec
        " , ,",                 # whitespace only
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_known_sites_are_instrumented(self):
        # Guards the spec grammar docs against drift: every advertised
        # site parses.
        for site in KNOWN_FAULT_SITES:
            assert FaultPlan.parse(site).remaining(site) == 1


class TestGlobalPlan:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        previous = active_fault_plan()
        install_fault_plan(None)
        yield
        install_fault_plan(previous)

    def test_disarmed_by_default(self):
        assert maybe_fire("worker.crash") is None

    def test_injected_faults_context(self):
        with injected_faults("task.slow=1@0.1"):
            assert maybe_fire("task.slow") == 0.1
            assert maybe_fire("task.slow") is None
        assert active_fault_plan() is None

    def test_maybe_raise(self):
        with injected_faults("loader.io=1"):
            with pytest.raises(OSError):
                maybe_raise("loader.io", OSError, "injected")
            maybe_raise("loader.io", OSError, "quota spent")  # no raise

    def test_fired_faults_are_counted(self):
        telemetry.reset()
        with injected_faults("cache.corrupt=2"):
            maybe_fire("cache.corrupt")
            maybe_fire("cache.corrupt")
        registry = telemetry.get_registry()
        assert registry.value("faults.injected") == 2
        assert registry.value("faults.injected.cache.corrupt") == 2

    def test_refresh_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.crash=3")
        plan = refresh_from_env()
        assert plan is not None
        assert plan.remaining("worker.crash") == 3
        monkeypatch.delenv(FAULTS_ENV)
        assert refresh_from_env() is None

    def test_install_accepts_spec_strings(self):
        plan = install_fault_plan("task.slow")
        assert active_fault_plan() is plan
        assert resilience.maybe_fire("task.slow") is not None


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text(encoding="utf-8") == "second"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.txt"
        atomic_write_text(target, "content")
        assert target.read_text(encoding="utf-8") == "content"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x" * 4096)
        assert [entry.name for entry in tmp_path.iterdir()] == ["a.txt"]

    def test_failed_write_preserves_old_content(self, tmp_path,
                                                monkeypatch):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "old")

        def explode(source, destination):
            raise OSError("disk full")

        monkeypatch.setattr("repro.core.resilience.os.replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "old"
        assert [entry.name for entry in tmp_path.iterdir()] == [
            "artifact.json"]


class TestDurableReplace:
    def test_promotes_and_removes_temp(self, tmp_path):
        temp = tmp_path / ".store.import-1"
        target = tmp_path / "store.sstdb"
        temp.write_bytes(b"payload")
        result = durable_replace(temp, target)
        assert result == target
        assert target.read_bytes() == b"payload"
        assert not temp.exists()

    def test_replaces_existing_target(self, tmp_path):
        temp = tmp_path / ".store.import-1"
        target = tmp_path / "store.sstdb"
        target.write_bytes(b"old")
        temp.write_bytes(b"new")
        durable_replace(temp, target)
        assert target.read_bytes() == b"new"

    def test_missing_temp_raises_and_preserves_target(self, tmp_path):
        target = tmp_path / "store.sstdb"
        target.write_bytes(b"old")
        with pytest.raises(OSError):
            durable_replace(tmp_path / "absent", target)
        assert target.read_bytes() == b"old"


class TestAdmissionController:
    def test_validates_construction(self):
        with pytest.raises(ResilienceError):
            AdmissionController(0)
        with pytest.raises(ResilienceError):
            AdmissionController(2, queue_limit=0)
        with pytest.raises(ResilienceError):
            AdmissionController(2, max_wait=0)

    def test_queue_limit_defaults_to_four_per_worker(self):
        assert AdmissionController(3).queue_limit == 12

    def test_admits_until_queue_full_then_sheds_typed(self):
        clock = FakeClock()
        admission = AdmissionController(1, queue_limit=2, max_wait=None,
                                        clock=clock)
        tickets = [admission.try_admit() for _ in range(3)]
        assert admission.inflight() == 3
        assert admission.queue_depth() == 2
        assert admission.saturation() == pytest.approx(1.0)
        with pytest.raises(OverloadedError) as excinfo:
            admission.try_admit()
        assert excinfo.value.retry_after >= 1
        # Releasing one space readmits.
        admission.release(tickets.pop())
        admission.try_admit()

    def test_estimated_wait_shedding_uses_service_times(self):
        clock = FakeClock()
        admission = AdmissionController(1, queue_limit=100, max_wait=1.0,
                                        clock=clock)
        # One request takes 2s: the EWMA now predicts a 2s drain per
        # queued request.
        started = admission.try_admit()
        clock.advance(2.0)
        admission.release(started)
        # Fill the single worker, then one more to open a queue.
        admission.try_admit()
        admission.try_admit()
        shed_before = telemetry.get_registry().value(
            "server.shed.slow_drain")
        with pytest.raises(OverloadedError) as excinfo:
            admission.try_admit()
        assert excinfo.value.retry_after >= 2
        assert telemetry.get_registry().value(
            "server.shed.slow_drain") == shed_before + 1

    def test_no_wait_shedding_with_empty_queue(self):
        clock = FakeClock()
        admission = AdmissionController(2, queue_limit=4, max_wait=0.5,
                                        clock=clock)
        started = admission.try_admit()
        clock.advance(10.0)
        admission.release(started)
        # Workers are free: slow history alone must not shed.
        admission.try_admit()

    def test_telemetry_tracks_queue_depth_and_sheds(self):
        registry = telemetry.get_registry()
        admission = AdmissionController(1, queue_limit=1, max_wait=None)
        shed = registry.value("server.shed")
        admitted = registry.value("server.admitted")
        first = admission.try_admit()
        second = admission.try_admit()
        assert registry.value("server.queue_depth") == 1.0
        with pytest.raises(OverloadedError):
            admission.try_admit()
        assert registry.value("server.shed") == shed + 1
        assert registry.value("server.admitted") == admitted + 2
        admission.release(second)
        admission.release(first)
        assert registry.value("server.queue_depth") == 0.0
        assert admission.inflight() == 0

    def test_release_never_goes_negative(self):
        admission = AdmissionController(1)
        admission.release(admission.clock())
        assert admission.inflight() == 0
