"""Unit tests for :mod:`repro.core.telemetry`.

Covers metric semantics (counter / gauge / histogram), the registry's
snapshot/diff/merge protocol used by forked process workers, span
nesting and rendering, all three exposition formats, and the
``SST_TELEMETRY`` kill switch.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core import telemetry
from repro.core.telemetry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    render_span_tree,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts enabled with empty global registry/tracer."""
    telemetry.set_enabled(True)
    telemetry.reset()
    yield
    telemetry.reset()
    telemetry.refresh_from_env()


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_amounts(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0

    def test_merge_state_is_additive(self):
        counter = Counter("c")
        counter.inc(2)
        counter.merge_state(Counter("other").state())
        counter.merge_state(3)
        assert counter.value == 5


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(2.5)
        assert gauge.value == 12.5

    def test_merge_state_is_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(100)
        gauge.merge_state(7)
        assert gauge.value == 7


class TestHistogram:
    def test_bucket_assignment_is_inclusive_upper_bound(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        histogram.observe(1.0)   # lands in the first bucket (<= 1.0)
        histogram.observe(1.5)   # second bucket
        histogram.observe(99.0)  # overflow bucket
        assert histogram.counts == [1, 1, 1]
        assert histogram.total == 3
        assert histogram.sum == pytest.approx(101.5)

    def test_state_tracks_min_and_max(self):
        histogram = Histogram("h", boundaries=(1.0,))
        histogram.observe(0.25)
        histogram.observe(4.0)
        state = histogram.state()
        assert state["min"] == 0.25
        assert state["max"] == 4.0

    def test_rejects_unsorted_or_empty_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())

    def test_merge_state_is_additive(self):
        first = Histogram("h", boundaries=(1.0,))
        second = Histogram("h", boundaries=(1.0,))
        first.observe(0.5)
        second.observe(3.0)
        first.merge_state(second.state())
        assert first.counts == [1, 1]
        assert first.sum == pytest.approx(3.5)
        assert first.state()["min"] == 0.5
        assert first.state()["max"] == 3.0

    def test_merge_rejects_mismatched_boundaries(self):
        first = Histogram("h", boundaries=(1.0,))
        second = Histogram("h", boundaries=(2.0,))
        with pytest.raises(ValueError):
            first.merge_state(second.state())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_creation_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_value_shortcut(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        assert registry.value("a") == 3
        assert registry.value("missing") == 0
        assert registry.value("missing", default=None) is None

    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c").observe(0.1)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_diff_then_merge_reproduces_worker_delta(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(10)
        parent.histogram("lat", boundaries=(1.0,)).observe(0.5)
        base = parent.snapshot()
        # "Worker" work on top of the base:
        parent.counter("hits").inc(3)
        parent.gauge("size").set(7)
        parent.histogram("lat", boundaries=(1.0,)).observe(2.0)
        delta = parent.diff(base)
        assert delta["hits"] == ("counter", 3)
        assert delta["size"][1] == 7
        assert delta["lat"][1]["counts"] == [0, 1]
        other = MetricsRegistry()
        other.counter("hits").inc(100)
        other.merge(delta)
        assert other.value("hits") == 103
        assert other.value("size") == 7
        assert other.histogram("lat", boundaries=(1.0,)).total == 1

    def test_diff_skips_unchanged_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(1)
        base = registry.snapshot()
        assert registry.diff(base) == {}

    def test_as_dict_and_json(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.histogram("lat", boundaries=(1.0,)).observe(0.5)
        rendered = json.loads(registry.render_json())
        assert rendered["calls"] == 2
        assert rendered["lat"]["count"] == 1
        assert rendered["lat"]["mean"] == pytest.approx(0.5)
        assert rendered["lat"]["buckets"] == {"le_1": 1, "+Inf": 0}

    def test_render_text_aligns_and_summarizes(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.histogram("lat").observe(0.5)
        text = registry.render_text()
        assert "calls  2" in text
        assert "count=1" in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"

    def test_render_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("cache.l2.hits").inc(4)
        registry.histogram("lat", boundaries=(1.0,)).observe(0.5)
        registry.histogram("lat", boundaries=(1.0,)).observe(3.0)
        exposition = registry.render_prometheus()
        assert "# TYPE sst_cache_l2_hits counter" in exposition
        assert "sst_cache_l2_hits 4" in exposition
        # Buckets are cumulative, with a closing +Inf bucket.
        assert 'sst_lat_bucket{le="1"} 1' in exposition
        assert 'sst_lat_bucket{le="+Inf"} 2' in exposition
        assert "sst_lat_count 2" in exposition


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_spans_nest_into_a_tree(self):
        with telemetry.span("outer", kind="test"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("sibling"):
                pass
        roots = telemetry.get_tracer().drain()
        assert [root.name for root in roots] == ["outer"]
        outer = roots[0]
        assert outer.labels == {"kind": "test"}
        assert [child.name for child in outer.children] == ["inner",
                                                            "sibling"]
        assert outer.total_spans() == 3
        assert outer.find("sibling") is outer.children[1]
        assert outer.duration >= outer.children[0].duration

    def test_name_label_does_not_collide_with_span_name(self):
        # ``name`` is positional-only, so a ``name=`` label is legal.
        with telemetry.span("load", name="corpus"):
            pass
        (root,) = telemetry.get_tracer().drain()
        assert root.name == "load"
        assert root.labels == {"name": "corpus"}

    def test_current_span_tracks_the_stack(self):
        assert telemetry.current_span() is None
        with telemetry.span("outer") as outer:
            assert telemetry.current_span() is outer
            with telemetry.span("inner") as inner:
                assert telemetry.current_span() is inner
            assert telemetry.current_span() is outer
        assert telemetry.current_span() is None

    def test_explicit_parent_grafts_detached_spans(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        worker_span = Span(name="worker", duration=0.5,
                           labels={"pid": 123})
        tracer.attach_children(root, [worker_span])
        assert root.children == [worker_span]
        # With no parent the spans become additional roots.
        tracer.attach_children(None, [Span(name="stray")])
        names = [span.name for span in tracer.drain()]
        assert names == ["root", "stray"]

    def test_drain_empties_the_tracer(self):
        with telemetry.span("a"):
            pass
        assert len(telemetry.get_tracer().drain()) == 1
        assert telemetry.get_tracer().drain() == []

    def test_spans_are_picklable(self):
        span = Span(name="chunk", duration=0.25,
                    labels={"pid": 1}, children=[Span(name="leaf")])
        clone = pickle.loads(pickle.dumps(span))
        assert clone.as_dict() == span.as_dict()

    def test_render_span_tree(self):
        root = Span(name="outer", duration=0.1, labels={"k": "v"},
                    children=[Span(name="inner", duration=0.005)])
        rendered = render_span_tree([root])
        lines = rendered.splitlines()
        assert lines[0].startswith("outer")
        assert "100.000 ms" in lines[0]
        assert "k=v" in lines[0]
        assert lines[1].startswith("  inner")
        assert render_span_tree([]) == "(no spans recorded)"

    def test_render_span_tree_prunes_cheap_children(self):
        root = Span(name="outer", duration=1.0,
                    children=[Span(name="cheap", duration=0.001),
                              Span(name="costly", duration=0.9)])
        rendered = render_span_tree([root], min_fraction=0.1)
        assert "costly" in rendered
        assert "cheap" not in rendered


# ---------------------------------------------------------------------------
# Kill switch
# ---------------------------------------------------------------------------


class TestKillSwitch:
    def test_hooks_are_noops_when_disabled(self):
        telemetry.set_enabled(False)
        telemetry.count("c")
        telemetry.gauge("g", 1)
        telemetry.observe("h", 0.5)
        with telemetry.span("s"):
            pass
        assert telemetry.current_span() is None
        assert telemetry.get_registry().names() == []
        assert telemetry.get_tracer().drain() == []

    def test_disabled_span_is_a_shared_singleton(self):
        telemetry.set_enabled(False)
        assert telemetry.span("a") is telemetry.span("b")

    @pytest.mark.parametrize("value,expected", [
        ("off", False), ("0", False), ("false", False), ("no", False),
        ("OFF", False), ("", True), ("on", True), ("1", True),
    ])
    def test_refresh_from_env(self, monkeypatch, value, expected):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, value)
        assert telemetry.refresh_from_env() is expected
        assert telemetry.enabled() is expected

    def test_set_enabled_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "off")
        telemetry.refresh_from_env()
        telemetry.set_enabled(True)
        telemetry.count("c")
        assert telemetry.get_registry().value("c") == 1


# ---------------------------------------------------------------------------
# Instrumented library paths
# ---------------------------------------------------------------------------


class TestInstrumentedPaths:
    def test_cached_runner_reports_tier_counters(self, mini_sst):
        mini_sst.get_similarity("Professor", "univ", "Student", "univ",
                                "Shortest Path")
        registry = telemetry.get_registry()
        assert registry.value("cache.l1.misses") == 1
        assert registry.value("cache.l1.stores") == 1
        mini_sst.get_similarity("Professor", "univ", "Student", "univ",
                                "Shortest Path")
        assert registry.value("cache.l1.hits") == 1

    def test_facade_records_spans_and_gauges(self, mini_sst):
        with telemetry.span("test.root") as root:
            mini_sst.get_similarity_matrix(
                [("univ", "Professor"), ("univ", "Student")],
                "Shortest Path")
        assert root.find("facade.similarity_matrix") is not None
        assert root.find("parallel.score_pairs") is not None
        registry = telemetry.get_registry()
        assert registry.value("facade.get_similarity_matrix.calls") == 1
        assert registry.value("facade.unified_tree.nodes") > 0
        assert registry.value("soqa.ontologies_loaded") == 3

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
