"""Tests for the persistent L2 similarity cache and its facade wiring."""

import pickle
import sqlite3

import pytest

from repro.core import telemetry
from repro.core.cache import CachedRunner
from repro.core.diskcache import DiskCache, corpus_fingerprint
from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.resilience import injected_faults
from repro.core.results import QualifiedConcept

PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")


@pytest.fixture
def cache(tmp_path) -> DiskCache:
    return DiskCache(tmp_path / "cache")


class TestDiskCache:
    def test_roundtrip(self, cache):
        assert cache.get("fp", "m", "o1", "a", "o2", "b") is None
        cache.put("fp", "m", "o1", "a", "o2", "b", 0.5)
        cache.flush()
        assert cache.get("fp", "m", "o1", "a", "o2", "b") == 0.5

    def test_pending_rows_not_visible_before_flush(self, cache):
        cache.put("fp", "m", "o1", "a", "o2", "b", 0.5)
        assert cache.stats()["pending"] == 1
        cache.flush()
        assert cache.stats()["pending"] == 0
        assert cache.stats()["entries"] == 1

    def test_fingerprint_scopes_entries(self, cache):
        cache.put("fp1", "m", "o", "a", "o", "b", 0.5)
        cache.flush()
        assert cache.get("fp2", "m", "o", "a", "o", "b") is None

    def test_measure_scopes_entries(self, cache):
        cache.put("fp", "m1", "o", "a", "o", "b", 0.5)
        cache.flush()
        assert cache.get("fp", "m2", "o", "a", "o", "b") is None

    def test_replace_updates_value(self, cache):
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        cache.put("fp", "m", "o", "a", "o", "b", 0.75)
        cache.flush()
        assert cache.get("fp", "m", "o", "a", "o", "b") == 0.75
        assert cache.stats()["entries"] == 1

    def test_clear_all_and_by_fingerprint(self, cache):
        cache.put("fp1", "m", "o", "a", "o", "b", 0.1)
        cache.put("fp2", "m", "o", "a", "o", "b", 0.2)
        cache.flush()
        assert cache.clear("fp1") == 1
        assert cache.get("fp2", "m", "o", "a", "o", "b") == 0.2
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_stats_without_file(self, tmp_path):
        cache = DiskCache(tmp_path / "never-created")
        statistics = cache.stats()
        assert statistics["exists"] is False
        assert statistics["entries"] == 0

    def test_persists_across_instances(self, tmp_path):
        first = DiskCache(tmp_path / "cache")
        first.put("fp", "m", "o", "a", "o", "b", 0.5)
        first.close()
        second = DiskCache(tmp_path / "cache")
        assert second.get("fp", "m", "o", "a", "o", "b") == 0.5

    def test_pickle_drops_connection(self, cache):
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        cache.flush()
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("fp", "m", "o", "a", "o", "b") == 0.5

    def test_unusable_directory_never_breaks_lookups(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        cache = DiskCache(blocker / "cache")
        assert cache.get("fp", "m", "o", "a", "o", "b") is None
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        assert cache.flush() == 0


class TestSelfHealing:
    def _corrupt(self, cache: DiskCache) -> None:
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.path.write_bytes(b"torn write garbage\0" * 16)

    def test_corrupt_file_is_quarantined_and_rebuilt(self, cache):
        telemetry.reset()
        self._corrupt(cache)
        assert cache.get("fp", "m", "o", "a", "o", "b") is None
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        assert cache.flush() == 1
        assert cache.get("fp", "m", "o", "a", "o", "b") == 0.5
        assert cache.quarantined == 1
        evidence = list(cache.directory.glob("*.corrupt-*"))
        assert len(evidence) == 1
        assert telemetry.get_registry().value("cache.l2.quarantined") == 1

    def test_schema_version_mismatch_is_quarantined(self, cache):
        cache.directory.mkdir(parents=True, exist_ok=True)
        foreign = sqlite3.connect(str(cache.path))
        foreign.execute("PRAGMA user_version = 99")
        foreign.commit()
        foreign.close()
        assert cache.get("fp", "m", "o", "a", "o", "b") is None
        assert cache.quarantined == 1

    def test_repeated_quarantines_keep_all_evidence(self, cache):
        for _ in range(2):
            # Close first: a live WAL connection would checkpoint over
            # the scribbled bytes and accidentally repair the file.
            cache.close()
            self._corrupt(cache)
            cache.get("fp", "m", "o", "a", "o", "b")
        assert cache.quarantined == 2
        assert len(list(cache.directory.glob("*.corrupt-*"))) == 2

    def test_midrun_corruption_heals_on_next_access(self, cache):
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        cache.flush()

        class Broken:
            def execute(self, *args):
                raise sqlite3.DatabaseError("malformed")

            def close(self):
                pass

        cache._connection = Broken()
        assert cache.get("fp", "m", "o", "a", "o", "b") is None
        assert cache.quarantined == 1
        assert cache._connection is None
        # The next access rebuilds a fresh, working database.
        cache.put("fp", "m", "o", "a", "o", "b", 0.25)
        assert cache.flush() == 1
        assert cache.get("fp", "m", "o", "a", "o", "b") == 0.25

    def test_breaker_fails_open_after_repeated_failures(self, tmp_path):
        telemetry.reset()
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        cache = DiskCache(blocker / "cache")
        for _ in range(cache.breaker.failure_threshold):
            assert cache.get("fp", "m", "o", "a", "o", "b") is None
        assert cache.breaker.state == cache.breaker.OPEN
        # Refused without touching the broken path; pending writes drop.
        assert cache.get("fp", "m", "o", "a", "o", "b") is None
        cache.put("fp", "m", "o", "a", "o", "b", 0.5)
        assert cache.flush() == 0
        registry = telemetry.get_registry()
        assert registry.value("cache.l2.failopen") >= 2
        assert registry.value("resilience.breaker.opened") == 1

    def test_cache_corrupt_fault_injection_heals(self, tmp_path):
        telemetry.reset()
        with injected_faults("cache.corrupt=1"):
            cache = DiskCache(tmp_path / "cache")
            cache.put("fp", "m", "o", "a", "o", "b", 0.5)
            assert cache.flush() == 1
            assert cache.get("fp", "m", "o", "a", "o", "b") == 0.5
        assert cache.quarantined <= 1  # nothing to quarantine pre-file
        registry = telemetry.get_registry()
        assert registry.value("faults.injected.cache.corrupt") == 1

    def test_pickle_resets_healing_state(self, cache):
        cache.breaker.record_failure()
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.breaker.state == clone.breaker.CLOSED
        assert clone.quarantined == 0


class TestCorpusFingerprint:
    def test_stable_for_same_corpus(self, mini_soqa):
        assert (corpus_fingerprint(mini_soqa, "super_thing")
                == corpus_fingerprint(mini_soqa, "super_thing"))

    def test_changes_with_strategy(self, mini_soqa):
        assert (corpus_fingerprint(mini_soqa, "super_thing")
                != corpus_fingerprint(mini_soqa, "merged_thing"))

    def test_changes_with_content(self, mini_soqa):
        before = corpus_fingerprint(mini_soqa, "super_thing")
        mini_soqa.load_text("(defmodule \"X\")\n(in-module \"X\")\n"
                            "(defconcept THING)", "X", "PowerLoom")
        assert corpus_fingerprint(mini_soqa, "super_thing") != before


class TestCachedRunnerL2:
    def test_symmetric_canonicalization_applies_to_l2(self, mini_sst,
                                                      tmp_path):
        """The unordered pair shares one on-disk row (satellite 2)."""
        l2 = DiskCache(tmp_path / "cache")
        inner = mini_sst.registry.create(Measure.SHORTEST_PATH,
                                         mini_sst.wrapper)
        first = CachedRunner(inner, l2=l2, fingerprint="fp")
        value = first.run(PROFESSOR, STUDENT)
        first.flush()
        # A fresh runner (empty L1) sees the swapped order: the
        # canonical key must hit the same disk row.
        second = CachedRunner(inner, l2=l2, fingerprint="fp")
        assert second.run(STUDENT, PROFESSOR) == value
        assert second.l2_hits == 1
        assert second.misses == 1  # L1 was cold; L2 served the value
        assert l2.stats()["entries"] == 1

    def test_l2_miss_falls_through_to_compute(self, mini_sst, tmp_path):
        l2 = DiskCache(tmp_path / "cache")
        cached = CachedRunner(
            mini_sst.registry.create(Measure.SHORTEST_PATH,
                                     mini_sst.wrapper),
            l2=l2, fingerprint="fp")
        cached.run(PROFESSOR, STUDENT)
        assert cached.l2_misses == 1
        assert cached.l2_hits == 0

    def test_different_fingerprint_invalidates(self, mini_sst, tmp_path):
        l2 = DiskCache(tmp_path / "cache")
        inner = mini_sst.registry.create(Measure.SHORTEST_PATH,
                                         mini_sst.wrapper)
        stale = CachedRunner(inner, l2=l2, fingerprint="old")
        stale.run(PROFESSOR, STUDENT)
        stale.flush()
        fresh = CachedRunner(inner, l2=l2, fingerprint="new")
        fresh.run(PROFESSOR, STUDENT)
        assert fresh.l2_hits == 0
        assert fresh.l2_misses == 1

    def test_merge_persists_worker_entries(self, mini_sst, tmp_path):
        l2 = DiskCache(tmp_path / "cache")
        inner = mini_sst.registry.create(Measure.SHORTEST_PATH,
                                         mini_sst.wrapper)
        cached = CachedRunner(inner, l2=l2, fingerprint="fp")
        key = cached.cache_key(PROFESSOR, STUDENT)
        cached.merge([(key, 0.25)], hits=0, misses=1)
        cached.flush()
        reader = CachedRunner(inner, l2=l2, fingerprint="fp")
        assert reader.run(PROFESSOR, STUDENT) == 0.25
        assert reader.l2_hits == 1

    def test_clear_resets_l2_counters(self, mini_sst, tmp_path):
        l2 = DiskCache(tmp_path / "cache")
        cached = CachedRunner(
            mini_sst.registry.create(Measure.SHORTEST_PATH,
                                     mini_sst.wrapper),
            l2=l2, fingerprint="fp")
        cached.run(PROFESSOR, STUDENT)
        cached.clear()
        assert cached.l2_hits == 0
        assert cached.l2_misses == 0


class TestFacadeWiring:
    def test_facade_runners_are_cached(self, mini_sst):
        runner = mini_sst.runner(Measure.SHORTEST_PATH)
        assert isinstance(runner, CachedRunner)
        assert runner.l2 is not None  # SST_CACHE_DIR is set in tests

    def test_cache_false_returns_raw_runner(self, mini_soqa):
        sst = SOQASimPackToolkit(mini_soqa, cache=False)
        assert not isinstance(sst.runner(Measure.SHORTEST_PATH),
                              CachedRunner)
        assert sst.disk_cache is None

    def test_no_cache_environment_disables(self, mini_soqa, monkeypatch):
        monkeypatch.setenv("SST_NO_CACHE", "1")
        sst = SOQASimPackToolkit(mini_soqa)
        assert not isinstance(sst.runner(Measure.SHORTEST_PATH),
                              CachedRunner)

    def test_warm_start_across_facades(self, mini_soqa, tmp_path):
        directory = tmp_path / "shared"
        cold = SOQASimPackToolkit(mini_soqa, cache_dir=directory)
        value = cold.get_similarity("Professor", "univ", "Student", "univ",
                                    Measure.SHORTEST_PATH)
        cold.flush_caches()
        warm = SOQASimPackToolkit(mini_soqa, cache_dir=directory)
        assert warm.get_similarity("Professor", "univ", "Student", "univ",
                                   Measure.SHORTEST_PATH) == value
        runner = warm.runner(Measure.SHORTEST_PATH)
        assert runner.l2_hits == 1

    def test_cache_statistics_shape(self, mini_sst):
        mini_sst.get_similarity("Professor", "univ", "Student", "univ",
                                Measure.SHORTEST_PATH)
        statistics = mini_sst.cache_statistics()
        assert statistics["enabled"] is True
        assert statistics["l1"]["misses"] >= 1
        assert statistics["l2"] is not None
        assert "hit_rate" in statistics["l2"]

    def test_refresh_recomputes_fingerprint(self, mini_sst):
        before = mini_sst.fingerprint()
        mini_sst.load_ontology_text(
            "(defmodule \"Y\")\n(in-module \"Y\")\n(defconcept THING)",
            "Y", "PowerLoom")
        assert mini_sst.fingerprint() != before
