"""Tests for the fingerprint-sharded L2 cache."""

import pickle
import zlib

import pytest

from repro.core.diskcache import DiskCache
from repro.core.shardedcache import (
    DEFAULT_SHARDS,
    SHARDS_ENV,
    ShardedDiskCache,
    resolve_shard_count,
    shard_filename,
)
from repro.errors import SSTCoreError

FP_A = "a" * 64
FP_B = "b" * 64


def row(fingerprint, concept="x", value=0.5):
    return (fingerprint, "Lin", "ont", concept, "ont", concept, value)


@pytest.fixture
def cache(tmp_path):
    cache = ShardedDiskCache(tmp_path, shards=4)
    yield cache
    cache.close()


class TestShardCount:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shard_count() == DEFAULT_SHARDS

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "9")
        assert resolve_shard_count() == 9

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "9")
        assert resolve_shard_count(2) == 2

    def test_clamped_to_one(self):
        assert resolve_shard_count(0) == 1
        assert resolve_shard_count(-5) == 1

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "lots")
        with pytest.raises(SSTCoreError):
            resolve_shard_count()


class TestRouting:
    def test_shard_zero_keeps_legacy_filename(self):
        assert shard_filename(0) == "similarity-cache.sqlite"
        assert shard_filename(3) == "similarity-cache-3.sqlite"

    def test_fingerprint_routes_to_one_shard(self, cache):
        shard = cache.shard_for(FP_A)
        assert shard is cache.shard_for(FP_A)  # stable
        expected = zlib.crc32(FP_A.encode()) % cache.shard_count
        assert shard is cache.shards[expected]

    def test_put_get_round_trip(self, cache):
        cache.put(*row(FP_A)[:6], 0.75)
        cache.flush()
        assert cache.get(*row(FP_A)[:6]) == 0.75
        assert cache.get(*row(FP_B)[:6]) is None

    def test_put_many_groups_by_fingerprint(self, cache):
        rows = [row(FP_A, f"a{i}") for i in range(5)] \
            + [row(FP_B, f"b{i}") for i in range(5)]
        cache.put_many(rows)
        cache.flush()
        for item in rows:
            assert cache.get(*item[:6]) == item[6]
        # All of one fingerprint's rows landed in exactly one shard.
        holding = [shard for shard in cache.shards
                   if shard.stats()["entries"]]
        assert len(holding) == len({
            zlib.crc32(fp.encode()) % cache.shard_count
            for fp in (FP_A, FP_B)})

    def test_one_shard_config_is_legacy_layout(self, tmp_path):
        sharded = ShardedDiskCache(tmp_path, shards=1)
        sharded.put(*row(FP_A)[:6], 0.25)
        sharded.flush()
        sharded.close()
        legacy = DiskCache(tmp_path)  # the pre-sharding single file
        assert legacy.get(*row(FP_A)[:6]) == 0.25
        legacy.close()

    def test_legacy_single_file_stays_readable(self, tmp_path):
        legacy = DiskCache(tmp_path)
        legacy.put(*row(FP_A)[:6], 0.125)
        legacy.flush()
        legacy.close()
        sharded = ShardedDiskCache(tmp_path, shards=4)
        # Only hits when FP_A routes to shard 0 — but clear() must
        # remove the row wherever it lives.
        removed = sharded.clear()
        assert removed == 1
        sharded.close()


class TestMaintenance:
    def test_stats_aggregates_and_breaks_down(self, cache):
        cache.put_many([row(FP_A, f"c{i}") for i in range(3)])
        cache.flush()
        stats = cache.stats()
        assert stats["shards"] == 4
        assert stats["entries"] == 3
        assert stats["fingerprints"] == 1
        assert stats["exists"] is True
        assert len(stats["per_shard"]) == 4
        assert sum(s["entries"] for s in stats["per_shard"]) == 3

    def test_stats_on_empty_directory(self, tmp_path):
        stats = ShardedDiskCache(tmp_path, shards=2).stats()
        assert stats["exists"] is False
        assert stats["entries"] == 0

    def test_clear_spans_all_shards(self, cache):
        cache.put_many([row(FP_A), row(FP_B, "y")])
        cache.flush()
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_compact_reports_sizes(self, cache):
        cache.put_many([row(FP_A, f"c{i}") for i in range(10)])
        cache.flush()
        result = cache.compact()
        assert result["before_bytes"] > 0
        assert result["after_bytes"] > 0
        assert len(result["per_shard"]) == 4

    def test_prune_bounds_total_size(self, tmp_path):
        cache = ShardedDiskCache(tmp_path, shards=2)
        fingerprints = [format(i, "064x") for i in range(6)]
        for fingerprint in fingerprints:
            cache.put_many([row(fingerprint, f"c{i}") for i in range(50)])
            cache.flush()  # one generation per corpus
        cache.compact()  # checkpoint WALs so size_bytes is the real size
        before = cache.stats()["size_bytes"]
        result = cache.prune(before // 4)
        assert result["removed_fingerprints"] >= 1
        assert result["removed_rows"] >= 50
        assert result["size_bytes"] < before
        # Surviving rows still readable.
        cache.close()

    def test_prune_noop_under_budget(self, cache):
        cache.put(*row(FP_A)[:6], 0.5)
        cache.flush()
        result = cache.prune(10 ** 9)
        assert result["removed_rows"] == 0
        assert cache.get(*row(FP_A)[:6]) == 0.5


class TestWorkerContract:
    def test_read_only_fans_out(self, cache):
        cache.read_only = True
        assert all(shard.read_only for shard in cache.shards)
        cache.put(*row(FP_A)[:6], 0.5)
        cache.flush()
        assert cache.get(*row(FP_A)[:6]) is None  # write was dropped
        cache.read_only = False
        assert not any(shard.read_only for shard in cache.shards)

    def test_pickle_round_trip(self, cache):
        cache.put(*row(FP_A)[:6], 0.5)
        cache.flush()
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.shard_count == cache.shard_count
        assert clone.get(*row(FP_A)[:6]) == 0.5
        clone.close()

    def test_quarantined_sums_over_shards(self, cache):
        assert cache.quarantined == 0
