"""Unit tests for combined (amalgamated) measures."""

import pytest

from repro.core.combined import CombinedMeasureRunner, combined_factory
from repro.core.registry import Measure
from repro.errors import SSTCoreError


class TestCombinedRunner:
    def test_weighted_average_default(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "lin+tfidf", [Measure.LIN, Measure.TFIDF])
        lin = mini_sst.get_similarity("Professor", "univ", "Student",
                                      "univ", Measure.LIN)
        tfidf = mini_sst.get_similarity("Professor", "univ", "Student",
                                        "univ", Measure.TFIDF)
        combined = mini_sst.get_similarity("Professor", "univ", "Student",
                                           "univ", measure_id)
        assert combined == pytest.approx((lin + tfidf) / 2)

    def test_custom_weights(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "weighted", [Measure.LIN, Measure.TFIDF], weights=[3.0, 1.0])
        lin = mini_sst.get_similarity("Professor", "univ", "Student",
                                      "univ", Measure.LIN)
        tfidf = mini_sst.get_similarity("Professor", "univ", "Student",
                                        "univ", Measure.TFIDF)
        combined = mini_sst.get_similarity("Professor", "univ", "Student",
                                           "univ", measure_id)
        assert combined == pytest.approx((3 * lin + tfidf) / 4)

    def test_maximum_amalgamation(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "max-combo", [Measure.LIN, Measure.TFIDF],
            amalgamation="maximum")
        values = [mini_sst.get_similarity("Professor", "univ", "Student",
                                          "univ", measure)
                  for measure in (Measure.LIN, Measure.TFIDF)]
        combined = mini_sst.get_similarity("Professor", "univ", "Student",
                                           "univ", measure_id)
        assert combined == pytest.approx(max(values))

    def test_minimum_amalgamation(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "min-combo", [Measure.LIN, Measure.TFIDF],
            amalgamation="minimum")
        values = [mini_sst.get_similarity("Professor", "univ", "Student",
                                          "univ", measure)
                  for measure in (Measure.LIN, Measure.TFIDF)]
        combined = mini_sst.get_similarity("Professor", "univ", "Student",
                                           "univ", measure_id)
        assert combined == pytest.approx(min(values))

    def test_combined_identity_is_one(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "id-combo", [Measure.LIN, Measure.TFIDF,
                         Measure.SHORTEST_PATH])
        assert mini_sst.get_similarity("Student", "univ", "Student",
                                       "univ", measure_id) == 1.0

    def test_combined_name_lists_parts(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "named-combo", [Measure.LIN, Measure.TFIDF])
        runner = mini_sst.runner(measure_id)
        assert runner.name == "Combined(Lin, TFIDF)"


class TestValidation:
    def test_raw_resnik_rejected(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "bad-combo", [Measure.RESNIK, Measure.TFIDF])
        with pytest.raises(SSTCoreError, match="normalized"):
            mini_sst.runner(measure_id)

    def test_normalized_resnik_accepted(self, mini_sst):
        measure_id = mini_sst.register_combined_measure(
            "ok-combo", [Measure.RESNIK_NORMALIZED, Measure.TFIDF])
        value = mini_sst.get_similarity("Professor", "univ", "Student",
                                        "univ", measure_id)
        assert 0.0 <= value <= 1.0

    def test_empty_runner_list_rejected(self, mini_sst):
        with pytest.raises(SSTCoreError, match="at least one"):
            CombinedMeasureRunner(mini_sst.wrapper, [])

    def test_weight_count_mismatch_rejected(self, mini_sst):
        factory = combined_factory([Measure.LIN], mini_sst.registry,
                                   weights=[1.0, 2.0])
        with pytest.raises(SSTCoreError, match="weights"):
            factory(mini_sst.wrapper)

    def test_negative_weight_rejected(self, mini_sst):
        factory = combined_factory([Measure.LIN], mini_sst.registry,
                                   weights=[-1.0])
        with pytest.raises(SSTCoreError, match="non-negative"):
            factory(mini_sst.wrapper)

    def test_all_zero_weights_rejected(self, mini_sst):
        factory = combined_factory([Measure.LIN], mini_sst.registry,
                                   weights=[0.0])
        with pytest.raises(SSTCoreError, match="positive"):
            factory(mini_sst.wrapper)

    def test_unknown_amalgamation_rejected(self, mini_sst):
        factory = combined_factory([Measure.LIN], mini_sst.registry,
                                   amalgamation="median")
        with pytest.raises(SSTCoreError, match="amalgamation"):
            factory(mini_sst.wrapper)
