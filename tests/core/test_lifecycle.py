"""Unit tests for the service lifecycle state machine."""

import asyncio
import signal
import threading

import pytest

from repro.core import telemetry
from repro.core.lifecycle import (
    DEGRADED,
    DRAINING,
    READY,
    STARTING,
    STOPPED,
    ServiceLifecycle,
    install_signal_drain,
)
from repro.errors import LifecycleError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def counter(name: str) -> int:
    return telemetry.get_registry().value(name)


class TestStateMachine:
    def test_starts_in_starting_and_not_ready(self):
        lifecycle = ServiceLifecycle()
        assert lifecycle.state == STARTING
        assert not lifecycle.is_ready()
        assert not lifecycle.accepts_work()

    def test_happy_path_to_stopped(self):
        lifecycle = ServiceLifecycle()
        assert lifecycle.mark_ready()
        assert lifecycle.is_ready()
        assert lifecycle.accepts_work()
        assert lifecycle.begin_drain("rollout")
        assert lifecycle.state == DRAINING
        assert not lifecycle.accepts_work()
        assert lifecycle.reason == "rollout"
        assert lifecycle.mark_stopped()
        assert lifecycle.state == STOPPED

    def test_degrade_and_restore_cycle(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.degrade("queue full")
        assert lifecycle.state == DEGRADED
        # Degraded keeps serving (admission sheds per request) but is
        # no longer advertised as ready.
        assert lifecycle.accepts_work()
        assert not lifecycle.is_ready()
        assert lifecycle.reason == "queue full"
        assert lifecycle.restore()
        assert lifecycle.state == READY

    def test_degrade_only_from_ready(self):
        lifecycle = ServiceLifecycle()
        assert not lifecycle.degrade()  # still STARTING
        lifecycle.mark_ready()
        lifecycle.begin_drain()
        # A late shed during the drain must not derail it.
        assert not lifecycle.degrade()
        assert lifecycle.state == DRAINING

    def test_restore_only_from_degraded(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_ready()
        assert not lifecycle.restore()
        assert lifecycle.state == READY

    def test_begin_drain_true_only_for_first_caller(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_ready()
        started = counter("server.drain.started")
        assert lifecycle.begin_drain()
        assert not lifecycle.begin_drain()
        assert counter("server.drain.started") == started + 1

    def test_illegal_transitions_raise(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_ready()
        lifecycle.begin_drain()
        with pytest.raises(LifecycleError) as excinfo:
            lifecycle.mark_ready()
        assert excinfo.value.current == DRAINING
        assert excinfo.value.requested == READY
        lifecycle.mark_stopped()
        with pytest.raises(LifecycleError):
            lifecycle.mark_ready()

    def test_stopped_is_terminal_and_idempotent(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_stopped()
        assert not lifecycle.mark_stopped()
        assert not lifecycle.begin_drain()

    def test_seconds_in_state_tracks_the_clock(self):
        clock = FakeClock()
        lifecycle = ServiceLifecycle(clock=clock)
        clock.advance(5.0)
        assert lifecycle.seconds_in_state() == pytest.approx(5.0)
        lifecycle.mark_ready()
        assert lifecycle.seconds_in_state() == pytest.approx(0.0)
        clock.advance(2.0)
        snapshot = lifecycle.snapshot()
        assert snapshot["state"] == READY
        assert snapshot["seconds_in_state"] == pytest.approx(2.0)

    def test_transitions_surface_in_telemetry(self):
        lifecycle = ServiceLifecycle()
        transitions = counter("server.lifecycle.transitions")
        lifecycle.mark_ready()
        assert counter("server.lifecycle.transitions") == transitions + 1
        assert telemetry.get_registry().value("server.ready") == 1.0
        lifecycle.begin_drain()
        assert telemetry.get_registry().value("server.ready") == 0.0
        assert telemetry.get_registry().value("server.draining") == 1.0


class TestListeners:
    def test_listener_sees_every_edge_outside_the_lock(self):
        lifecycle = ServiceLifecycle()
        seen = []
        lifecycle.on_transition(
            lambda old, new: seen.append((old, new)))
        lifecycle.mark_ready()
        lifecycle.begin_drain()
        assert seen == [(STARTING, READY), (READY, DRAINING)]

    def test_failing_listener_cannot_block_the_transition(self):
        lifecycle = ServiceLifecycle()
        seen = []

        def explode(old, new):
            raise RuntimeError("listener dies")

        lifecycle.on_transition(explode)
        lifecycle.on_transition(lambda old, new: seen.append(new))
        errors = counter("server.lifecycle.listener_errors")
        assert lifecycle.mark_ready()
        assert lifecycle.state == READY
        assert seen == [READY]
        assert counter("server.lifecycle.listener_errors") == errors + 1

    def test_thread_safety_single_drain_winner(self):
        lifecycle = ServiceLifecycle()
        lifecycle.mark_ready()
        wins = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            if lifecycle.begin_drain():
                wins.append(threading.current_thread().name)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert lifecycle.state == DRAINING


class TestSignalInstall:
    def test_installs_on_the_loop_and_fires_callback(self):
        fired = []

        async def scenario():
            loop = asyncio.get_running_loop()
            installed = install_signal_drain(loop, lambda: fired.append(1),
                                             signals=(signal.SIGUSR1,))
            assert installed == [signal.SIGUSR1]
            signal.raise_signal(signal.SIGUSR1)
            await asyncio.sleep(0.05)
            loop.remove_signal_handler(signal.SIGUSR1)

        asyncio.run(scenario())
        assert fired == [1]

    def test_background_thread_without_loop_support_installs_nothing(self):
        class NoSignalLoop:
            def add_signal_handler(self, signum, callback):
                raise NotImplementedError

        result = []

        def target():
            result.append(install_signal_drain(
                NoSignalLoop(), lambda: None,
                signals=(signal.SIGUSR1,)))

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        # Off the main thread signal.signal would raise ValueError, so
        # nothing may be installed — the embedded server keeps its
        # explicit request_drain() path instead.
        assert result == [[]]
