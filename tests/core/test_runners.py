"""Unit tests for the MeasureRunner implementations."""

import pytest

from repro.core.registry import Measure
from repro.errors import UnknownMeasureError

PROFESSOR = ("Professor", "univ")
STUDENT = ("Student", "univ")
COURSE = ("Course", "univ")
EMPLOYEE_PLOOM = ("EMPLOYEE", "MINI")

ALL_MEASURES = list(Measure)


def sim(sst, first, second, measure):
    return sst.get_similarity(first[0], first[1], second[0], second[1],
                              measure)


class TestCommonRunnerProperties:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_identity_is_maximal(self, mini_sst, measure):
        self_value = sim(mini_sst, PROFESSOR, PROFESSOR, measure)
        other_value = sim(mini_sst, PROFESSOR, COURSE, measure)
        assert self_value >= other_value

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_symmetry(self, mini_sst, measure):
        forward = sim(mini_sst, PROFESSOR, STUDENT, measure)
        backward = sim(mini_sst, STUDENT, PROFESSOR, measure)
        assert forward == pytest.approx(backward)

    @pytest.mark.parametrize("measure",
                             [m for m in ALL_MEASURES
                              if m != Measure.RESNIK])
    def test_normalized_range(self, mini_sst, measure):
        for pair in [(PROFESSOR, STUDENT), (PROFESSOR, EMPLOYEE_PLOOM),
                     (COURSE, EMPLOYEE_PLOOM)]:
            value = sim(mini_sst, *pair, measure)
            assert 0.0 <= value <= 1.0
        assert mini_sst.runner(measure).is_normalized()

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_identity_is_one_for_normalized(self, mini_sst, measure):
        if mini_sst.runner(measure).is_normalized():
            assert sim(mini_sst, STUDENT, STUDENT,
                       measure) == pytest.approx(1.0)


class TestDistanceRunners:
    def test_shortest_path_inverse_form(self, mini_sst):
        # Professor and Student are 3 edges apart: 1 / (1 + 3).
        assert sim(mini_sst, PROFESSOR, STUDENT,
                   Measure.SHORTEST_PATH) == pytest.approx(0.25)

    def test_conceptual_similarity_cross_ontology_positive(self, mini_sst):
        value = sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM,
                    Measure.CONCEPTUAL_SIMILARITY)
        assert 0.0 < value < 0.5

    def test_conceptual_similarity_decreases_with_depth(self, mini_sst):
        shallow = sim(mini_sst, ("Person", "univ"), EMPLOYEE_PLOOM,
                      Measure.CONCEPTUAL_SIMILARITY)
        deep = sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM,
                   Measure.CONCEPTUAL_SIMILARITY)
        assert shallow > deep

    def test_edge_measure_uses_eq5(self, mini_sst):
        max_depth = mini_sst.wrapper.taxonomy.max_depth()
        expected = (2 * max_depth - 3) / (2 * max_depth)
        assert sim(mini_sst, PROFESSOR, STUDENT,
                   Measure.EDGE) == pytest.approx(expected)

    def test_leacock_chodorow_monotone(self, mini_sst):
        near = sim(mini_sst, PROFESSOR, ("Employee", "univ"),
                   Measure.LEACOCK_CHODOROW)
        far = sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM,
                  Measure.LEACOCK_CHODOROW)
        assert near > far


class TestInformationRunners:
    def test_lin_same_ontology_positive(self, mini_sst):
        assert sim(mini_sst, PROFESSOR, STUDENT, Measure.LIN) > 0.0

    def test_lin_cross_ontology_zero(self, mini_sst):
        """The MICS of cross-ontology pairs is Super Thing with IC 0."""
        assert sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM, Measure.LIN) == 0.0

    def test_resnik_raw_self_value_unbounded(self, mini_sst):
        value = sim(mini_sst, PROFESSOR, PROFESSOR, Measure.RESNIK)
        assert value > 1.0  # raw IC in bits, as in Table 1
        assert not mini_sst.runner(Measure.RESNIK).is_normalized()

    def test_resnik_cross_ontology_zero(self, mini_sst):
        assert sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM,
                   Measure.RESNIK) == 0.0

    def test_resnik_normalized_scales_raw(self, mini_sst):
        raw = sim(mini_sst, PROFESSOR, STUDENT, Measure.RESNIK)
        normalized = sim(mini_sst, PROFESSOR, STUDENT,
                         Measure.RESNIK_NORMALIZED)
        assert normalized == pytest.approx(
            raw / mini_sst.wrapper.information_content().max_ic())

    def test_jiang_conrath_monotone(self, mini_sst):
        sibling = sim(mini_sst, PROFESSOR, STUDENT, Measure.JIANG_CONRATH)
        cross = sim(mini_sst, PROFESSOR, EMPLOYEE_PLOOM,
                    Measure.JIANG_CONRATH)
        assert sibling > cross


class TestLexicalRunners:
    def test_tfidf_related_above_unrelated(self, mini_sst):
        related = sim(mini_sst, PROFESSOR, ("Employee", "univ"),
                      Measure.TFIDF)
        unrelated = sim(mini_sst, PROFESSOR, ("COURSE", "MINI"),
                        Measure.TFIDF)
        assert related > unrelated

    def test_name_levenshtein_case_insensitive(self, mini_sst):
        # univ:Student vs MINI:STUDENT differ only by case.
        assert sim(mini_sst, STUDENT, ("STUDENT", "MINI"),
                   Measure.NAME_LEVENSHTEIN) == pytest.approx(1.0)

    def test_jaro_winkler_favors_shared_prefix(self, mini_sst):
        close = sim(mini_sst, PROFESSOR, ("PERSON", "MINI"),
                    Measure.JARO_WINKLER)
        far = sim(mini_sst, PROFESSOR, ("COURSE", "MINI"),
                  Measure.JARO_WINKLER)
        assert close > far

    def test_monge_elkan_symmetrized(self, mini_sst):
        forward = sim(mini_sst, PROFESSOR, STUDENT, Measure.MONGE_ELKAN)
        backward = sim(mini_sst, STUDENT, PROFESSOR, Measure.MONGE_ELKAN)
        assert forward == pytest.approx(backward)


class TestStructuralRunners:
    def test_levenshtein_sequence_shares_path(self, mini_sst):
        same_branch = sim(mini_sst, PROFESSOR, ("Employee", "univ"),
                          Measure.LEVENSHTEIN)
        cross = sim(mini_sst, PROFESSOR, ("COURSE", "MINI"),
                    Measure.LEVENSHTEIN)
        assert same_branch > cross

    def test_vector_runners_use_feature_overlap(self, mini_sst):
        # Professor {advises, Employee} vs Student {takes, Person}:
        # no overlap -> 0; Professor vs Professor -> 1.
        for measure in (Measure.COSINE, Measure.EXTENDED_JACCARD,
                        Measure.OVERLAP, Measure.DICE):
            assert sim(mini_sst, PROFESSOR, STUDENT, measure) == 0.0
            assert sim(mini_sst, PROFESSOR, PROFESSOR, measure) == 1.0

    def test_tree_edit_structure_similarity(self, mini_sst):
        # Leaves have identical (trivial) subtree shapes.
        assert sim(mini_sst, PROFESSOR, ("COURSE", "MINI"),
                   Measure.TREE_EDIT) == pytest.approx(1.0)
        inner_vs_leaf = sim(mini_sst, ("Person", "univ"), COURSE,
                            Measure.TREE_EDIT)
        assert inner_vs_leaf < 1.0


class TestRegistryIntegration:
    def test_measure_by_name_string(self, mini_sst):
        by_name = sim(mini_sst, PROFESSOR, STUDENT, "Lin")
        by_enum = sim(mini_sst, PROFESSOR, STUDENT, Measure.LIN)
        assert by_name == by_enum

    def test_measure_by_integer(self, mini_sst):
        assert sim(mini_sst, PROFESSOR, STUDENT, 3) == sim(
            mini_sst, PROFESSOR, STUDENT, Measure.LIN)

    def test_unknown_measure_raises(self, mini_sst):
        with pytest.raises(UnknownMeasureError):
            sim(mini_sst, PROFESSOR, STUDENT, 999)
        with pytest.raises(UnknownMeasureError):
            sim(mini_sst, PROFESSOR, STUDENT, "Galaxy")

    def test_runner_instances_cached(self, mini_sst):
        assert mini_sst.runner(Measure.LIN) is mini_sst.runner("Lin")

    def test_measure_info(self, mini_sst):
        info = mini_sst.measure_info(Measure.TFIDF)
        assert info["name"] == "TFIDF"
        assert info["normalized"] is True

    def test_available_measures_lists_all_builtins(self, mini_sst):
        names = {info["name"] for info in mini_sst.available_measures()}
        assert {"Conceptual Similarity", "Levenshtein", "Lin", "Resnik",
                "Shortest Path", "TFIDF"} <= names
        assert len(names) == len(list(Measure))
