"""Integration tests for the SST facade services (paper S1-S3 + helpers)."""

import pytest

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.results import ConceptAndSimilarity, QualifiedConcept
from repro.errors import UnknownConceptError, UnknownOntologyError
from repro.viz.charts import BarChart, GroupedBarChart
from tests.conftest import MINI_ORNITHOLOGY_OWL


class TestS1GetSimilarity:
    def test_basic_call(self, mini_sst):
        value = mini_sst.get_similarity("Professor", "univ",
                                        "Student", "univ",
                                        Measure.SHORTEST_PATH)
        assert value == pytest.approx(0.25)

    def test_paper_style_constants(self, mini_sst):
        value = mini_sst.get_similarity(
            "Professor", "univ", "Professor", "univ",
            SOQASimPackToolkit.LIN_MEASURE)
        assert value == 1.0

    def test_unknown_concept_raises(self, mini_sst):
        with pytest.raises(UnknownConceptError):
            mini_sst.get_similarity("Ghost", "univ", "Student", "univ",
                                    Measure.LIN)

    def test_unknown_ontology_raises(self, mini_sst):
        with pytest.raises(UnknownOntologyError):
            mini_sst.get_similarity("Professor", "ghosts", "Student",
                                    "univ", Measure.TFIDF)

    def test_get_similarities_defaults_to_table1(self, mini_sst):
        values = mini_sst.get_similarities("Professor", "univ",
                                           "Student", "univ")
        assert list(values) == ["Conceptual Similarity", "Levenshtein",
                                "Lin", "Resnik", "Shortest Path", "TFIDF"]

    def test_get_similarities_explicit_list(self, mini_sst):
        values = mini_sst.get_similarities(
            "Professor", "univ", "Student", "univ",
            [Measure.LIN, "TFIDF"])
        assert set(values) == {"Lin", "TFIDF"}


class TestSetServices:
    def test_similarity_to_free_set(self, mini_sst):
        results = mini_sst.get_similarity_to_set(
            "Professor", "univ",
            [("univ", "Student"), QualifiedConcept("MINI", "EMPLOYEE")],
            Measure.SHORTEST_PATH)
        assert [entry.concept_name for entry in results] == [
            "Student", "EMPLOYEE"]
        assert all(isinstance(entry, ConceptAndSimilarity)
                   for entry in results)

    def test_similarity_matrix_diagonal(self, mini_sst):
        concepts = [("univ", "Professor"), ("univ", "Student"),
                    ("MINI", "EMPLOYEE")]
        matrix = mini_sst.get_similarity_matrix(concepts,
                                                Measure.SHORTEST_PATH)
        assert len(matrix) == 3
        for index in range(3):
            assert matrix[index][index] == 1.0
        assert matrix[0][1] == matrix[1][0]


class TestS2MostSimilar:
    def test_k_limits_results(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=3, measure=Measure.SHORTEST_PATH)
        assert len(results) == 3

    def test_anchor_excluded(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=100, measure=Measure.SHORTEST_PATH)
        assert all(not (entry.concept_name == "Professor"
                        and entry.ontology_name == "univ")
                   for entry in results)

    def test_sorted_descending(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=10, measure=Measure.SHORTEST_PATH)
        values = [entry.similarity for entry in results]
        assert values == sorted(values, reverse=True)

    def test_nearest_is_taxonomic_neighbor(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=1, measure=Measure.SHORTEST_PATH)
        assert results[0].concept_name == "Employee"

    def test_subtree_restriction(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ",
            subtree_root_concept_name="PERSON",
            subtree_ontology_name="MINI",
            k=100, measure=Measure.SHORTEST_PATH)
        assert {entry.ontology_name for entry in results} == {"MINI"}
        names = {entry.concept_name for entry in results}
        assert names == {"PERSON", "EMPLOYEE", "STUDENT"}

    def test_candidates_cover_all_ontologies_by_default(self, mini_sst):
        results = mini_sst.get_most_similar_concepts(
            "Professor", "univ", k=1000, measure=Measure.SHORTEST_PATH)
        assert len(results) == mini_sst.concept_count() - 1

    def test_most_dissimilar_sorted_ascending(self, mini_sst):
        results = mini_sst.get_most_dissimilar_concepts(
            "Professor", "univ", k=5, measure=Measure.SHORTEST_PATH)
        values = [entry.similarity for entry in results]
        assert values == sorted(values)

    def test_most_dissimilar_prefers_other_ontologies(self, mini_sst):
        results = mini_sst.get_most_dissimilar_concepts(
            "Professor", "univ", k=1, measure=Measure.SHORTEST_PATH)
        assert results[0].ontology_name != "univ"


class TestS3Plots:
    def test_similarity_plot_is_bar_chart(self, mini_sst):
        chart = mini_sst.get_similarity_plot("Professor", "univ",
                                             "Student", "univ")
        assert isinstance(chart, BarChart)
        assert len(chart.labels) == len(chart.values) == 6

    def test_similarity_plot_normalizes_resnik(self, mini_sst):
        chart = mini_sst.get_similarity_plot(
            "Professor", "univ", "Student", "univ", [Measure.RESNIK])
        assert chart.labels == ["Resnik (normalized)"]
        assert 0.0 <= chart.values[0] <= 1.0

    def test_most_similar_plot(self, mini_sst):
        chart = mini_sst.get_most_similar_plot("Professor", "univ", k=5)
        assert len(chart.labels) == 5
        assert chart.labels[0].startswith("univ:")

    def test_comparison_plot(self, mini_sst):
        chart = mini_sst.get_comparison_plot(
            [(("univ", "Professor"), ("univ", "Student")),
             (("univ", "Professor"), ("MINI", "EMPLOYEE"))],
            measures=[Measure.LIN, Measure.TFIDF])
        assert isinstance(chart, GroupedBarChart)
        assert len(chart.group_labels) == 2
        assert set(chart.series) == {"Lin", "TFIDF"}


class TestOntologyManagement:
    def test_load_text_refreshes_tree(self, mini_sst):
        before = mini_sst.concept_count()
        mini_sst.load_ontology_text(MINI_ORNITHOLOGY_OWL, "birds", "OWL")
        assert mini_sst.concept_count() == before + 2
        value = mini_sst.get_similarity("Professor", "univ",
                                        "Blackbird", "birds",
                                        Measure.SHORTEST_PATH)
        assert value > 0.0

    def test_load_file(self, mini_sst, tmp_path):
        path = tmp_path / "birds.owl"
        path.write_text(MINI_ORNITHOLOGY_OWL, encoding="utf-8")
        mini_sst.load_ontology_file(path)
        assert "birds" in mini_sst.ontology_names()

    def test_runner_cache_cleared_on_refresh(self, mini_sst):
        runner = mini_sst.runner(Measure.TFIDF)
        mini_sst.load_ontology_text(MINI_ORNITHOLOGY_OWL, "birds", "OWL")
        assert mini_sst.runner(Measure.TFIDF) is not runner


class TestExtensibility:
    def test_register_custom_runner(self, mini_sst):
        from repro.core.runners import MeasureRunner

        class SameNameRunner(MeasureRunner):
            name = "Same Name"
            description = "1.0 when local names match, else 0.0"

            def run(self, first, second):
                return float(first.concept_name.lower()
                             == second.concept_name.lower())

        measure_id = mini_sst.register_measure_runner(
            "Same Name", SameNameRunner)
        assert measure_id >= 1000
        assert mini_sst.get_similarity("Student", "univ",
                                       "STUDENT", "MINI",
                                       measure_id) == 1.0
        assert mini_sst.get_similarity("Student", "univ",
                                       "COURSE", "MINI",
                                       "Same Name") == 0.0
