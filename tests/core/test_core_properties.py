"""Property-based tests for the core layer's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.core.unified import MERGED_THING, UnifiedTree
from repro.simpack.infocontent import InformationContent
from repro.soqa.api import SOQA
from repro.soqa.graph import Taxonomy
from repro.soqa.metamodel import Concept, Ontology, OntologyMetadata


@st.composite
def random_soqa(draw) -> SOQA:
    """A SOQA facade holding 1-3 random single-rooted-or-forest
    ontologies."""
    soqa = SOQA()
    ontology_count = draw(st.integers(1, 3))
    for ontology_index in range(ontology_count):
        size = draw(st.integers(1, 10))
        names = [f"O{ontology_index}C{i}" for i in range(size)]
        concepts = []
        for index, name in enumerate(names):
            parent_count = draw(st.integers(0, min(2, index)))
            parents = list(draw(st.permutations(names[:index]))
                           [:parent_count])
            concepts.append(Concept(name=name, documentation=f"doc {name}",
                                    superconcept_names=parents))
        soqa.add_ontology(Ontology(
            OntologyMetadata(name=f"onto{ontology_index}",
                             language="OWL"), concepts))
    return soqa


@given(random_soqa())
@settings(max_examples=40, deadline=None)
def test_unified_tree_single_root_and_full_coverage(soqa):
    tree = UnifiedTree(soqa)
    assert tree.taxonomy.roots() == ["Super Thing"]
    assert len(tree.all_concepts()) == soqa.concept_count()
    # Every concept reaches the root.
    for concept in tree.all_concepts():
        path = tree.path_to_root(concept)
        assert path[-1] == "Super Thing"


@given(random_soqa())
@settings(max_examples=40, deadline=None)
def test_unified_tree_preserves_intra_ontology_distances(soqa):
    """Joining ontologies under Super Thing never changes distances
    within one ontology (paths through the virtual roots are never
    shorter than the original ones)."""
    tree = UnifiedTree(soqa)
    for ontology in soqa.ontologies():
        taxonomy = Taxonomy({concept.name: concept.superconcept_names
                             for concept in ontology})
        names = taxonomy.nodes()
        for first in names[:4]:
            for second in names[:4]:
                original = taxonomy.shortest_path_length(first, second)
                unified = tree.taxonomy.shortest_path_length(
                    tree.key(ontology.name, first),
                    tree.key(ontology.name, second))
                if original is not None:
                    assert unified == original
                else:
                    assert unified is not None  # now connected via roots


@given(random_soqa())
@settings(max_examples=40, deadline=None)
def test_merged_thing_never_increases_distances(soqa):
    """Fig. 3: merging roots can only bring concepts closer together."""
    super_tree = UnifiedTree(soqa)
    merged_tree = UnifiedTree(soqa, strategy=MERGED_THING)
    concepts = super_tree.all_concepts()[:5]
    for first in concepts:
        for second in concepts:
            super_distance = super_tree.taxonomy.shortest_path_length(
                super_tree.node_of(first), super_tree.node_of(second))
            merged_distance = merged_tree.taxonomy.shortest_path_length(
                merged_tree.node_of(first), merged_tree.node_of(second))
            assert merged_distance <= super_distance


@given(random_soqa())
@settings(max_examples=40, deadline=None)
def test_ic_monotone_along_subsumption(soqa):
    """IC never decreases when moving from an ancestor to a descendant."""
    tree = UnifiedTree(soqa)
    ic = InformationContent(tree.taxonomy)
    for node in tree.taxonomy.nodes():
        for ancestor in tree.taxonomy.ancestors_with_distance(node):
            assert ic.ic(ancestor) <= ic.ic(node) + 1e-12


@given(random_soqa(), st.sampled_from([
    Measure.CONCEPTUAL_SIMILARITY, Measure.SHORTEST_PATH, Measure.LIN,
    Measure.LEVENSHTEIN, Measure.EXTENSIONAL]))
@settings(max_examples=30, deadline=None)
def test_measures_symmetric_and_bounded_on_random_corpora(soqa, measure):
    sst = SOQASimPackToolkit(soqa)
    concepts = sst.tree.all_concepts()[:4]
    for first in concepts:
        for second in concepts:
            forward = sst.get_similarity(
                first.concept_name, first.ontology_name,
                second.concept_name, second.ontology_name, measure)
            backward = sst.get_similarity(
                second.concept_name, second.ontology_name,
                first.concept_name, first.ontology_name, measure)
            assert forward == pytest.approx(backward)
            assert 0.0 <= forward <= 1.0


@given(random_soqa())
@settings(max_examples=25, deadline=None)
def test_k_most_similar_consistent_with_pairwise(soqa):
    """The top-1 most similar concept realizes the maximum pairwise
    similarity over all candidates."""
    sst = SOQASimPackToolkit(soqa)
    concepts = sst.tree.all_concepts()
    if len(concepts) < 2:
        return
    anchor = concepts[0]
    top = sst.get_most_similar_concepts(
        anchor.concept_name, anchor.ontology_name, k=1,
        measure=Measure.SHORTEST_PATH)
    best = max(
        sst.get_similarity(anchor.concept_name, anchor.ontology_name,
                           other.concept_name, other.ontology_name,
                           Measure.SHORTEST_PATH)
        for other in concepts if other != anchor)
    assert top[0].similarity == pytest.approx(best)
