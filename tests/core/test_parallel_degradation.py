"""Degradation and recovery paths of the batch similarity engine.

Covers the boundary batches every strategy must agree on (empty sets,
more workers than pairs, single-concept matrices) and the supervised
process strategy's recovery ladder: crashed workers and timed-out
chunks burn the retry budget, then the unfinished chunks degrade
process -> thread (-> serial) with bit-identical results and visible
``resilience.*`` counters.
"""

import pytest

from repro.core import parallel, telemetry
from repro.core.parallel import (
    DEFAULT_RETRY_BUDGET,
    PROCESS,
    RETRY_BUDGET_ENV,
    STRATEGIES,
    TASK_TIMEOUT_ENV,
    BatchSimilarityEngine,
    effective_retry_budget,
    effective_task_timeout,
)
from repro.core.registry import Measure
from repro.core.resilience import injected_faults
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError

PERSON = QualifiedConcept("univ", "Person")
EMPLOYEE = QualifiedConcept("univ", "Employee")
PROFESSOR = QualifiedConcept("univ", "Professor")
STUDENT = QualifiedConcept("univ", "Student")
COURSE = QualifiedConcept("univ", "Course")

CONCEPTS = (PERSON, EMPLOYEE, PROFESSOR, STUDENT, COURSE)
PAIRS = [(first, second) for first in CONCEPTS for second in CONCEPTS]


class PoisonedRunner:
    """Delegates to a real runner but raises on one specific pair."""

    def __init__(self, inner, poison):
        self.inner = inner
        self.poison = poison

    def run(self, first, second):
        if (first, second) == self.poison:
            raise ValueError("poisoned pair")
        return self.inner.run(first, second)


@pytest.fixture
def runner(mini_sst):
    return mini_sst.runner(Measure.SHORTEST_PATH)


@pytest.fixture
def serial_values(runner):
    return [runner.run(first, second) for first, second in PAIRS]


class TestKnobResolution:
    def test_timeout_default_is_none(self, monkeypatch):
        monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
        assert effective_task_timeout() is None

    def test_timeout_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1.5")
        assert effective_task_timeout() == 1.5
        assert effective_task_timeout(0.2) == 0.2  # explicit wins

    def test_invalid_timeout_rejected(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "soon")
        with pytest.raises(SSTCoreError):
            effective_task_timeout()
        with pytest.raises(SSTCoreError):
            effective_task_timeout(0)

    def test_budget_default(self, monkeypatch):
        monkeypatch.delenv(RETRY_BUDGET_ENV, raising=False)
        assert effective_retry_budget() == DEFAULT_RETRY_BUDGET

    def test_budget_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(RETRY_BUDGET_ENV, "5")
        assert effective_retry_budget() == 5
        assert effective_retry_budget(0) == 0  # zero is a valid choice

    def test_invalid_budget_rejected(self, monkeypatch):
        monkeypatch.setenv(RETRY_BUDGET_ENV, "many")
        with pytest.raises(SSTCoreError):
            effective_retry_budget()
        with pytest.raises(SSTCoreError):
            effective_retry_budget(-1)

    def test_engine_reads_environment(self, monkeypatch, runner):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(RETRY_BUDGET_ENV, "1")
        engine = BatchSimilarityEngine(runner)
        assert engine.task_timeout == 2.5
        assert engine.retry_budget == 1


class TestBoundaryBatches:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_concept_set(self, runner, strategy):
        engine = BatchSimilarityEngine(runner, workers=4, strategy=strategy)
        assert engine.score_pairs([]) == []
        assert engine.similarity_matrix([]) == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_concept_matrix(self, runner, strategy):
        engine = BatchSimilarityEngine(runner, workers=4, strategy=strategy)
        expected = [[runner.run(PERSON, PERSON)]]
        assert engine.similarity_matrix([PERSON]) == expected

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_more_workers_than_pairs(self, runner, strategy):
        pairs = [(PERSON, STUDENT), (PERSON, COURSE), (STUDENT, COURSE)]
        expected = [runner.run(first, second) for first, second in pairs]
        engine = BatchSimilarityEngine(runner, workers=16,
                                       strategy=strategy)
        assert engine.score_pairs(pairs) == expected

    def test_no_fork_platform_degrades_to_serial(self, runner, monkeypatch,
                                                 serial_values):
        monkeypatch.setattr(parallel, "_fork_context", lambda: None)
        engine = BatchSimilarityEngine(runner, workers=2, strategy=PROCESS)
        assert engine.score_pairs(PAIRS) == serial_values


class TestCrashRecovery:
    def test_worker_crashes_degrade_bit_identically(self, runner,
                                                    serial_values):
        telemetry.reset()
        engine = BatchSimilarityEngine(runner, workers=2, strategy=PROCESS,
                                       retry_budget=1)
        # Forked workers inherit the armed plan, so every fresh worker
        # kills itself on its first chunk: both the initial launch and
        # the one budgeted relaunch fail, and the batch must finish on
        # the thread ladder rung.
        with injected_faults("worker.crash=99"):
            values = engine.score_pairs(PAIRS)
        assert values == serial_values
        registry = telemetry.get_registry()
        assert registry.value("resilience.pool_failures.crash") == 2
        assert registry.value("resilience.pool_failures") == 2
        assert registry.value("resilience.degraded") == 1

    def test_zero_budget_degrades_after_first_crash(self, runner,
                                                    serial_values):
        telemetry.reset()
        engine = BatchSimilarityEngine(runner, workers=2, strategy=PROCESS,
                                       retry_budget=0)
        with injected_faults("worker.crash=99"):
            assert engine.score_pairs(PAIRS) == serial_values
        assert telemetry.get_registry().value(
            "resilience.pool_failures.crash") == 1


class TestTimeoutRecovery:
    def test_slow_chunks_degrade_bit_identically(self, runner,
                                                 serial_values):
        telemetry.reset()
        engine = BatchSimilarityEngine(runner, workers=2, strategy=PROCESS,
                                       task_timeout=0.15, retry_budget=0)
        # Each fresh worker sleeps through its first chunk for far
        # longer than the task timeout; with no relaunch budget the
        # engine degrades immediately.
        with injected_faults("task.slow=99@0.6"):
            values = engine.score_pairs(PAIRS)
        assert values == serial_values
        registry = telemetry.get_registry()
        assert registry.value("resilience.pool_failures.timeout") == 1
        assert registry.value("resilience.degraded") == 1

    def test_generous_timeout_stays_on_process_strategy(self, runner,
                                                        serial_values):
        telemetry.reset()
        engine = BatchSimilarityEngine(runner, workers=2, strategy=PROCESS,
                                       task_timeout=60.0)
        assert engine.score_pairs(PAIRS) == serial_values
        assert telemetry.get_registry().value("resilience.degraded") == 0


class TestGenuineErrors:
    def test_measure_errors_propagate_unretried(self, runner):
        telemetry.reset()
        poisoned = PoisonedRunner(runner, (STUDENT, COURSE))
        engine = BatchSimilarityEngine(poisoned, workers=2,
                                       strategy=PROCESS)
        with pytest.raises(ValueError):
            engine.score_pairs(PAIRS)
        # A deterministic exception is not an infrastructure failure:
        # no pool relaunches, no degradation.
        registry = telemetry.get_registry()
        assert registry.value("resilience.pool_failures") == 0
        assert registry.value("resilience.degraded") == 0
