"""Unit tests for ontology statistics."""

import pytest

from repro.core.statistics import (
    OntologyStatistics,
    corpus_statistics,
    ontology_statistics,
)


class TestOntologyStatistics:
    def test_mini_owl_counts(self, mini_soqa):
        statistics = ontology_statistics(mini_soqa.ontology("univ"))
        assert statistics.concept_count == 5
        assert statistics.attribute_count == 1
        assert statistics.relationship_count == 2
        assert statistics.instance_count == 3
        assert statistics.root_count == 2  # Person, Course
        assert statistics.max_depth == 2   # Person > Employee > Professor

    def test_average_depth_positive(self, mini_soqa):
        statistics = ontology_statistics(mini_soqa.ontology("univ"))
        assert 0.0 < statistics.average_depth < statistics.max_depth + 1

    def test_branching_of_chain_is_one(self, mini_soqa):
        # MINI: PERSON -> {EMPLOYEE, STUDENT}; COURSE isolated.
        statistics = ontology_statistics(mini_soqa.ontology("MINI"))
        assert statistics.average_branching == pytest.approx(2.0)

    def test_multiple_inheritance_detected(self, corpus_soqa):
        statistics = ontology_statistics(
            corpus_soqa.ontology("SUMO_owl_txt"))
        assert statistics.multiple_inheritance_count >= 1  # Human

    def test_row_and_header_align(self, mini_soqa):
        statistics = ontology_statistics(mini_soqa.ontology("univ"))
        assert len(statistics.as_row()) == len(OntologyStatistics.header())


class TestCorpusStatistics:
    def test_one_row_per_ontology(self, mini_soqa):
        rows = corpus_statistics(mini_soqa)
        assert [statistics.name for statistics in rows] == [
            "univ", "MINI", "wn"]

    def test_corpus_totals(self, corpus_soqa):
        rows = corpus_statistics(corpus_soqa)
        assert sum(statistics.concept_count for statistics in rows) == 943

    def test_browser_stats_command(self, mini_sst):
        import io

        from repro.browser.shell import run_browser

        output = io.StringIO()
        run_browser(mini_sst, lines=["stats"], stdout=output)
        text = output.getvalue()
        assert "avg depth" in text
        assert "univ" in text


class TestExtensionalRunner:
    def test_identity_is_one(self, mini_sst):
        from repro.core.registry import Measure

        assert mini_sst.get_similarity("Person", "univ", "Person", "univ",
                                       Measure.EXTENSIONAL) == 1.0

    def test_ancestor_overlap_ratio(self, mini_sst):
        from repro.core.registry import Measure

        # Person covers {Person, Employee, Professor, Student};
        # Employee covers {Employee, Professor}: intersection 2, union 4.
        value = mini_sst.get_similarity("Person", "univ", "Employee",
                                        "univ", Measure.EXTENSIONAL)
        assert value == pytest.approx(0.5)

    def test_disjoint_branches_zero(self, mini_sst):
        from repro.core.registry import Measure

        assert mini_sst.get_similarity("Person", "univ", "Course", "univ",
                                       Measure.EXTENSIONAL) == 0.0
