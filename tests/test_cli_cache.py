"""Tests for the cache-related CLI surface (sst cache, --no-cache)."""

import pytest

from repro.cli import main
from tests.conftest import MINI_OWL


@pytest.fixture
def owl_file(tmp_path) -> str:
    path = tmp_path / "univ.owl"
    path.write_text(MINI_OWL, encoding="utf-8")
    return str(path)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch) -> str:
    directory = tmp_path / "cli-cache"
    monkeypatch.setenv("SST_CACHE_DIR", str(directory))
    return str(directory)


class TestCacheSubcommand:
    def test_path(self, capsys, cache_dir):
        # Since sharding, the user-facing L2 location is the directory
        # (shard files live inside it).
        assert main(["cache", "path"]) == 0
        out = capsys.readouterr().out
        assert cache_dir in out

    def test_stats_empty(self, capsys, cache_dir):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_stats_json(self, capsys, cache_dir):
        import json

        assert main(["cache", "stats", "--format", "json"]) == 0
        statistics = json.loads(capsys.readouterr().out)
        assert statistics["exists"] is False

    def test_clear(self, capsys, cache_dir):
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_dir_option_beats_environment(self, capsys, cache_dir,
                                                tmp_path):
        other = tmp_path / "elsewhere"
        assert main(["--cache-dir", str(other), "cache", "path"]) == 0
        assert str(other) in capsys.readouterr().out


class TestWarmStart:
    def test_second_matrix_run_hits_disk(self, capsys, owl_file, cache_dir):
        argv = ["--ontology-file", owl_file, "matrix",
                "univ:Person", "univ:Student", "univ:Course"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0.0%" in cold.err  # everything computed cold
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "100.0%" in warm.err
        assert warm.out == cold.out  # warm results identical

    def test_no_cache_flag_skips_disk(self, capsys, owl_file, cache_dir):
        argv = ["--ontology-file", owl_file, "matrix",
                "univ:Person", "univ:Student", "--no-cache"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "disk cache" not in captured.err
        # Nothing was persisted either:
        assert main(["cache", "stats", "--format", "json"]) == 0

    def test_no_cache_environment(self, capsys, owl_file, cache_dir,
                                  monkeypatch):
        monkeypatch.setenv("SST_NO_CACHE", "1")
        argv = ["--ontology-file", owl_file, "ksim", "univ", "Person",
                "-k", "2"]
        assert main(argv) == 0
        assert "disk cache" not in capsys.readouterr().err

    def test_ksim_reports_cache(self, capsys, owl_file, cache_dir):
        argv = ["--ontology-file", owl_file, "ksim", "univ", "Person",
                "-k", "2"]
        assert main(argv) == 0
        assert "disk cache" in capsys.readouterr().err

    def test_align_reports_cache(self, capsys, owl_file, cache_dir):
        argv = ["--ontology-file", owl_file, "align", "univ", "univ",
                "-m", "TFIDF"]
        assert main(argv) == 0
        assert "disk cache" in capsys.readouterr().err


class TestIndexThresholdOption:
    def test_threshold_is_exported(self, capsys, owl_file, monkeypatch):
        import os

        from repro.soqa.graphindex import INDEX_THRESHOLD_ENV

        # Seed the variable through monkeypatch so the CLI's write is
        # rolled back after the test.
        monkeypatch.setenv(INDEX_THRESHOLD_ENV, "512")
        argv = ["--ontology-file", owl_file, "--index-threshold", "0",
                "stats"]
        assert main(argv) == 0
        assert os.environ[INDEX_THRESHOLD_ENV] == "0"
        out = capsys.readouterr().out
        assert "graph index compiled" in out

    def test_stats_reports_naive_index_state(self, capsys, owl_file):
        assert main(["--ontology-file", owl_file, "stats"]) == 0
        assert "graph index naive" in capsys.readouterr().out
