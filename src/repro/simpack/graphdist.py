"""Distance-based taxonomy similarity measures (paper Eq. 5-6).

These measures judge concept similarity by position in the
specialization graph: concepts residing closer in the taxonomy are more
similar ("sparrows are more similar to blackbirds than to whales").

* :func:`shortest_path_similarity` — Eq. 5, the normalized edge-counting
  variant of Rada/Resnik: ``(2*MAX - len(x, y)) / (2*MAX)``.
* :func:`wu_palmer_similarity` — Eq. 6, Wu & Palmer's conceptual
  similarity ``2*N3 / (N1 + N2 + 2*N3)``.
* :func:`leacock_chodorow_similarity` — the standard logarithmic
  path-length companion measure, normalized into [0, 1]; part of the
  announced measure-set extensions.

All functions take a :class:`~repro.soqa.graph.Taxonomy`; concepts in
different components (no common ancestor, no connecting path) score 0.0,
which is what makes cross-ontology scores collapse to zero unless the
ontologies are joined under a Super-Thing root (paper section 3).

On large taxonomies the ``mrca``/``shortest_path_length``/``max_depth``
primitives used here are transparently served by the compiled index
(:mod:`repro.soqa.graphindex`) with bit-identical results — these
measures need no awareness of it.
"""

from __future__ import annotations

import math

from repro.soqa.graph import Taxonomy
from repro.simpack.base import clamp_similarity

__all__ = [
    "leacock_chodorow_similarity",
    "shortest_path_similarity",
    "wu_palmer_similarity",
]


def shortest_path_similarity(taxonomy: Taxonomy, first: str, second: str,
                             policy: str = "via_ancestor") -> float:
    """Eq. 5: ``(2*MAX - len(Rx, Ry)) / (2*MAX)``.

    ``MAX`` is the length of the longest root-to-leaf path and
    ``len(Rx, Ry)`` the shortest path between the concepts under the
    given path ``policy`` (see
    :meth:`~repro.soqa.graph.Taxonomy.shortest_path_length`).  Unreachable
    pairs score 0.0; a degenerate single-level taxonomy (MAX = 0) scores
    1.0 for identical concepts and 0.0 otherwise.
    """
    if first == second and first in taxonomy:
        return 1.0
    max_depth = taxonomy.max_depth()
    path_length = taxonomy.shortest_path_length(first, second, policy=policy)
    if path_length is None:
        return 0.0
    if max_depth == 0:
        return 0.0
    return clamp_similarity(
        (2.0 * max_depth - path_length) / (2.0 * max_depth))


def wu_palmer_similarity(taxonomy: Taxonomy, first: str,
                         second: str) -> float:
    """Eq. 6: ``2*N3 / (N1 + N2 + 2*N3)``.

    ``N1``/``N2`` are the distances from the concepts to their most
    recent common ancestor and ``N3`` the distance from that ancestor to
    the root.  Pairs without a common ancestor score 0.0.  When the MRCA
    *is* the root (N3 = 0) the score is 0.0 unless the concepts coincide
    with it — sharing only the root carries no conceptual overlap.
    """
    meeting = taxonomy.mrca(first, second)
    if meeting is None:
        return 0.0
    ancestor, distance_first, distance_second = meeting
    root_distance = taxonomy.depth(ancestor)
    denominator = distance_first + distance_second + 2.0 * root_distance
    if denominator == 0.0:
        # Both concepts are the root itself.
        return 1.0 if first == second else 0.0
    return clamp_similarity(2.0 * root_distance / denominator)


def leacock_chodorow_similarity(taxonomy: Taxonomy, first: str,
                                second: str) -> float:
    """Leacock-Chodorow, rescaled into [0, 1].

    The classic form is ``-log(len / (2 * D))`` with ``D`` the taxonomy
    depth and ``len`` the node-count path length (edges + 1).  Dividing
    by its maximum ``log(2 * D)`` yields a score of 1.0 for identical
    concepts and 0.0 for concepts a full ``2 * D`` apart.
    """
    if first == second and first in taxonomy:
        return 1.0
    depth = max(taxonomy.max_depth(), 1)
    path_length = taxonomy.shortest_path_length(first, second)
    if path_length is None:
        return 0.0
    length = path_length + 1  # node count, keeping the argument positive
    raw = -math.log(length / (2.0 * depth)) if length < 2 * depth else 0.0
    maximum = math.log(2.0 * depth)
    if maximum == 0.0:
        return 0.0
    return clamp_similarity(raw / maximum)
