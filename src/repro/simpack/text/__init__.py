"""Full-text machinery for the TFIDF similarity measure.

The paper exports a full-text description of every concept, indexes the
descriptions with Apache Lucene using a Porter stemmer, and compares the
resulting TFIDF term vectors.  This package is that substrate, built
from scratch:

* :mod:`repro.simpack.text.tokenizer` — lowercasing word tokenizer with
  a standard stop-word list,
* :mod:`repro.simpack.text.porter` — the complete Porter (1980)
  suffix-stripping algorithm,
* :mod:`repro.simpack.text.index` — an inverted index with document and
  term statistics,
* :mod:`repro.simpack.text.tfidf` — TFIDF weighting and cosine scoring
  over indexed documents.
"""

from repro.simpack.text.index import InvertedIndex
from repro.simpack.text.porter import porter_stem
from repro.simpack.text.tfidf import TfidfVectorSpace
from repro.simpack.text.tokenizer import STOP_WORDS, tokenize

__all__ = ["InvertedIndex", "STOP_WORDS", "TfidfVectorSpace",
           "porter_stem", "tokenize"]
