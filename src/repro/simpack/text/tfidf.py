"""TFIDF weighting and cosine similarity over an inverted index.

The standard full-text scheme described in Baeza-Yates & Ribeiro-Neto
(the paper's reference for its TFIDF measure): term weights are
``tf * idf`` with logarithmic term frequency and ``log(N / df)`` inverse
document frequency; document vectors are compared with the cosine
measure from the vector family.
"""

from __future__ import annotations

import math

from repro.errors import EmptyCorpusError
from repro.simpack.base import clamp_similarity
from repro.simpack.text.index import InvertedIndex

__all__ = ["TfidfVectorSpace"]


class TfidfVectorSpace:
    """Weighted term vectors and similarities over one corpus index."""

    def __init__(self, index: InvertedIndex):
        self.index = index
        self._vector_cache: dict[str, dict[str, float]] = {}

    def _idf(self, term: str) -> float:
        document_frequency = self.index.document_frequency(term)
        if document_frequency == 0:
            return 0.0
        total = self.index.document_count
        # Smoothed idf: terms in every document keep a tiny weight, so a
        # corpus of near-identical documents still compares sensibly.
        return math.log(1.0 + total / document_frequency)

    def vector(self, document_id: str) -> dict[str, float]:
        """The L2-normalized TFIDF weight vector of a document.

        Raises :class:`~repro.errors.EmptyCorpusError` when the document
        is unknown; a known document with no terms yields an empty
        vector.
        """
        cached = self._vector_cache.get(document_id)
        if cached is not None:
            return cached
        weights: dict[str, float] = {}
        for term, frequency in self.index.document_terms(document_id).items():
            term_weight = (1.0 + math.log(frequency)) * self._idf(term)
            if term_weight > 0.0:
                weights[term] = term_weight
        norm = math.sqrt(sum(value * value for value in weights.values()))
        if norm > 0.0:
            weights = {term: value / norm for term, value in weights.items()}
        self._vector_cache[document_id] = weights
        return weights

    def similarity(self, first_id: str, second_id: str) -> float:
        """Cosine similarity of two documents' TFIDF vectors."""
        first_vector = self.vector(first_id)
        second_vector = self.vector(second_id)
        if len(second_vector) < len(first_vector):
            first_vector, second_vector = second_vector, first_vector
        score = sum(weight * second_vector.get(term, 0.0)
                    for term, weight in first_vector.items())
        return clamp_similarity(score)

    def rank(self, query_id: str, candidate_ids: list[str] | None = None,
             ) -> list[tuple[str, float]]:
        """Rank documents by similarity to ``query_id``, best first.

        ``candidate_ids`` defaults to the whole corpus (excluding the
        query document itself).
        """
        if query_id not in self.index:
            raise EmptyCorpusError(f"document {query_id!r} is not indexed")
        if candidate_ids is None:
            candidate_ids = [document_id
                             for document_id in self.index.document_ids()
                             if document_id != query_id]
        scored = [(candidate, self.similarity(query_id, candidate))
                  for candidate in candidate_ids]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def query_vector(self, text: str) -> dict[str, float]:
        """The L2-normalized TFIDF vector of a free-text query.

        The query is analyzed with the index's tokenizer/stemmer, so a
        query matches documents exactly as another document would.
        """
        from collections import Counter

        weights: dict[str, float] = {}
        for term, frequency in Counter(self.index.analyze(text)).items():
            term_weight = (1.0 + math.log(frequency)) * self._idf(term)
            if term_weight > 0.0:
                weights[term] = term_weight
        norm = math.sqrt(sum(value * value for value in weights.values()))
        if norm > 0.0:
            weights = {term: value / norm
                       for term, value in weights.items()}
        return weights

    def search(self, text: str, k: int = 10) -> list[tuple[str, float]]:
        """Free-text retrieval: the ``k`` best documents for ``text``.

        Scores are query-document cosines; documents sharing no term
        with the query are omitted.
        """
        query = self.query_vector(text)
        if not query:
            return []
        scores: dict[str, float] = {}
        for term, weight in query.items():
            for document_id in self.index.documents_containing(term):
                scores[document_id] = (
                    scores.get(document_id, 0.0)
                    + weight * self.vector(document_id).get(term, 0.0))
        ranked = sorted(scores.items(),
                        key=lambda pair: (-pair[1], pair[0]))
        return [(document_id, clamp_similarity(score))
                for document_id, score in ranked[:k]]

    def invalidate(self) -> None:
        """Drop cached vectors (call after re-indexing documents)."""
        self._vector_cache.clear()
