"""Word tokenizer for the full-text TFIDF pipeline.

Splits text into lowercase alphanumeric tokens, additionally breaking
``camelCase`` and ``snake_case`` identifiers apart — ontology concept
names such as ``AssistantProfessor`` or ``univ-bench_owl`` must match
the words of plain documentation text.  Pure numbers and stop words are
dropped.
"""

from __future__ import annotations

import re

__all__ = ["STOP_WORDS", "tokenize"]

#: The classic short English stop-word list Lucene's StopAnalyzer ships.
STOP_WORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
    "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
    "that", "the", "their", "then", "there", "these", "they", "this",
    "to", "was", "will", "with",
})

_WORD_PATTERN = re.compile(r"[A-Za-z0-9]+")
_CAMEL_PATTERN = re.compile(
    r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z]+|[A-Z]+|[0-9]+")


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Tokenize ``text`` into lowercase word tokens.

    >>> tokenize("The AssistantProfessor teaches GraduateCourse")
    ['assistant', 'professor', 'teaches', 'graduate', 'course']
    """
    tokens: list[str] = []
    for chunk in _WORD_PATTERN.findall(text):
        for piece in _CAMEL_PATTERN.findall(chunk):
            token = piece.lower()
            if token.isdigit():
                continue
            if drop_stop_words and token in STOP_WORDS:
                continue
            tokens.append(token)
    return tokens
