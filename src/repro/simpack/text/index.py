"""An inverted index over tokenized, stemmed documents.

The mini-Lucene at the bottom of the TFIDF measure: documents go in as
raw text, get tokenized and Porter-stemmed, and the index keeps the
postings (term -> {document -> term frequency}) plus the document
statistics TFIDF weighting needs.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable

from repro.errors import EmptyCorpusError
from repro.simpack.text.porter import porter_stem
from repro.simpack.text.tokenizer import tokenize

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Postings and statistics over a document corpus."""

    def __init__(self, stem: Callable[[str], str] = porter_stem,
                 tokenizer: Callable[[str], list[str]] = tokenize):
        self._stem = stem
        self._tokenize = tokenizer
        self._postings: dict[str, dict[str, int]] = {}
        self._document_lengths: dict[str, int] = {}

    # -- building -----------------------------------------------------------

    def analyze(self, text: str) -> list[str]:
        """Tokenize and stem ``text`` into index terms."""
        return [self._stem(token) for token in self._tokenize(text)]

    def add_document(self, document_id: str, text: str) -> None:
        """Index ``text`` under ``document_id`` (replacing any old copy)."""
        if document_id in self._document_lengths:
            self.remove_document(document_id)
        terms = self.analyze(text)
        self._document_lengths[document_id] = len(terms)
        for term, frequency in Counter(terms).items():
            self._postings.setdefault(term, {})[document_id] = frequency

    def add_documents(self, documents: Iterable[tuple[str, str]]) -> None:
        """Index many ``(document_id, text)`` pairs."""
        for document_id, text in documents:
            self.add_document(document_id, text)

    def remove_document(self, document_id: str) -> None:
        """Drop a document and its postings."""
        self._document_lengths.pop(document_id, None)
        empty_terms = []
        for term, posting in self._postings.items():
            posting.pop(document_id, None)
            if not posting:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- statistics -----------------------------------------------------------

    @property
    def document_count(self) -> int:
        """Number of indexed documents."""
        return len(self._document_lengths)

    def document_ids(self) -> list[str]:
        """Ids of all indexed documents, in indexing order."""
        return list(self._document_lengths)

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._document_lengths

    def vocabulary(self) -> list[str]:
        """All index terms."""
        return list(self._postings)

    def term_frequency(self, term: str, document_id: str) -> int:
        """Occurrences of ``term`` in the document (term already stemmed)."""
        return self._postings.get(term, {}).get(document_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def document_terms(self, document_id: str) -> dict[str, int]:
        """All ``term -> frequency`` entries of one document."""
        if document_id not in self._document_lengths:
            raise EmptyCorpusError(
                f"document {document_id!r} is not indexed")
        return {term: posting[document_id]
                for term, posting in self._postings.items()
                if document_id in posting}

    def documents_containing(self, term: str) -> dict[str, int]:
        """The posting list of ``term``: ``document_id -> frequency``."""
        return dict(self._postings.get(term, {}))
