"""The Porter stemming algorithm (Porter, 1980).

A faithful from-scratch implementation of the five-step suffix-stripping
algorithm the paper uses ("we used a Porter Stemmer to reduce all words
to their stems").  Follows the original paper's rule tables, including
the *m* (measure) condition, ``*v*``, ``*d``, ``*o`` and the step-1b
fix-ups.
"""

from __future__ import annotations

__all__ = ["porter_stem"]

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure *m*: number of VC sequences in C?(VC){m}V?."""
    count = 0
    index = 0
    length = len(stem)
    # Skip the initial consonant run.
    while index < length and _is_consonant(stem, index):
        index += 1
    while index < length:
        # Vowel run.
        while index < length and not _is_consonant(stem, index):
            index += 1
        if index >= length:
            break
        # Consonant run -> one VC sequence.
        count += 1
        while index < length and _is_consonant(stem, index):
            index += 1
    return count


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (len(word) >= 2 and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1))


def _ends_cvc(word: str) -> bool:
    """``*o``: stem ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (_is_consonant(word, len(word) - 3)
            and not _is_consonant(word, len(word) - 2)
            and _is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy")


def _replace(word: str, suffix: str, replacement: str,
             minimum_measure: int) -> str | None:
    """Apply one ``(m > k) SUFFIX -> REPLACEMENT`` rule, or None."""
    if not word.endswith(suffix):
        return None
    stem = word[:len(word) - len(suffix)]
    if _measure(stem) > minimum_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: rule consumed


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_4(word: str) -> str:
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
        return word
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[:len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        measure = _measure(stem)
        if measure > 1 or (measure == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if (word.endswith("ll") and _measure(word) > 1):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word.

    >>> porter_stem("relational")
    'relat'
    >>> porter_stem("universities")
    'univers'
    """
    word = word.lower()
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word
