"""Okapi BM25 scoring over the inverted index.

The practical successor of plain TFIDF in Lucene-style engines; added
to the mini-Lucene so the full-text measure family carries both
weighting schemes.  Standard formulation with parameters ``k1`` (term
frequency saturation, default 1.2) and ``b`` (length normalization,
default 0.75); the idf uses the non-negative "plus one" variant so
common terms never score negatively.
"""

from __future__ import annotations

import math

from repro.errors import EmptyCorpusError, MeasureInputError
from repro.simpack.text.index import InvertedIndex

__all__ = ["BM25Scorer"]


class BM25Scorer:
    """BM25 retrieval and document-pair scoring over one index."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2,
                 b: float = 0.75):
        if k1 < 0:
            raise MeasureInputError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise MeasureInputError(f"b must be within [0, 1], got {b}")
        self.index = index
        self.k1 = k1
        self.b = b
        self._average_length: float | None = None

    def _avgdl(self) -> float:
        if self._average_length is None:
            document_ids = self.index.document_ids()
            if not document_ids:
                raise EmptyCorpusError("BM25 needs a non-empty corpus")
            total = sum(sum(self.index.document_terms(doc_id).values())
                        for doc_id in document_ids)
            self._average_length = max(total / len(document_ids), 1e-9)
        return self._average_length

    def _idf(self, term: str) -> float:
        total = self.index.document_count
        document_frequency = self.index.document_frequency(term)
        return math.log(
            1.0 + (total - document_frequency + 0.5)
            / (document_frequency + 0.5))

    def score_terms(self, query_terms: list[str],
                    document_id: str) -> float:
        """The BM25 score of pre-analyzed query terms vs a document."""
        document_terms = self.index.document_terms(document_id)
        document_length = sum(document_terms.values())
        normalizer = self.k1 * (1.0 - self.b
                                + self.b * document_length / self._avgdl())
        score = 0.0
        for term in query_terms:
            frequency = document_terms.get(term, 0)
            if frequency == 0:
                continue
            score += self._idf(term) * (
                frequency * (self.k1 + 1.0) / (frequency + normalizer))
        return score

    def score(self, query_text: str, document_id: str) -> float:
        """The BM25 score of a free-text query against one document."""
        return self.score_terms(self.index.analyze(query_text),
                                document_id)

    def search(self, query_text: str, k: int = 10,
               ) -> list[tuple[str, float]]:
        """The ``k`` best documents for a free-text query."""
        query_terms = self.index.analyze(query_text)
        candidates: set[str] = set()
        for term in sorted(set(query_terms)):
            candidates.update(self.index.documents_containing(term))
        ranked = sorted(
            ((document_id, self.score_terms(query_terms, document_id))
             for document_id in candidates),
            key=lambda pair: (-pair[1], pair[0]))
        return ranked[:k]

    def similarity(self, first_id: str, second_id: str) -> float:
        """A symmetric [0, 1] document similarity from BM25 scores.

        Each document's terms query the other; both directions are
        normalized by the self-score (the maximum achievable for that
        query) and averaged.
        """
        first_terms = list(self.index.document_terms(first_id))
        second_terms = list(self.index.document_terms(second_id))
        if not first_terms and not second_terms:
            return 1.0 if first_id == second_id else 0.0
        forward_self = self.score_terms(first_terms, first_id)
        backward_self = self.score_terms(second_terms, second_id)
        forward = (self.score_terms(first_terms, second_id) / forward_self
                   if forward_self > 0 else 0.0)
        backward = (self.score_terms(second_terms, first_id)
                    / backward_self if backward_self > 0 else 0.0)
        value = (forward + backward) / 2.0
        return min(max(value, 0.0), 1.0)

    def invalidate(self) -> None:
        """Recompute corpus statistics after re-indexing."""
        self._average_length = None
