"""Sequence Levenshtein measure over concept string sequences (Eq. 4).

Mapping *M2* of the paper turns a resource into a *vector of strings* by
walking the ontology graph from the resource along its properties.  The
similarity of two such sequences is a normalized edit distance: the
minimum weighted number of insert/remove/replace operations turning one
sequence into the other (``xform``), normalized by the worst-case cost
(``xform_wc``) of replacing all of ``x`` with parts of ``y``, deleting
what remains of ``x``, and inserting the rest of ``y``.

The paper argues the cost function should satisfy
``c(delete) + c(insert) >= c(replace)`` — a replacement should never cost
more than deleting and re-inserting; :class:`EditCosts` enforces that and
the X4 ablation bench quantifies its effect.

Note the direction of Eq. 4: the paper normalizes the *transformation
cost*, so the printed Table-1 "Levenshtein" column is ``1 - xform/xform_wc``
for identical concepts (1.0 on the diagonal).  :func:`sequence_similarity`
returns that similarity form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import MeasureInputError
from repro.simpack.base import clamp_similarity

__all__ = [
    "EditCosts",
    "sequence_edit_distance",
    "sequence_similarity",
    "worst_case_cost",
]


@dataclass(frozen=True)
class EditCosts:
    """Weights for the three edit operations.

    The default (1, 1, 1.5) satisfies the paper's constraint
    ``delete + insert >= replace`` strictly, making a replacement cheaper
    than a delete-insert pair but not free.  ``uniform()`` gives the
    classic unit-cost Levenshtein for the ablation.
    """

    delete: float = 1.0
    insert: float = 1.0
    replace: float = 1.5

    def __post_init__(self):
        if min(self.delete, self.insert, self.replace) < 0:
            raise MeasureInputError("edit costs must be non-negative")
        if self.delete + self.insert < self.replace:
            raise MeasureInputError(
                "cost function must satisfy c(delete) + c(insert) >= "
                f"c(replace); got {self.delete} + {self.insert} < "
                f"{self.replace}")

    @staticmethod
    def uniform() -> "EditCosts":
        """Classic unit costs (delete = insert = replace = 1)."""
        return EditCosts(1.0, 1.0, 1.0)


def sequence_edit_distance(
        first: Sequence, second: Sequence,
        costs: EditCosts | None = None,
        equal: Callable[[object, object], bool] | None = None) -> float:
    """``xform(x, y)``: minimum weighted cost turning ``first`` into ``second``.

    Works on any sequences — strings (character edits) or lists of concept
    names (mapping M2).  ``equal`` customizes element comparison (e.g.
    case-insensitive matching); it defaults to ``==``.
    """
    costs = costs if costs is not None else EditCosts()
    if equal is None:
        equal = lambda a, b: a == b  # noqa: E731 - local default comparator
    length_first = len(first)
    length_second = len(second)
    # Single-row dynamic program.
    previous = [j * costs.insert for j in range(length_second + 1)]
    for i in range(1, length_first + 1):
        current = [i * costs.delete] + [0.0] * length_second
        for j in range(1, length_second + 1):
            if equal(first[i - 1], second[j - 1]):
                substitution = previous[j - 1]
            else:
                substitution = previous[j - 1] + costs.replace
            current[j] = min(
                substitution,
                previous[j] + costs.delete,
                current[j - 1] + costs.insert,
            )
        previous = current
    return previous[length_second]


def worst_case_cost(first: Sequence, second: Sequence,
                    costs: EditCosts | None = None) -> float:
    """``xform_wc(x, y)``: the maximum transformation cost.

    Per the paper: replace all parts of ``x`` with parts of ``y``, delete
    the remaining parts of ``x``, and insert the additional parts of
    ``y``.  With lengths ``m = |x|`` and ``n = |y|`` this is
    ``min(m, n) * replace + max(m - n, 0) * delete + max(n - m, 0) * insert``.
    """
    costs = costs if costs is not None else EditCosts()
    length_first = len(first)
    length_second = len(second)
    shared = min(length_first, length_second)
    return (shared * costs.replace
            + max(length_first - length_second, 0) * costs.delete
            + max(length_second - length_first, 0) * costs.insert)


def sequence_similarity(
        first: Sequence, second: Sequence,
        costs: EditCosts | None = None,
        equal: Callable[[object, object], bool] | None = None) -> float:
    """The normalized sequence Levenshtein similarity (Eq. 4, as similarity).

    ``1 - xform(x, y) / xform_wc(x, y)``; identical sequences score 1.0,
    maximally different ones 0.0.  Two empty sequences are identical by
    definition and score 1.0.
    """
    worst = worst_case_cost(first, second, costs)
    if worst == 0.0:
        return 1.0
    distance = sequence_edit_distance(first, second, costs, equal)
    return clamp_similarity(1.0 - distance / worst)
