"""Shared helpers for the SimPack measure library."""

from __future__ import annotations

from typing import Iterable

__all__ = ["clamp_similarity", "feature_sets_to_vectors"]


def clamp_similarity(value: float) -> float:
    """Clamp a similarity score into ``[0.0, 1.0]``.

    Floating-point noise can push a mathematically-bounded score a hair
    outside the unit interval; every normalized measure funnels its result
    through this.
    """
    if value <= 0.0:  # also folds IEEE negative zero into plain 0.0
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def feature_sets_to_vectors(
        first: Iterable[str],
        second: Iterable[str]) -> tuple[list[int], list[int]]:
    """Mapping *M1* of the paper: two feature sets to aligned binary vectors.

    The union of both feature sets defines the vector dimensions (sorted
    for determinism); each vector has a 1 where the resource carries that
    feature.

    >>> feature_sets_to_vectors({"type", "name"}, {"type", "age"})
    ([0, 1, 1], [1, 0, 1])
    """
    first_set = set(first)
    second_set = set(second)
    dimensions = sorted(first_set | second_set)
    first_vector = [1 if feature in first_set else 0
                    for feature in dimensions]
    second_vector = [1 if feature in second_set else 0
                     for feature in dimensions]
    return first_vector, second_vector
