"""Information-theoretic similarity measures (paper Eq. 7-8).

Distance-based measures depend on the (frequently subjective) shape of
the ontology; Resnik and Lin instead weigh concepts by *information
content* (IC): the negative log probability of encountering the concept's
use.

:class:`InformationContent` supports both probability estimators the
paper discusses:

* ``source="subclasses"`` — the probability of encountering a subclass
  of the class, computed from descendant counts.  This is the paper's
  proposal for sparsely-instantiated Semantic Web ontologies and the
  default in SST.
* ``source="instances"`` — frequencies over the instance corpus, for
  ontologies where "many instances are available".

The X3 ablation bench compares the two estimators.
"""

from __future__ import annotations

import math

from repro.errors import MeasureInputError
from repro.soqa.graph import Taxonomy
from repro.simpack.base import clamp_similarity

__all__ = [
    "InformationContent",
    "jiang_conrath_similarity",
    "lin_similarity",
    "resnik_similarity",
]


class InformationContent:
    """Per-concept probabilities and IC values for one taxonomy."""

    def __init__(self, taxonomy: Taxonomy, source: str = "subclasses",
                 instance_counts: dict[str, int] | None = None):
        if source not in ("subclasses", "instances"):
            raise MeasureInputError(
                f"IC source must be 'subclasses' or 'instances', "
                f"got {source!r}")
        if source == "instances" and instance_counts is None:
            raise MeasureInputError(
                "instance-based IC needs per-concept instance counts")
        self.taxonomy = taxonomy
        self.source = source
        self._instance_counts = instance_counts or {}
        self._probability_cache: dict[str, float] = {}
        self._total_instances: int | None = None
        self._max_ic: float | None = None

    def _total_instance_mass(self) -> int:
        if self._total_instances is None:
            self._total_instances = sum(self._instance_counts.values())
        return self._total_instances

    def probability(self, concept: str) -> float:
        """``p(concept)``: probability of encountering the concept's use.

        Subclass estimator: ``|descendants-or-self| / |taxonomy|``.
        Instance estimator: instances of the concept or any descendant
        over all instances, Laplace-smoothed by one so no concept has
        probability zero (which would make IC infinite).
        """
        cached = self._probability_cache.get(concept)
        if cached is not None:
            return cached
        if self.source == "subclasses":
            # On a compiled taxonomy (repro.soqa.graphindex) this
            # descendant count is a popcount over a precomputed bitset,
            # making cold IC lookups O(1) instead of a BFS.
            probability = (self.taxonomy.descendant_count(concept)
                           / len(self.taxonomy))
        else:
            mass = self._instance_counts.get(concept, 0)
            for descendant in self.taxonomy.descendants(concept):
                mass += self._instance_counts.get(descendant, 0)
            total = self._total_instance_mass() + len(self.taxonomy)
            probability = (mass + 1) / total
        self._probability_cache[concept] = probability
        return probability

    def ic(self, concept: str) -> float:
        """The information content ``-log2 p(concept)``."""
        # ``+ 0.0`` normalizes the -0.0 that -log2(1.0) produces.
        return -math.log2(self.probability(concept)) + 0.0

    def max_ic(self) -> float:
        """The largest possible IC (a concept with minimal probability)."""
        if self._max_ic is None:
            if self.source == "subclasses":
                self._max_ic = math.log2(len(self.taxonomy))
            else:
                self._max_ic = math.log2(self._total_instance_mass()
                                         + len(self.taxonomy))
        return self._max_ic

    def most_informative_subsumer(self, first: str,
                                  second: str) -> str | None:
        """The common subsumer with maximum IC (ties: name order).

        This realizes the ``max`` in Eq. 7 and is the subsumer Lin's
        measure uses; it can differ from the edge-count MRCA in DAGs.
        """
        ancestors = self.taxonomy.common_ancestors(first, second)
        if not ancestors:
            return None
        return max(sorted(ancestors), key=self.ic)


def resnik_similarity(ic: InformationContent, first: str, second: str,
                      normalized: bool = False) -> float:
    """Eq. 7: ``max over common subsumers z of -log2 p(z)``.

    The raw Resnik score is an IC value in ``[0, log2 N]`` — Table 1 of
    the paper reports e.g. 12.7 for Professor-Professor — so it is *not*
    a [0, 1] similarity.  Pass ``normalized=True`` to divide by the
    maximum IC when a bounded score is needed (e.g. for charts).
    Concepts without a common subsumer score 0.0.
    """
    subsumer = ic.most_informative_subsumer(first, second)
    if subsumer is None:
        return 0.0
    value = ic.ic(subsumer)
    if not normalized:
        return value
    maximum = ic.max_ic()
    if maximum == 0.0:
        return 0.0
    return clamp_similarity(value / maximum)


def lin_similarity(ic: InformationContent, first: str, second: str) -> float:
    """Eq. 8: ``2 log2 p(MICS) / (log2 p(x) + log2 p(y))``.

    The probabilistic degree of descendant overlap.  Identical concepts
    score 1.0.  When both concepts carry zero IC (both are roots covering
    the whole taxonomy) or they share no subsumer, the score is 0.0.
    """
    if first == second and first in ic.taxonomy:
        return 1.0
    subsumer = ic.most_informative_subsumer(first, second)
    if subsumer is None:
        return 0.0
    denominator = ic.ic(first) + ic.ic(second)
    if denominator == 0.0:
        return 0.0
    return clamp_similarity(2.0 * ic.ic(subsumer) / denominator)


def jiang_conrath_similarity(ic: InformationContent, first: str,
                             second: str) -> float:
    """Jiang-Conrath, converted to a [0, 1] similarity.

    The JC *distance* is ``IC(x) + IC(y) - 2 * IC(MICS)``; the similarity
    form used here is ``1 - distance / (2 * max_ic)``, which is 1.0 for
    identical concepts and degrades linearly with the distance.  Part of
    the announced measure-set extensions (companions of Resnik/Lin).
    """
    if first == second and first in ic.taxonomy:
        return 1.0
    subsumer = ic.most_informative_subsumer(first, second)
    if subsumer is None:
        return 0.0
    distance = ic.ic(first) + ic.ic(second) - 2.0 * ic.ic(subsumer)
    maximum = 2.0 * ic.max_ic()
    if maximum == 0.0:
        return 0.0
    return clamp_similarity(1.0 - distance / maximum)
