"""Vector-based similarity measures (paper Eq. 1-3, plus Dice).

All measures accept two numeric vectors of equal length — in SST these
are the binary vectors produced by mapping *M1* from feature sets (see
:func:`repro.simpack.base.feature_sets_to_vectors`), but real-valued
vectors (e.g. TFIDF weight vectors) work identically.

Conventions at the edges, matching SimPack: two all-zero vectors are
neither similar nor dissimilar in any informative sense, so every measure
returns 0.0 for them rather than raising.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import MeasureInputError
from repro.simpack.base import clamp_similarity

__all__ = [
    "cosine_similarity",
    "dice_similarity",
    "dot_product",
    "extended_jaccard_similarity",
    "l1_norm",
    "l2_norm",
    "overlap_similarity",
]

Vector = Sequence[float]


def _check_lengths(first: Vector, second: Vector) -> None:
    if len(first) != len(second):
        raise MeasureInputError(
            f"vector lengths differ: {len(first)} vs {len(second)}")


def dot_product(first: Vector, second: Vector) -> float:
    """The inner product ``x . y``."""
    _check_lengths(first, second)
    return sum(x * y for x, y in zip(first, second))


def l1_norm(vector: Vector) -> float:
    """The L1 norm ``||x|| = sum(|x_i|)``."""
    return sum(abs(component) for component in vector)


def l2_norm(vector: Vector) -> float:
    """The L2 norm ``||x||_2 = sqrt(sum(|x_i|^2))``."""
    return math.sqrt(sum(component * component for component in vector))


def cosine_similarity(first: Vector, second: Vector) -> float:
    """Eq. 1: ``x . y / (||x||_2 * ||y||_2)`` — the angle's cosine."""
    _check_lengths(first, second)
    denominator = l2_norm(first) * l2_norm(second)
    if denominator == 0.0:
        return 0.0
    return clamp_similarity(dot_product(first, second) / denominator)


def extended_jaccard_similarity(first: Vector, second: Vector) -> float:
    """Eq. 2: ``x . y / (||x||_2^2 + ||y||_2^2 - x . y)``.

    For binary vectors this is exactly the Jaccard set ratio
    ``|A ∩ B| / |A ∪ B|``.
    """
    _check_lengths(first, second)
    product = dot_product(first, second)
    denominator = (sum(x * x for x in first) + sum(y * y for y in second)
                   - product)
    if denominator == 0.0:
        return 0.0
    return clamp_similarity(product / denominator)


def overlap_similarity(first: Vector, second: Vector) -> float:
    """Eq. 3: ``x . y / min(||x||_2^2, ||y||_2^2)``.

    For binary vectors: the shared-feature count relative to the smaller
    feature set, so a resource fully contained in another scores 1.0.
    """
    _check_lengths(first, second)
    denominator = min(sum(x * x for x in first), sum(y * y for y in second))
    if denominator == 0.0:
        return 0.0
    return clamp_similarity(dot_product(first, second) / denominator)


def dice_similarity(first: Vector, second: Vector) -> float:
    """Dice coefficient ``2 * x . y / (||x||_2^2 + ||y||_2^2)``.

    Not in the paper's equation list but a standard member of the same
    vector family (SimMetrics carries it), included as one of the
    announced measure-set extensions.
    """
    _check_lengths(first, second)
    denominator = sum(x * x for x in first) + sum(y * y for y in second)
    if denominator == 0.0:
        return 0.0
    return clamp_similarity(2.0 * dot_product(first, second) / denominator)
