"""Character-level string similarity metrics.

The paper announces (section 5) the incorporation of measures "from the
SecondString project ... and from SimMetrics"; this module supplies that
extension set.  Every ``*_similarity`` function returns a score in
``[0, 1]`` with 1.0 for equal strings, so any of them can back an SST
MeasureRunner directly.
"""

from __future__ import annotations

from repro.errors import MeasureInputError
from repro.simpack.base import clamp_similarity
from repro.simpack.sequence import EditCosts, sequence_edit_distance

__all__ = [
    "jaro_similarity",
    "jaro_winkler_similarity",
    "lcs_length",
    "lcs_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "needleman_wunsch_similarity",
    "qgram_similarity",
    "qgrams",
    "smith_waterman_similarity",
    "soundex",
    "soundex_similarity",
]


# ---------------------------------------------------------------------------
# Levenshtein
# ---------------------------------------------------------------------------


def levenshtein_distance(first: str, second: str) -> int:
    """Classic unit-cost edit distance between two strings."""
    return int(sequence_edit_distance(first, second, EditCosts.uniform()))


def levenshtein_similarity(first: str, second: str) -> float:
    """``1 - distance / max(len)``; 1.0 for two empty strings."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return clamp_similarity(
        1.0 - levenshtein_distance(first, second) / longest)


# ---------------------------------------------------------------------------
# Jaro / Jaro-Winkler
# ---------------------------------------------------------------------------


def jaro_similarity(first: str, second: str) -> float:
    """The Jaro metric: matches within a sliding window, minus transpositions.

    ``(m/|s1| + m/|s2| + (m - t)/m) / 3`` with ``m`` matching characters
    within ``max(|s1|, |s2|)/2 - 1`` positions and ``t`` half the number
    of transposed matches.
    """
    if first == second:
        return 1.0
    length_first, length_second = len(first), len(second)
    if length_first == 0 or length_second == 0:
        return 0.0
    window = max(length_first, length_second) // 2 - 1
    window = max(window, 0)
    first_matched = [False] * length_first
    second_matched = [False] * length_second
    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - window)
        end = min(i + window + 1, length_second)
        for j in range(start, end):
            if not second_matched[j] and second[j] == char:
                first_matched[i] = True
                second_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(length_first):
        if first_matched[i]:
            while not second_matched[j]:
                j += 1
            if first[i] != second[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return clamp_similarity(
        (matches / length_first + matches / length_second
         + (matches - transpositions) / matches) / 3.0)


def jaro_winkler_similarity(first: str, second: str,
                            prefix_scale: float = 0.1,
                            max_prefix: int = 4) -> float:
    """Jaro boosted by a shared prefix (Winkler's modification).

    ``prefix_scale`` must not exceed 0.25 or scores can leave [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise MeasureInputError(
            f"prefix_scale must be within [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(first, second)
    prefix = 0
    for char_first, char_second in zip(first, second):
        if char_first != char_second or prefix >= max_prefix:
            break
        prefix += 1
    return clamp_similarity(jaro + prefix * prefix_scale * (1.0 - jaro))


# ---------------------------------------------------------------------------
# q-grams
# ---------------------------------------------------------------------------


def qgrams(text: str, size: int = 2, pad: bool = True) -> list[str]:
    """The q-grams of ``text``; padded with ``#`` so edges count too.

    >>> qgrams("ab")
    ['#a', 'ab', 'b#']
    """
    if size < 1:
        raise MeasureInputError(f"q-gram size must be >= 1, got {size}")
    if pad:
        padding = "#" * (size - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < size:
        return []
    return [text[i:i + size] for i in range(len(text) - size + 1)]


def qgram_similarity(first: str, second: str, size: int = 2) -> float:
    """Dice coefficient over q-gram multisets (SimMetrics' QGramsDistance)."""
    if first == second:
        return 1.0
    grams_first = qgrams(first, size)
    grams_second = qgrams(second, size)
    total = len(grams_first) + len(grams_second)
    if total == 0:
        return 1.0
    counts: dict[str, int] = {}
    for gram in grams_first:
        counts[gram] = counts.get(gram, 0) + 1
    shared = 0
    for gram in grams_second:
        remaining = counts.get(gram, 0)
        if remaining:
            counts[gram] = remaining - 1
            shared += 1
    return clamp_similarity(2.0 * shared / total)


# ---------------------------------------------------------------------------
# Longest common subsequence
# ---------------------------------------------------------------------------


def lcs_length(first: str, second: str) -> int:
    """Length of the longest common subsequence of two strings."""
    if not first or not second:
        return 0
    previous = [0] * (len(second) + 1)
    for char_first in first:
        current = [0] * (len(second) + 1)
        for j, char_second in enumerate(second, start=1):
            if char_first == char_second:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[len(second)]


def lcs_similarity(first: str, second: str) -> float:
    """``LCS length / max(len)``; 1.0 for two empty strings."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return clamp_similarity(lcs_length(first, second) / longest)


# ---------------------------------------------------------------------------
# Monge-Elkan
# ---------------------------------------------------------------------------


def monge_elkan_similarity(first: str, second: str,
                           inner=jaro_winkler_similarity) -> float:
    """Monge-Elkan: average best inner-metric match of each token.

    Splits both strings on whitespace and, for every token of ``first``,
    takes the best ``inner`` similarity against the tokens of ``second``.
    Asymmetric by definition; SST's runner symmetrizes by averaging both
    directions.
    """
    tokens_first = first.split()
    tokens_second = second.split()
    if not tokens_first and not tokens_second:
        return 1.0
    if not tokens_first or not tokens_second:
        return 0.0
    total = 0.0
    for token in tokens_first:
        total += max(inner(token, other) for other in tokens_second)
    return clamp_similarity(total / len(tokens_first))


# ---------------------------------------------------------------------------
# Alignment scores (Needleman-Wunsch, Smith-Waterman)
# ---------------------------------------------------------------------------


def _match_score(char_first: str, char_second: str,
                 match: float, mismatch: float) -> float:
    return match if char_first == char_second else mismatch


def needleman_wunsch_similarity(first: str, second: str,
                                match: float = 1.0,
                                mismatch: float = -1.0,
                                gap: float = -1.0) -> float:
    """Normalized global alignment score (Needleman-Wunsch).

    The raw score is divided by ``match * max(len)`` and clamped, so equal
    strings score 1.0.
    """
    if not first and not second:
        return 1.0
    length_second = len(second)
    previous = [j * gap for j in range(length_second + 1)]
    for char_first in first:
        current = [previous[0] + gap] + [0.0] * length_second
        for j, char_second in enumerate(second, start=1):
            current[j] = max(
                previous[j - 1] + _match_score(
                    char_first, char_second, match, mismatch),
                previous[j] + gap,
                current[j - 1] + gap,
            )
        previous = current
    best_possible = match * max(len(first), len(second))
    if best_possible <= 0:
        return 0.0
    return clamp_similarity(previous[length_second] / best_possible)


def smith_waterman_similarity(first: str, second: str,
                              match: float = 1.0,
                              mismatch: float = -1.0,
                              gap: float = -0.5) -> float:
    """Normalized local alignment score (Smith-Waterman).

    The best local alignment score is divided by ``match * min(len)``, so
    a string fully contained in another scores 1.0.
    """
    if not first and not second:
        return 1.0
    if not first or not second:
        return 0.0
    length_second = len(second)
    previous = [0.0] * (length_second + 1)
    best = 0.0
    for char_first in first:
        current = [0.0] * (length_second + 1)
        for j, char_second in enumerate(second, start=1):
            current[j] = max(
                0.0,
                previous[j - 1] + _match_score(
                    char_first, char_second, match, mismatch),
                previous[j] + gap,
                current[j - 1] + gap,
            )
            best = max(best, current[j])
        previous = current
    best_possible = match * min(len(first), len(second))
    if best_possible <= 0:
        return 0.0
    return clamp_similarity(best / best_possible)


# ---------------------------------------------------------------------------
# Soundex
# ---------------------------------------------------------------------------

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """The American Soundex code of ``word`` (e.g. ``Robert -> R163``).

    Non-alphabetic characters are ignored; an empty input maps to
    ``0000``.
    """
    letters = [char for char in word.lower() if char.isalpha()]
    if not letters:
        return "0000"
    head = letters[0].upper()
    digits: list[str] = []
    previous_code = _SOUNDEX_CODES.get(letters[0], "")
    for char in letters[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if char in "hw":
            continue  # h/w do not separate equal codes
        if code and code != previous_code:
            digits.append(code)
        previous_code = code
    return (head + "".join(digits) + "000")[:4]


def soundex_similarity(first: str, second: str) -> float:
    """1.0 when Soundex codes match, else the codes' q-gram similarity.

    A smooth variant of the usual binary Soundex comparison, so rankings
    stay informative.
    """
    code_first = soundex(first)
    code_second = soundex(second)
    if code_first == code_second:
        return 1.0
    return qgram_similarity(code_first, code_second, size=1)
