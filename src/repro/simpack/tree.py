"""Ordered tree edit distance (Zhang & Shasha) and a tree similarity.

The paper lists "implementation of additional similarity measures
(especially for trees)" as future work and cites Shasha & Zhang's
approximate tree pattern matching; this module supplies the classic
Zhang-Shasha ordered tree edit distance and a normalized similarity over
taxonomy subtrees built from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simpack.base import clamp_similarity
from repro.soqa.graph import Taxonomy

__all__ = ["TreeNode", "subtree_of", "tree_edit_distance", "tree_similarity"]


@dataclass
class TreeNode:
    """A node of an ordered, labeled tree."""

    label: str
    children: list["TreeNode"] = field(default_factory=list)

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children)


def subtree_of(taxonomy: Taxonomy, root: str, max_depth: int | None = None,
               ) -> TreeNode:
    """The taxonomy subtree under ``root`` as an ordered tree.

    Children are ordered by name for determinism; DAG diamonds are
    unfolded (a multi-parent node appears under each parent), matching
    the rooted-labeled-tree view the paper uses for tree measures.
    ``max_depth`` bounds unfolding (``None`` = full subtree).
    """
    def build(name: str, depth: int, seen: frozenset[str]) -> TreeNode:
        node = TreeNode(label=name)
        if max_depth is not None and depth >= max_depth:
            return node
        for child in sorted(taxonomy.children(name)):
            if child in seen:
                continue  # guard against accidental cycles in views
            node.children.append(
                build(child, depth + 1, seen | {child}))
        return node

    return build(root, 0, frozenset({root}))


class _Flattened:
    """Postorder arrays the Zhang-Shasha algorithm works on."""

    def __init__(self, root: TreeNode):
        self.labels: list[str] = []
        self.leftmost: list[int] = []  # postorder index of leftmost leaf
        self._walk(root)
        self.keyroots = self._keyroots()

    def _walk(self, node: TreeNode) -> int:
        """Postorder traversal; returns the node's postorder index."""
        first_leaf: int | None = None
        for child in node.children:
            child_index = self._walk(child)
            if first_leaf is None:
                first_leaf = self.leftmost[child_index]
        index = len(self.labels)
        self.labels.append(node.label)
        self.leftmost.append(first_leaf if first_leaf is not None else index)
        return index

    def _keyroots(self) -> list[int]:
        """Nodes with no ancestor sharing their leftmost leaf."""
        seen_leftmost: set[int] = set()
        keyroots: list[int] = []
        for index in range(len(self.labels) - 1, -1, -1):
            left = self.leftmost[index]
            if left not in seen_leftmost:
                seen_leftmost.add(left)
                keyroots.append(index)
        keyroots.reverse()
        return keyroots


def tree_edit_distance(first: TreeNode, second: TreeNode,
                       insert_cost: float = 1.0,
                       delete_cost: float = 1.0,
                       relabel_cost: float = 1.0) -> float:
    """The Zhang-Shasha edit distance between two ordered labeled trees.

    Operations are node insertion, node deletion, and relabeling, with
    configurable unit costs.  Runs in ``O(n1 * n2 * min-depth factors)``
    time — the classic algorithm.
    """
    flat_first = _Flattened(first)
    flat_second = _Flattened(second)
    size_first = len(flat_first.labels)
    size_second = len(flat_second.labels)
    distances = [[0.0] * size_second for _ in range(size_first)]

    def relabel(i: int, j: int) -> float:
        if flat_first.labels[i] == flat_second.labels[j]:
            return 0.0
        return relabel_cost

    for keyroot_first in flat_first.keyroots:
        for keyroot_second in flat_second.keyroots:
            left_first = flat_first.leftmost[keyroot_first]
            left_second = flat_second.leftmost[keyroot_second]
            width_first = keyroot_first - left_first + 2
            width_second = keyroot_second - left_second + 2
            forest = [[0.0] * width_second for _ in range(width_first)]
            for i in range(1, width_first):
                forest[i][0] = forest[i - 1][0] + delete_cost
            for j in range(1, width_second):
                forest[0][j] = forest[0][j - 1] + insert_cost
            for i in range(1, width_first):
                node_first = left_first + i - 1
                for j in range(1, width_second):
                    node_second = left_second + j - 1
                    both_are_trees = (
                        flat_first.leftmost[node_first] == left_first
                        and flat_second.leftmost[node_second] == left_second)
                    if both_are_trees:
                        forest[i][j] = min(
                            forest[i - 1][j] + delete_cost,
                            forest[i][j - 1] + insert_cost,
                            forest[i - 1][j - 1] + relabel(
                                node_first, node_second),
                        )
                        distances[node_first][node_second] = forest[i][j]
                    else:
                        offset_first = (flat_first.leftmost[node_first]
                                        - left_first)
                        offset_second = (flat_second.leftmost[node_second]
                                         - left_second)
                        forest[i][j] = min(
                            forest[i - 1][j] + delete_cost,
                            forest[i][j - 1] + insert_cost,
                            forest[offset_first][offset_second]
                            + distances[node_first][node_second],
                        )
    return distances[size_first - 1][size_second - 1]


def tree_similarity(first: TreeNode, second: TreeNode) -> float:
    """Normalized tree similarity: ``1 - distance / (size1 + size2)``.

    ``size1 + size2`` is the worst-case unit-cost edit distance (delete
    one tree entirely, insert the other), so the score is 1.0 for
    identical trees and 0.0 for trees sharing nothing.
    """
    total = first.size() + second.size()
    if total == 0:
        return 1.0
    distance = tree_edit_distance(first, second)
    return clamp_similarity(1.0 - distance / total)
