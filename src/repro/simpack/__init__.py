"""SimPack — a generic library of similarity measures (paper section 2.2).

The measures are grouped exactly as in the paper:

* :mod:`repro.simpack.vector` — vector-based measures over binary feature
  vectors (cosine, extended Jaccard, overlap; Eq. 1-3) plus Dice.
* :mod:`repro.simpack.sequence` — the sequence Levenshtein measure over
  concept string sequences with a weighted cost function (Eq. 4).
* :mod:`repro.simpack.strings` — character-level string metrics in the
  SecondString/SimMetrics tradition the paper names as planned
  extensions (Levenshtein, Jaro, Jaro-Winkler, n-gram, Monge-Elkan,
  Needleman-Wunsch, Smith-Waterman, LCS, Soundex).
* :mod:`repro.simpack.text` — the full-text TFIDF machinery (tokenizer,
  Porter stemmer, inverted index, TFIDF vector space).
* :mod:`repro.simpack.graphdist` — distance-based taxonomy measures
  (normalized edge counting / shortest path, Wu & Palmer conceptual
  similarity, Leacock-Chodorow; Eq. 5-6).
* :mod:`repro.simpack.infocontent` — information-theoretic measures
  (Resnik, Lin, Jiang-Conrath; Eq. 7-8).
* :mod:`repro.simpack.tree` — Zhang-Shasha tree edit distance, the
  "measures for trees" named as future work in the paper.

All functions are pure and operate on plain data structures (sets,
sequences, taxonomies); the adaptation of ontology resources into these
inputs happens in :mod:`repro.core.wrapper`, mirroring the paper's
SOQAWrapper-for-SimPack.
"""

from repro.simpack.base import clamp_similarity, feature_sets_to_vectors
from repro.simpack.graphdist import (
    leacock_chodorow_similarity,
    shortest_path_similarity,
    wu_palmer_similarity,
)
from repro.simpack.infocontent import (
    InformationContent,
    jiang_conrath_similarity,
    lin_similarity,
    resnik_similarity,
)
from repro.simpack.sequence import (
    EditCosts,
    sequence_edit_distance,
    sequence_similarity,
    worst_case_cost,
)
from repro.simpack.vector import (
    cosine_similarity,
    dice_similarity,
    extended_jaccard_similarity,
    overlap_similarity,
)

__all__ = [
    "EditCosts",
    "InformationContent",
    "clamp_similarity",
    "cosine_similarity",
    "dice_similarity",
    "extended_jaccard_similarity",
    "feature_sets_to_vectors",
    "jiang_conrath_similarity",
    "leacock_chodorow_similarity",
    "lin_similarity",
    "overlap_similarity",
    "resnik_similarity",
    "sequence_edit_distance",
    "sequence_similarity",
    "shortest_path_similarity",
    "worst_case_cost",
    "wu_palmer_similarity",
]
