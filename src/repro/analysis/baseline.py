"""Accepted-findings baseline for ``sst analyze``.

A static-analysis gate is only adoptable when it fails on *new*
findings: pre-existing, reviewed-and-accepted findings live in a
committed baseline file (``.sst-analyze-baseline.json``) and no longer
fail CI.  Every entry is a **fingerprint** of the finding — rule code,
file, subject and message, deliberately *excluding* line and column —
so unrelated edits that shift a finding a few lines do not resurrect
it, while any change to what the finding says makes it new again.

The file keeps human-readable context next to each fingerprint, so a
review of the baseline reads like a findings report.  It is written via
:func:`repro.core.resilience.atomic_write_text` — the analyzer obeys
its own ``nonatomic-write`` rule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.engine import Finding
from repro.errors import SSTError

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "fingerprint",
    "write_baseline",
]

#: Schema version of the baseline file.
BASELINE_VERSION = 1

#: Where ``sst analyze`` looks for the baseline by default (relative to
#: the working directory, i.e. the repository root in CI).
DEFAULT_BASELINE_NAME = ".sst-analyze-baseline.json"


def fingerprint(finding: Finding) -> str:
    """A stable, line-independent identity for one finding."""
    basis = "\x1f".join((finding.code, finding.ontology, finding.subject,
                         finding.message))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The accepted findings of one analysis target."""

    fingerprints: dict[str, dict] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: "str | Path | None",
             required: bool = False) -> "Baseline":
        """Read a baseline file; a missing path yields an empty baseline.

        With ``required=True`` a missing file raises instead — when the
        user *named* a baseline (``--baseline``), a typo'd path must not
        silently degrade to "everything is new".  A malformed file
        raises :class:`~repro.errors.SSTError` either way — a gate that
        silently ignores its baseline would fail on every accepted
        finding (or worse, a truncated file could hide new ones behind
        a parse fallback).
        """
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            if required:
                raise SSTError(
                    f"analyze baseline {path} does not exist; fix the "
                    "--baseline path or create it with --write-baseline")
            return cls(path=path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            version = payload["version"]
            entries = payload["findings"]
            fingerprints = {entry["fingerprint"]: entry
                            for entry in entries}
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise SSTError(
                f"malformed analyze baseline at {path}: {error}") from error
        if version != BASELINE_VERSION:
            raise SSTError(
                f"analyze baseline at {path} has version {version!r}; "
                f"this toolkit reads version {BASELINE_VERSION}")
        return cls(fingerprints=fingerprints, path=path)

    def __contains__(self, finding: Finding) -> bool:
        return fingerprint(finding) in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    def split(self, findings: Iterable[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """``(new, accepted)``: findings not in / in the baseline."""
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in findings:
            (accepted if finding in self else new).append(finding)
        return new, accepted


def write_baseline(path: "str | Path", findings: Iterable[Finding]) -> Path:
    """Accept ``findings`` as the new baseline at ``path`` (atomic).

    Entries are sorted by fingerprint so regenerating an unchanged
    analysis produces a byte-identical file.
    """
    from repro.core.resilience import atomic_write_text

    entries = {}
    for finding in findings:
        key = fingerprint(finding)
        entries[key] = {
            "fingerprint": key,
            "code": finding.code,
            "severity": finding.severity,
            "path": finding.ontology,
            "subject": finding.subject,
            "message": finding.message,
        }
    payload = {
        "version": BASELINE_VERSION,
        "findings": [entries[key] for key in sorted(entries)],
    }
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=False) + "\n")
