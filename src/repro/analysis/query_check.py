"""Static analysis of SOQA-QL queries (no execution).

The checker walks a parsed query AST against the schema the evaluator's
row producers expose and flags problems before any row is materialized:
unknown SELECT/WHERE/ORDER BY fields, comparisons whose literal type
cannot match the column, predicates that are provably always false or
always true, and references to ontologies or concepts that are not
loaded.  Findings reuse the lexer's token positions, so every finding
carries the query line and column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    RuleRegistry,
    run_rules,
)
from repro.errors import SOQAQLSyntaxError
from repro.soqa.soqaql.ast import (
    Comparison,
    DescribeQuery,
    LogicalOp,
    NotOp,
    OrderSpec,
    SelectQuery,
)
from repro.soqa.soqaql.parser import parse_query

__all__ = ["QUERY_RULES", "QueryContext", "SOURCE_SCHEMAS", "check_query"]

#: Registry of all query-family rules.
QUERY_RULES = RuleRegistry()

#: Column name -> column type, per FROM source; mirrors the row layouts
#: of :class:`repro.soqa.soqaql.evaluator.SOQAQLEngine` exactly.
SOURCE_SCHEMAS: dict[str, dict[str, str]] = {
    "ontologies": {
        "name": "string", "language": "string", "author": "string",
        "last_modified": "string", "documentation": "string",
        "version": "string", "copyright": "string", "uri": "string",
        "concept_count": "number", "instance_count": "number",
    },
    "concepts": {
        "name": "string", "ontology": "string",
        "documentation": "string", "definition": "string",
        "superconcepts": "list", "subconcepts": "list",
        "equivalent": "list", "antonyms": "list",
        "attribute_count": "number", "method_count": "number",
        "relationship_count": "number", "instance_count": "number",
        "is_root": "boolean", "is_leaf": "boolean",
    },
    "attributes": {
        "name": "string", "ontology": "string", "concept": "string",
        "datatype": "string", "documentation": "string",
        "definition": "string",
    },
    "methods": {
        "name": "string", "ontology": "string", "concept": "string",
        "arity": "number", "return_type": "string",
        "documentation": "string",
    },
    "relationships": {
        "name": "string", "ontology": "string", "concept": "string",
        "arity": "number", "related": "list", "documentation": "string",
    },
    "instances": {
        "name": "string", "ontology": "string", "concept": "string",
        "attribute_values": "map", "documentation": "string",
    },
}

#: Literals the evaluator accepts for boolean columns (truthy spellings
#: first; everything else compares as False).
_BOOLEAN_TOKENS = frozenset({"true", "false", "1", "0", "1.0", "0.0",
                             "yes", "no"})

_ORDERING_OPS = frozenset({"<", "<=", ">", ">="})


@dataclass
class QueryContext:
    """What query rules see: the AST plus the loaded-ontology catalog."""

    query: object
    text: str = ""
    catalog: tuple[str, ...] | None = None  # loaded ontology names
    soqa: object | None = None              # SOQA facade, when available

    def schema(self) -> dict[str, str] | None:
        """The column schema of the query's FROM source, if any."""
        if isinstance(self.query, SelectQuery):
            return SOURCE_SCHEMAS.get(self.query.source)
        return None

    def comparisons(self):
        """Every :class:`Comparison` in the WHERE clause, in query order."""
        if isinstance(self.query, SelectQuery):
            yield from _walk_comparisons(self.query.where)

    def conjunctions(self):
        """Comparison groups that must hold simultaneously.

        Each group is a list of comparisons joined purely by AND (no OR
        or NOT in between) — the scope in which contradictory predicates
        make the whole branch unsatisfiable.
        """
        if isinstance(self.query, SelectQuery):
            yield from _walk_conjunctions(self.query.where)

    def disjunctions(self):
        """Comparison groups joined purely by OR."""
        if isinstance(self.query, SelectQuery):
            yield from _walk_disjunctions(self.query.where)


def _walk_comparisons(node):
    if node is None:
        return
    if isinstance(node, Comparison):
        yield node
    elif isinstance(node, LogicalOp):
        yield from _walk_comparisons(node.left)
        yield from _walk_comparisons(node.right)
    elif isinstance(node, NotOp):
        yield from _walk_comparisons(node.operand)


def _walk_conjunctions(node):
    """Maximal AND-only comparison groups anywhere in the condition."""
    if node is None:
        return
    if isinstance(node, LogicalOp) and node.op == "and":
        group: list[Comparison] = []
        others: list[object] = []
        _flatten_and(node, group, others)
        if len(group) > 1:
            yield group
        for other in others:
            yield from _walk_conjunctions(other)
    elif isinstance(node, LogicalOp):
        yield from _walk_conjunctions(node.left)
        yield from _walk_conjunctions(node.right)
    elif isinstance(node, NotOp):
        yield from _walk_conjunctions(node.operand)


def _flatten_and(node, group: list, others: list) -> None:
    if isinstance(node, LogicalOp) and node.op == "and":
        _flatten_and(node.left, group, others)
        _flatten_and(node.right, group, others)
    elif isinstance(node, Comparison):
        group.append(node)
    else:
        others.append(node)


def _walk_disjunctions(node):
    """Maximal OR-only comparison groups anywhere in the condition."""
    if node is None:
        return
    if isinstance(node, LogicalOp) and node.op == "or":
        group: list[Comparison] = []
        others: list[object] = []
        _flatten_or(node, group, others)
        if len(group) > 1:
            yield group
        for other in others:
            yield from _walk_disjunctions(other)
    elif isinstance(node, LogicalOp):
        yield from _walk_disjunctions(node.left)
        yield from _walk_disjunctions(node.right)
    elif isinstance(node, NotOp):
        yield from _walk_disjunctions(node.operand)


def _flatten_or(node, group: list, others: list) -> None:
    if isinstance(node, LogicalOp) and node.op == "or":
        _flatten_or(node.left, group, others)
        _flatten_or(node.right, group, others)
    elif isinstance(node, Comparison):
        group.append(node)
    else:
        others.append(node)


def _as_number(value) -> float | None:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# Field existence
# ---------------------------------------------------------------------------


def _available(schema: dict[str, str]) -> str:
    return ", ".join(sorted(schema))


@QUERY_RULES.rule("unknown-select-field", "error", "query")
def _unknown_select_field(rule, context: QueryContext):
    """A SELECT field does not exist for the FROM source."""
    query = context.query
    schema = context.schema()
    if schema is None or not isinstance(query, SelectQuery) or query.count:
        return
    if query.fields == ("*",):
        return
    spans = query.field_spans or ((0, 0),) * len(query.fields)
    for name, span in zip(query.fields, spans):
        if name not in schema:
            yield rule.finding(
                f"source {query.source!r} has no field {name!r}; "
                f"available: {_available(schema)}",
                subject=name, line=span[0], column=span[1],
                hint="pick one of the listed fields or SELECT *")


@QUERY_RULES.rule("unknown-where-field", "error", "query")
def _unknown_where_field(rule, context: QueryContext):
    """A WHERE predicate tests a field the FROM source does not have."""
    schema = context.schema()
    if schema is None:
        return
    source = context.query.source
    for comparison in context.comparisons():
        if comparison.field not in schema:
            yield rule.finding(
                f"source {source!r} has no field {comparison.field!r}; "
                f"available: {_available(schema)}",
                subject=comparison.field,
                line=comparison.span[0], column=comparison.span[1],
                hint="predicates can only use the source's fields")


@QUERY_RULES.rule("unknown-order-field", "error", "query")
def _unknown_order_field(rule, context: QueryContext):
    """An ORDER BY field does not exist for the FROM source."""
    schema = context.schema()
    if schema is None or not isinstance(context.query, SelectQuery):
        return
    for spec in context.query.order_by:
        if spec.field not in schema:
            yield rule.finding(
                f"source {context.query.source!r} has no field "
                f"{spec.field!r}; available: {_available(schema)}",
                subject=spec.field, line=spec.span[0], column=spec.span[1],
                hint="order by one of the source's fields")


# ---------------------------------------------------------------------------
# Type discipline
# ---------------------------------------------------------------------------


@QUERY_RULES.rule("type-mismatch", "error", "query")
def _type_mismatch(rule, context: QueryContext):
    """A comparison's literal type cannot match the column type."""
    schema = context.schema()
    if schema is None:
        return
    for comparison in context.comparisons():
        column_type = schema.get(comparison.field)
        if column_type is None:
            continue  # unknown-where-field already fired
        literal = comparison.value.value
        line, column = comparison.span
        if column_type == "number":
            if comparison.op in ("like", "contains"):
                continue  # evaluator stringifies; legal if unusual
            if _as_number(literal) is None:
                yield rule.finding(
                    f"numeric field {comparison.field!r} compared with "
                    f"non-numeric literal {literal!r}",
                    subject=comparison.field, line=line, column=column,
                    hint="compare numeric fields with numbers")
        elif column_type in ("string", "list", "map"):
            if comparison.op in _ORDERING_OPS \
                    and isinstance(literal, float):
                yield rule.finding(
                    f"{column_type} field {comparison.field!r} has no "
                    f"numeric order; comparing it with "
                    f"{comparison.op} {literal!r} mixes types",
                    subject=comparison.field, line=line, column=column,
                    hint="quote the literal to compare lexicographically")


# ---------------------------------------------------------------------------
# Degenerate predicates
# ---------------------------------------------------------------------------


def _equality_value(comparison: Comparison):
    """Canonical literal of an ``=`` comparison (case-folded strings)."""
    value = comparison.value.value
    if isinstance(value, str):
        return value.lower()
    return value


@QUERY_RULES.rule("always-false", "warning", "query")
def _always_false(rule, context: QueryContext):
    """A predicate can never hold, so the query returns no rows."""
    schema = context.schema() or {}
    # Boolean column compared with a literal no spelling of true/false
    # matches: the evaluator folds the literal to False, so ``= literal``
    # only matches rows where the flag is False — but e.g. ``= 'maybe'``
    # intends a value that cannot exist.
    for comparison in context.comparisons():
        if schema.get(comparison.field) == "boolean" \
                and comparison.op in ("=", "!="):
            token = str(comparison.value.value).lower()
            if token not in _BOOLEAN_TOKENS:
                yield rule.finding(
                    f"boolean field {comparison.field!r} compared with "
                    f"{comparison.value.value!r}, which no row can carry",
                    subject=comparison.field,
                    line=comparison.span[0], column=comparison.span[1],
                    hint="use true or false")
    for group in context.conjunctions():
        # Two different equality constants on the same field.
        equalities: dict[str, Comparison] = {}
        for comparison in group:
            if comparison.op != "=":
                continue
            previous = equalities.get(comparison.field)
            if previous is None:
                equalities[comparison.field] = comparison
            elif _equality_value(previous) != _equality_value(comparison):
                yield rule.finding(
                    f"field {comparison.field!r} cannot equal both "
                    f"{previous.value.value!r} and "
                    f"{comparison.value.value!r}",
                    subject=comparison.field,
                    line=comparison.span[0], column=comparison.span[1],
                    hint="one of the two equality predicates is dead")
        # Empty numeric interval: field < a AND field > b with a <= b.
        uppers: dict[str, tuple[float, Comparison]] = {}
        lowers: dict[str, tuple[float, Comparison]] = {}
        for comparison in group:
            bound = _as_number(comparison.value.value)
            if bound is None:
                continue
            if comparison.op in ("<", "<="):
                current = uppers.get(comparison.field)
                if current is None or bound < current[0]:
                    uppers[comparison.field] = (bound, comparison)
            elif comparison.op in (">", ">="):
                current = lowers.get(comparison.field)
                if current is None or bound > current[0]:
                    lowers[comparison.field] = (bound, comparison)
        for field_name, (upper, comparison) in uppers.items():
            lower_entry = lowers.get(field_name)
            if lower_entry is None:
                continue
            lower, lower_cmp = lower_entry
            strict = "<" in comparison.op and comparison.op != "<=" \
                or ">" in lower_cmp.op and lower_cmp.op != ">="
            if upper < lower or (upper == lower and strict):
                yield rule.finding(
                    f"field {field_name!r} is required to be below "
                    f"{upper!r} and above {lower!r} at once",
                    subject=field_name,
                    line=comparison.span[0], column=comparison.span[1],
                    hint="the numeric interval is empty")


@QUERY_RULES.rule("always-true", "warning", "query")
def _always_true(rule, context: QueryContext):
    """A predicate holds for every row, so the WHERE clause is dead."""
    for group in context.disjunctions():
        inequalities: dict[str, Comparison] = {}
        for comparison in group:
            if comparison.op != "!=":
                continue
            previous = inequalities.get(comparison.field)
            if previous is None:
                inequalities[comparison.field] = comparison
            elif _equality_value(previous) != _equality_value(comparison):
                yield rule.finding(
                    f"field {comparison.field!r} always differs from "
                    f"{previous.value.value!r} or "
                    f"{comparison.value.value!r}; the OR is always true",
                    subject=comparison.field,
                    line=comparison.span[0], column=comparison.span[1],
                    hint="drop the predicate or use AND")


# ---------------------------------------------------------------------------
# Redundancy and cost
# ---------------------------------------------------------------------------


def _comparison_key(comparison: Comparison) -> tuple:
    """Canonical identity of a predicate (field, op, folded literal)."""
    return (comparison.field, comparison.op, _equality_value(comparison))


@QUERY_RULES.rule("duplicate-comparison", "warning", "query")
def _duplicate_comparison(rule, context: QueryContext):
    """The same predicate appears twice in one AND/OR group.

    The duplicate is shadowed by its first occurrence — it can never
    change the result set, so either it is dead weight or a different
    predicate was intended.
    """
    for connective, groups in (("AND", context.conjunctions()),
                               ("OR", context.disjunctions())):
        for group in groups:
            seen: dict[tuple, Comparison] = {}
            for comparison in group:
                key = _comparison_key(comparison)
                first = seen.get(key)
                if first is None:
                    seen[key] = comparison
                    continue
                yield rule.finding(
                    f"predicate {comparison.field} {comparison.op} "
                    f"{comparison.value.value!r} appears twice in the "
                    f"same {connective} group; the second is shadowed",
                    subject=comparison.field,
                    line=comparison.span[0], column=comparison.span[1],
                    hint="drop the duplicate or fix the intended "
                         "predicate")


#: WHERE fields the evaluator can satisfy without visiting every row
#: (lookup keys of the concept stores).
_INDEXED_FIELDS = frozenset({"name", "ontology"})


@QUERY_RULES.rule("full-scan", "warning", "query")
def _full_scan(rule, context: QueryContext):
    """Cost estimate: a filtered concepts query with no indexed field.

    A WHERE clause over ``concepts`` that never tests ``name`` or
    ``ontology`` by equality (and has no ``IN ontology`` and no
    ``LIMIT``) must visit the full taxonomy of every loaded ontology to
    evaluate its filter.
    """
    query = context.query
    if not isinstance(query, SelectQuery) or query.source != "concepts":
        return
    if query.count or query.limit is not None or query.ontology is not None:
        return
    if query.where is None:
        return  # deliberate enumeration, not a filter scan
    for comparison in context.comparisons():
        if comparison.op == "=" and comparison.field in _INDEXED_FIELDS:
            return
    scale = ""
    if context.soqa is not None:
        scale = f" ({context.soqa.concept_count()} loaded concepts)"
    first = next(iter(context.comparisons()), None)
    line, column = first.span if first is not None else query.source_span
    yield rule.finding(
        "WHERE clause has no indexed field (name/ontology equality); "
        f"the query scans the full taxonomy{scale}",
        subject=query.source, line=line, column=column,
        hint="add a name/ontology equality, IN <ontology>, or LIMIT")


# ---------------------------------------------------------------------------
# Catalog references
# ---------------------------------------------------------------------------


@QUERY_RULES.rule("unknown-ontology", "error", "query")
def _unknown_ontology(rule, context: QueryContext):
    """The query names an ontology that is not loaded."""
    if context.catalog is None:
        return
    query = context.query
    name = getattr(query, "ontology", None)
    if name is not None and name not in context.catalog:
        span = getattr(query, "ontology_span", (0, 0))
        loaded = ", ".join(context.catalog) or "none"
        yield rule.finding(
            f"ontology {name!r} is not loaded; loaded: {loaded}",
            subject=name, line=span[0], column=span[1],
            hint="load the ontology first or fix the name")


@QUERY_RULES.rule("unknown-concept", "error", "query")
def _unknown_concept(rule, context: QueryContext):
    """DESCRIBE CONCEPT names a concept no loaded ontology defines."""
    query = context.query
    if not isinstance(query, DescribeQuery) or context.soqa is None:
        return
    name = query.concept_name
    line, column = query.concept_span
    if query.ontology is not None:
        if context.catalog is not None \
                and query.ontology not in context.catalog:
            return  # unknown-ontology already fired
        ontology = context.soqa.ontology(query.ontology)
        if name not in ontology:
            yield rule.finding(
                f"concept {name!r} is not defined in ontology "
                f"{query.ontology!r}",
                subject=name, line=line, column=column,
                hint="check the concept name spelling")
    elif not context.soqa.find_concepts(name):
        yield rule.finding(
            f"concept {name!r} is not defined in any loaded ontology",
            subject=name, line=line, column=column,
            hint="check the concept name spelling")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


@QUERY_RULES.rule("syntax-error", "error", "query")
def _syntax_error(rule, context: QueryContext):
    """The query does not tokenize or parse.

    Registered for discoverability (``sst lint --list-rules``) and so the
    code participates in ``--rule``/``--disable`` filtering; the actual
    finding is emitted by :func:`check_query` before any AST exists.
    """
    return ()


def check_query(query, soqa=None,
                config: AnalysisConfig | None = None,
                registry: RuleRegistry | None = None) -> list[Finding]:
    """Statically check a SOQA-QL query without executing it.

    ``query`` is the query text or an already parsed AST.  With a SOQA
    facade given, references to unloaded ontologies and unknown concepts
    are flagged too.  Unparseable text yields a single ``syntax-error``
    finding instead of raising, so ``sst lint`` can report it uniformly.
    """
    registry = registry or QUERY_RULES
    text = ""
    if isinstance(query, str):
        text = query
        try:
            query = parse_query(query)
        except SOQAQLSyntaxError as error:
            syntax_rule = registry.get("syntax-error") \
                if "syntax-error" in registry else None
            if syntax_rule is not None and config is not None \
                    and not config.selects(syntax_rule):
                return []
            return [Finding(
                severity="error", code="syntax-error", message=str(error),
                subject="", line=error.line or 0, column=error.column or 0,
                hint="fix the query syntax before analysis can continue")]
    catalog = tuple(soqa.ontology_names()) if soqa is not None else None
    context = QueryContext(query=query, text=text, catalog=catalog,
                           soqa=soqa)
    return run_rules(registry, "query", context, config)
