"""Static analysis for ontologies and SOQA-QL queries (``sst lint``).

Two analyzer families share one rule engine:

* :func:`lint_ontology` / :func:`lint_concepts` — the ontology linter,
  superset of the legacy :func:`repro.soqa.validate.validate_ontology`;
* :func:`check_query` — the SOQA-QL static checker, which walks a parsed
  query against the meta-model schema without executing it.

Both return :class:`Finding` lists that render as text or schema-stable
JSON via :func:`render_text` / :func:`render_json`.
"""

from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    Rule,
    RuleRegistry,
    SEVERITIES,
    gate,
    render_json,
    render_text,
    severity_rank,
    sort_findings,
    summarize,
)
from repro.analysis.ontology_rules import (
    ONTOLOGY_RULES,
    lint_concepts,
    lint_ontology,
)
from repro.analysis.query_check import (
    QUERY_RULES,
    SOURCE_SCHEMAS,
    check_query,
)

__all__ = [
    "AnalysisConfig",
    "Finding",
    "ONTOLOGY_RULES",
    "QUERY_RULES",
    "Rule",
    "RuleRegistry",
    "SEVERITIES",
    "SOURCE_SCHEMAS",
    "all_rules",
    "check_query",
    "gate",
    "lint_concepts",
    "lint_ontology",
    "render_json",
    "render_text",
    "severity_rank",
    "sort_findings",
    "summarize",
]


def all_rules() -> list[Rule]:
    """Every registered rule of both families, ordered by code."""
    rules = ONTOLOGY_RULES.rules() + QUERY_RULES.rules()
    return sorted(rules, key=lambda rule: (rule.family, rule.code))
