"""Static analysis for ontologies, SOQA-QL queries and the toolkit's
own source (``sst lint`` / ``sst analyze``).

Three analyzer families share one rule engine:

* :func:`lint_ontology` / :func:`lint_concepts` — the ontology linter,
  superset of the legacy :func:`repro.soqa.validate.validate_ontology`;
* :func:`check_query` — the SOQA-QL static checker, which walks a parsed
  query against the meta-model schema without executing it;
* :func:`analyze_paths` — the code checker, which walks the toolkit's
  Python source and enforces its determinism, concurrency, resilience
  and observability invariants (with a committed-baseline /
  ``# sst: disable=<code>`` pragma suppression workflow).

All return :class:`Finding` lists that render as text or schema-stable
JSON via :func:`render_text` / :func:`render_json`.
"""

from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    Rule,
    RuleRegistry,
    SEVERITIES,
    gate,
    render_json,
    render_text,
    severity_rank,
    sort_findings,
    summarize,
)
from repro.analysis.code_rules import (
    CODE_RULES,
    METRIC_NAMESPACES,
    analyze_paths,
)
from repro.analysis.ontology_rules import (
    ONTOLOGY_RULES,
    lint_concepts,
    lint_ontology,
)
from repro.analysis.query_check import (
    QUERY_RULES,
    SOURCE_SCHEMAS,
    check_query,
)

__all__ = [
    "AnalysisConfig",
    "CODE_RULES",
    "Finding",
    "METRIC_NAMESPACES",
    "ONTOLOGY_RULES",
    "QUERY_RULES",
    "Rule",
    "RuleRegistry",
    "SEVERITIES",
    "SOURCE_SCHEMAS",
    "all_rules",
    "analyze_paths",
    "check_query",
    "gate",
    "lint_concepts",
    "lint_ontology",
    "render_json",
    "render_text",
    "severity_rank",
    "sort_findings",
    "summarize",
]


def all_rules() -> list[Rule]:
    """Every registered rule of all three families, ordered by code."""
    rules = ONTOLOGY_RULES.rules() + QUERY_RULES.rules() \
        + CODE_RULES.rules()
    return sorted(rules, key=lambda rule: (rule.family, rule.code))
