"""AST-walking infrastructure for the code-rule family.

The third rule family of :mod:`repro.analysis` checks the toolkit's
*own source* against its engineering invariants (determinism,
concurrency discipline, resilience, observability hygiene).  The rules
in :mod:`repro.analysis.code_rules` stay declarative because this
module owns the mechanics:

* :class:`ModuleSource` — one parsed module: source text, AST with
  parent links attached, an :class:`ImportMap`, and the parsed
  ``# sst: disable=<code>`` suppression pragmas;
* :class:`ImportMap` — local-name -> dotted-origin resolution, so a
  rule can ask "does this call reach ``time.time``?" regardless of
  whether the module wrote ``import time``, ``import time as t`` or
  ``from time import time as now``;
* :class:`ScopeInfo` — which names a function binds locally (and which
  it declares ``global``/``nonlocal``), the basis of the shared-state
  mutation checks;
* mutation helpers — assignment targets and known mutating method
  calls (``append``, ``update``, ``__setitem__`` via subscripts, ...)
  expressed as ``(name, node)`` pairs.

Everything here is pure :mod:`ast`; no module under analysis is ever
imported or executed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "ImportMap",
    "ModuleSource",
    "MUTATING_METHODS",
    "PRAGMA_PATTERN",
    "ScopeInfo",
    "ancestors",
    "attach_parents",
    "enclosing_class",
    "collect_python_files",
    "dotted_name",
    "enclosing_function",
    "iter_calls",
    "iter_functions",
    "load_module",
    "mutated_outer_names",
    "parent",
    "parse_suppressions",
    "qualname_of",
    "scope_info",
]

#: Inline suppression pragma: ``# sst: disable=code-a,code-b`` (or
#: ``disable=all``) on the offending line silences those codes there.
PRAGMA_PATTERN = re.compile(
    r"#\s*sst:\s*disable=([A-Za-z0-9_*,\- ]+)")

#: Method names that mutate their receiver in place.  Used to detect
#: shared-state mutation (``shared.append(...)`` on a non-local name).
MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "remove", "reverse", "setdefault",
    "sort", "update",
})


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """``line -> codes`` map of ``# sst: disable=...`` pragmas.

    Lines are 1-based, matching AST/``Finding`` positions.  The special
    code ``all`` (or ``*``) suppresses every rule on that line.  Only
    real comments count: the pragma text inside a string literal is
    data, not a suppression — tokenizing (rather than regex-scanning
    physical lines) is what makes that distinction.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            codes = frozenset(code.strip()
                              for code in match.group(1).split(",")
                              if code.strip())
            if codes:
                suppressions[token.start[0]] = codes
    except (tokenize.TokenError, IndentationError):
        # Un-tokenizable tail (the analyzer reports the SyntaxError
        # separately); keep the pragmas found before the bad region.
        pass
    return suppressions


class ImportMap:
    """Local names -> the dotted names they import.

    >>> import ast
    >>> imports = ImportMap(ast.parse("from time import time as now"))
    >>> imports.resolve(ast.parse("now()").body[0].value.func)
    'time.time'
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep their dots; rules match on full
                # dotted paths, so a relative origin simply never hits.
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origin = f"{prefix}.{alias.name}" if prefix \
                        else alias.name
                    self.aliases[local] = origin

    def resolve(self, node: ast.AST) -> str | None:
        """The fully qualified dotted name a ``Name``/``Attribute``
        chain refers to, or the plain dotted text when nothing was
        imported under its head (builtins, locals), or ``None`` when
        the expression is not a name chain at all."""
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin


def dotted_name(node: ast.AST) -> str | None:
    """``"a.b.c"`` for a pure ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def attach_parents(tree: ast.AST) -> None:
    """Thread a parent link through every node (``parent(node)``)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._sst_parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> ast.AST | None:
    """The parent attached by :func:`attach_parents` (``None`` at root)."""
    return getattr(node, "_sst_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The parent chain of ``node``, nearest first."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


@dataclass
class ModuleSource:
    """One module under analysis: text, AST, imports, pragmas."""

    path: Path
    display: str
    text: str
    tree: ast.Module
    imports: ImportMap
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        """True when a pragma on ``line`` silences ``code``."""
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return code in codes or "all" in codes or "*" in codes

    def resolve(self, node: ast.AST) -> str | None:
        return self.imports.resolve(node)


def load_module(path: "str | Path", display: str | None = None
                ) -> ModuleSource:
    """Parse one Python file into a :class:`ModuleSource`.

    Propagates :class:`SyntaxError` (and ``OSError``) — the analyzer
    entry point turns those into findings so one broken file cannot
    abort a whole run.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    attach_parents(tree)
    return ModuleSource(
        path=path, display=display or path.as_posix(), text=text,
        tree=tree, imports=ImportMap(tree),
        suppressions=parse_suppressions(text))


def collect_python_files(paths: Iterable["str | Path"]
                         ) -> list[tuple[Path, str]]:
    """``(file, display)`` pairs for files and directories, sorted.

    Directory arguments are walked recursively for ``*.py``; display
    paths stay relative to the argument as given, so reports and
    baseline fingerprints do not depend on the absolute checkout
    location.
    """
    collected: list[tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for file_path in sorted(base.rglob("*.py")):
                relative = file_path.relative_to(base).as_posix()
                display = f"{base.as_posix().rstrip('/')}/{relative}"
                collected.append((file_path, display))
        else:
            collected.append((base, base.as_posix()))
    return collected


# ---------------------------------------------------------------------------
# Functions and scopes
# ---------------------------------------------------------------------------

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (async) function definition anywhere in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield node


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every call expression anywhere in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def enclosing_function(node: ast.AST) -> ast.FunctionDef | None:
    """The innermost function definition containing ``node``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, _FUNCTION_NODES):
            return ancestor
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    """The innermost class definition containing ``node``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def qualname_of(node: ast.AST) -> str:
    """A readable ``Class.method`` / ``function`` / ``<module>`` label."""
    parts: list[str] = []
    current: ast.AST | None = node
    while current is not None:
        if isinstance(current, _FUNCTION_NODES + (ast.ClassDef,)):
            parts.append(current.name)
        current = parent(current)
    if not parts:
        return "<module>"
    return ".".join(reversed(parts))


@dataclass
class ScopeInfo:
    """Which names a function binds — the basis of closure analysis."""

    params: frozenset[str]
    assigned: frozenset[str]
    declared_global: frozenset[str]
    declared_nonlocal: frozenset[str]

    @property
    def local_names(self) -> frozenset[str]:
        """Names resolved locally inside the function."""
        return (self.params | self.assigned) \
            - self.declared_global - self.declared_nonlocal

    def is_outer(self, name: str) -> bool:
        """True when ``name`` resolves outside the function's scope."""
        return name not in self.local_names


def _own_scope_nodes(function: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested scopes."""
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)):
            continue  # nested scope: its bindings are its own
        stack.extend(ast.iter_child_nodes(node))


def scope_info(function: ast.FunctionDef) -> ScopeInfo:
    """The names ``function`` binds, declares global, or nonlocal."""
    params = {argument.arg for argument in (
        function.args.posonlyargs + function.args.args
        + function.args.kwonlyargs)}
    if function.args.vararg is not None:
        params.add(function.args.vararg.arg)
    if function.args.kwarg is not None:
        params.add(function.args.kwarg.arg)
    assigned: set[str] = set()
    declared_global: set[str] = set()
    declared_nonlocal: set[str] = set()
    for node in _own_scope_nodes(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            assigned.add(node.id)
        elif isinstance(node, _FUNCTION_NODES + (ast.ClassDef,)):
            assigned.add(node.name)
        elif isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            declared_nonlocal.update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    assigned.add(alias.asname
                                 or alias.name.split(".")[0])
    return ScopeInfo(params=frozenset(params), assigned=frozenset(assigned),
                     declared_global=frozenset(declared_global),
                     declared_nonlocal=frozenset(declared_nonlocal))


def _base_name(node: ast.AST) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def mutated_outer_names(function: ast.FunctionDef
                        ) -> list[tuple[str, ast.AST, str]]:
    """Mutations of names the function does not own.

    Returns ``(name, node, how)`` triples for: assignments to
    ``global``/``nonlocal``-declared names, item/attribute stores and
    augmented assignments whose base name resolves to an outer scope,
    and :data:`MUTATING_METHODS` calls on outer names.  ``how`` is a
    short human-readable description for findings.
    """
    scope = scope_info(function)
    mutations: list[tuple[str, ast.AST, str]] = []

    def record(name: str | None, node: ast.AST, how: str) -> None:
        if name is None or name == "self" or not scope.is_outer(name):
            return
        mutations.append((name, node, how))

    for node in _own_scope_nodes(function):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in scope.declared_global \
                            or target.id in scope.declared_nonlocal:
                        record(target.id, node,
                               "assigns the shared name")
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    record(_base_name(target), node,
                           "stores into the shared object")
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            record(_base_name(node.func.value), node,
                   f"calls .{node.func.attr}() on the shared object")
    return mutations
