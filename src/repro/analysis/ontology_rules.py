"""The ontology linter: rules over SOQA Ontology Meta Model content.

This module absorbs the original :mod:`repro.soqa.validate` diagnostics
and extends them with structural rules — taxonomy cycles, dangling
superconcept references, duplicate concept/instance names, attribute
shadowing, relationship range violations, and untyped instances.

All rules operate on an :class:`OntologyContext`, which can be built
from a fully linked :class:`~repro.soqa.metamodel.Ontology` *or* from a
raw concept list (:func:`lint_concepts`).  The latter matters because
:class:`Ontology` construction rejects cycles, dangling superconcepts
and duplicate names outright — the linter reports them as findings
instead of exceptions, which is what editor tooling and ``sst lint``
need when inspecting ontologies that do not load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    RuleRegistry,
    run_rules,
)
from repro.soqa.metamodel import Concept, Ontology, Relationship

__all__ = [
    "ONTOLOGY_RULES",
    "OntologyContext",
    "lint_concepts",
    "lint_ontology",
]

#: Registry of all ontology-family rules.
ONTOLOGY_RULES = RuleRegistry()

#: Literal datatypes a relationship may legitimately name instead of a
#: concept (mirrors the wrappers' vocabulary across all seven languages).
LITERAL_TYPES = frozenset({
    "string", "number", "integer", "float", "real", "boolean", "date",
    "truth", "symbol", "thing", "literal",
})


@dataclass
class OntologyContext:
    """What ontology rules see: a named, possibly unlinked concept set."""

    name: str
    concepts: list[Concept]
    ontology: Ontology | None = None

    def __post_init__(self):
        self.by_name: dict[str, Concept] = {}
        for concept in self.concepts:
            self.by_name.setdefault(concept.name, concept)

    def __contains__(self, concept_name: str) -> bool:
        return concept_name in self.by_name

    def ancestors(self, concept_name: str) -> list[Concept]:
        """All reachable superconcepts, cycle-safe, nearest first."""
        seen: set[str] = {concept_name}
        order: list[Concept] = []
        frontier = [concept_name]
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                concept = self.by_name.get(current)
                if concept is None:
                    continue
                for super_name in concept.superconcept_names:
                    if super_name not in seen:
                        seen.add(super_name)
                        parent = self.by_name.get(super_name)
                        if parent is not None:
                            order.append(parent)
                            next_frontier.append(super_name)
            frontier = next_frontier
        return order

    def find_relationship(self, concept_name: str,
                          relationship_name: str) -> Relationship | None:
        """The relationship declaration visible from ``concept_name``.

        Looks on the concept itself, then on its ancestors, then anywhere
        in the ontology (several wrappers attach relationships to the
        domain concept only).
        """
        concept = self.by_name.get(concept_name)
        candidates = ([concept] if concept is not None else []) \
            + self.ancestors(concept_name)
        for candidate in candidates:
            for relationship in candidate.relationships:
                if relationship.name == relationship_name:
                    return relationship
        for candidate in self.concepts:
            for relationship in candidate.relationships:
                if relationship.name == relationship_name:
                    return relationship
        return None


# ---------------------------------------------------------------------------
# Structural rules (fire on unlinked concept sets; a linked Ontology has
# already rejected these at construction time)
# ---------------------------------------------------------------------------


@ONTOLOGY_RULES.rule("taxonomy-cycle", "error", "ontology")
def _taxonomy_cycle(rule, context: OntologyContext):
    """The is-a graph contains a cycle, so taxonomic measures diverge."""
    state: dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done
    reported: set[frozenset] = set()

    def visit(name: str, trail: list[str]):
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            start = trail.index(name)
            members = frozenset(trail[start:])
            if members not in reported:
                reported.add(members)
                cycle = " -> ".join(trail[start:] + [name])
                yield rule.finding(
                    f"is-a cycle detected: {cycle}", subject=name,
                    ontology=context.name,
                    hint="break the cycle by removing one superconcept "
                         "edge")
            return
        state[name] = 1
        concept = context.by_name.get(name)
        if concept is not None:
            for super_name in concept.superconcept_names:
                if super_name in context.by_name:
                    yield from visit(super_name, trail + [name])
        state[name] = 2

    for concept in context.concepts:
        yield from visit(concept.name, [])


@ONTOLOGY_RULES.rule("dangling-superconcept", "error", "ontology")
def _dangling_superconcept(rule, context: OntologyContext):
    """A concept names a superconcept the ontology does not define."""
    for concept in context.concepts:
        for super_name in concept.superconcept_names:
            if super_name not in context.by_name:
                yield rule.finding(
                    f"superconcept {super_name!r} is not defined",
                    subject=concept.name, ontology=context.name,
                    hint="define the superconcept or drop the is-a edge")


@ONTOLOGY_RULES.rule("duplicate-concept", "error", "ontology")
def _duplicate_concept(rule, context: OntologyContext):
    """Two concepts share a name (or differ only in case: warning)."""
    seen: dict[str, str] = {}
    for concept in context.concepts:
        folded = concept.name.lower()
        previous = seen.get(folded)
        if previous is None:
            seen[folded] = concept.name
        elif previous == concept.name:
            yield rule.finding(
                f"concept {concept.name!r} is defined more than once",
                subject=concept.name, ontology=context.name,
                hint="merge or rename one of the definitions")
        else:
            yield rule.finding(
                f"concept {concept.name!r} collides with {previous!r} "
                "up to case; cross-language matching is case-sensitive",
                subject=concept.name, ontology=context.name,
                severity="warning",
                hint="align the spelling of both concept names")


# ---------------------------------------------------------------------------
# Content rules (absorbed from repro.soqa.validate)
# ---------------------------------------------------------------------------


@ONTOLOGY_RULES.rule("no-documentation", "warning", "ontology")
def _no_documentation(rule, context: OntologyContext):
    """A concept has no documentation, starving text-based measures."""
    for concept in context.concepts:
        if not concept.documentation:
            yield rule.finding(
                "concept has no documentation; text-based measures see "
                "only structural tokens",
                subject=concept.name, ontology=context.name,
                hint="add a documentation string to the concept")


@ONTOLOGY_RULES.rule("isolated-concept", "warning", "ontology")
def _isolated_concept(rule, context: OntologyContext):
    """A concept has no taxonomy links in a multi-root ontology."""
    roots = [concept for concept in context.concepts
             if not concept.superconcept_names]
    if len(roots) <= 1:
        return
    linked: set[str] = set()
    for concept in context.concepts:
        for super_name in concept.superconcept_names:
            linked.add(concept.name)
            linked.add(super_name)
    for concept in context.concepts:
        if concept.name not in linked:
            yield rule.finding(
                "concept has neither super- nor subconcepts; distance "
                "measures only reach it through the unified root",
                subject=concept.name, ontology=context.name,
                hint="attach the concept to the taxonomy")


@ONTOLOGY_RULES.rule("dangling-equivalent", "warning", "ontology")
def _dangling_equivalent(rule, context: OntologyContext):
    """An equivalent-concept reference is not defined locally."""
    for concept in context.concepts:
        for equivalent in concept.equivalent_concept_names:
            if equivalent not in context.by_name:
                yield rule.finding(
                    f"equivalent concept {equivalent!r} is not defined "
                    "in this ontology (may be cross-ontology)",
                    subject=concept.name, ontology=context.name,
                    hint="define the concept or qualify the reference "
                         "with its ontology")


@ONTOLOGY_RULES.rule("dangling-antonym", "warning", "ontology")
def _dangling_antonym(rule, context: OntologyContext):
    """An antonym-concept reference is not defined locally."""
    for concept in context.concepts:
        for antonym in concept.antonym_concept_names:
            if antonym not in context.by_name:
                yield rule.finding(
                    f"antonym concept {antonym!r} is not defined in "
                    "this ontology",
                    subject=concept.name, ontology=context.name,
                    hint="define the antonym concept or drop the link")


@ONTOLOGY_RULES.rule("unknown-related-concept", "error", "ontology")
def _unknown_related_concept(rule, context: OntologyContext):
    """A relationship relates a concept the ontology does not define."""
    for concept in context.concepts:
        for relationship in concept.relationships:
            for related in relationship.related_concept_names:
                if related in context.by_name:
                    continue
                if related.lower() in LITERAL_TYPES:
                    continue
                yield rule.finding(
                    f"relationship {relationship.name!r} relates unknown "
                    f"concept {related!r}",
                    subject=concept.name, ontology=context.name,
                    hint="define the related concept or use a literal "
                         "datatype")


@ONTOLOGY_RULES.rule("duplicate-instance", "error", "ontology")
def _duplicate_instance(rule, context: OntologyContext):
    """Two concepts define an instance of the same name."""
    owners: dict[str, str] = {}
    for concept in context.concepts:
        for instance in concept.instances:
            previous = owners.get(instance.name)
            if previous is not None:
                yield rule.finding(
                    f"instance {instance.name!r} already defined for "
                    f"concept {previous!r}",
                    subject=concept.name, ontology=context.name,
                    hint="rename one instance; instance names must be "
                         "unique per ontology")
            else:
                owners[instance.name] = concept.name


@ONTOLOGY_RULES.rule("dangling-instance-target", "warning", "ontology")
def _dangling_instance_target(rule, context: OntologyContext):
    """An instance relationship points at an unknown individual."""
    individuals = {instance.name for concept in context.concepts
                   for instance in concept.instances}
    for concept in context.concepts:
        for instance in concept.instances:
            for targets in instance.relationship_targets.values():
                for target in targets:
                    if target not in individuals:
                        yield rule.finding(
                            f"instance {instance.name!r} references "
                            f"unknown individual {target!r}",
                            subject=concept.name, ontology=context.name,
                            hint="define the target individual")


# ---------------------------------------------------------------------------
# New content rules
# ---------------------------------------------------------------------------


@ONTOLOGY_RULES.rule("attribute-shadowing", "warning", "ontology")
def _attribute_shadowing(rule, context: OntologyContext):
    """A concept re-declares an attribute of one of its superconcepts."""
    for concept in context.concepts:
        own = set(concept.attribute_names())
        if not own:
            continue
        for ancestor in context.ancestors(concept.name):
            shadowed = own.intersection(ancestor.attribute_names())
            for attribute_name in sorted(shadowed):
                yield rule.finding(
                    f"attribute {attribute_name!r} shadows the "
                    f"declaration inherited from {ancestor.name!r}",
                    subject=concept.name, ontology=context.name,
                    hint="declare the attribute once on the "
                         "superconcept, or rename the specialization")
            own -= shadowed


@ONTOLOGY_RULES.rule("relationship-range-violation", "error", "ontology")
def _relationship_range_violation(rule, context: OntologyContext):
    """An instance relationship target falls outside the declared range."""
    concept_of = {instance.name: instance.concept_name
                  for concept in context.concepts
                  for instance in concept.instances}
    for concept in context.concepts:
        for instance in concept.instances:
            for name, targets in instance.relationship_targets.items():
                declaration = context.find_relationship(
                    instance.concept_name, name)
                if declaration is None or declaration.arity < 2:
                    continue
                range_name = declaration.related_concept_names[-1]
                if range_name not in context.by_name:
                    continue  # literal or foreign range: nothing to check
                allowed = {range_name}
                allowed.update(
                    sub.name for sub in _descendants(context, range_name))
                for target in targets:
                    target_concept = concept_of.get(target)
                    if target_concept is None:
                        continue  # dangling-instance-target covers this
                    if target_concept in allowed:
                        continue
                    if range_name in {ancestor.name for ancestor in
                                      context.ancestors(target_concept)}:
                        continue
                    yield rule.finding(
                        f"instance {instance.name!r} relates {target!r} "
                        f"via {name!r}, but {target!r} is a "
                        f"{target_concept!r}, not a {range_name!r}",
                        subject=concept.name, ontology=context.name,
                        hint=f"retype {target!r} or widen the range of "
                             f"{name!r}")


@ONTOLOGY_RULES.rule("untyped-instance", "error", "ontology")
def _untyped_instance(rule, context: OntologyContext):
    """An instance's concept is empty or not defined in the ontology."""
    for concept in context.concepts:
        for instance in concept.instances:
            if not instance.concept_name:
                yield rule.finding(
                    f"instance {instance.name!r} has no concept",
                    subject=concept.name, ontology=context.name,
                    hint="assign the instance to a defined concept")
            elif instance.concept_name not in context.by_name:
                yield rule.finding(
                    f"instance {instance.name!r} is typed as undefined "
                    f"concept {instance.concept_name!r}",
                    subject=concept.name, ontology=context.name,
                    hint="define the concept or fix the instance type")


def _descendants(context: OntologyContext, name: str) -> list[Concept]:
    """All concepts below ``name``, cycle-safe (contexts may be unlinked)."""
    children: dict[str, list[Concept]] = {}
    for concept in context.concepts:
        for super_name in concept.superconcept_names:
            children.setdefault(super_name, []).append(concept)
    seen: set[str] = {name}
    order: list[Concept] = []
    frontier = [name]
    while frontier:
        next_frontier: list[str] = []
        for current in frontier:
            for child in children.get(current, ()):
                if child.name not in seen:
                    seen.add(child.name)
                    order.append(child)
                    next_frontier.append(child.name)
        frontier = next_frontier
    return order


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_ontology(ontology: Ontology,
                  config: AnalysisConfig | None = None,
                  registry: RuleRegistry | None = None) -> list[Finding]:
    """All findings for a loaded ontology, errors first."""
    context = OntologyContext(name=ontology.name,
                              concepts=ontology.concepts(),
                              ontology=ontology)
    return run_rules(registry or ONTOLOGY_RULES, "ontology", context, config)


def lint_concepts(concepts: list[Concept], name: str = "",
                  config: AnalysisConfig | None = None,
                  registry: RuleRegistry | None = None) -> list[Finding]:
    """All findings for a raw (possibly unlinkable) concept set.

    Unlike :class:`~repro.soqa.metamodel.Ontology` construction, this
    never raises on structural problems — cycles, dangling superconcepts
    and duplicate names come back as findings.
    """
    context = OntologyContext(name=name, concepts=list(concepts))
    return run_rules(registry or ONTOLOGY_RULES, "ontology", context, config)
