"""The ``code`` rule family: the toolkit's invariants, enforced on its
own source (``sst analyze``).

PRs 2-5 established guarantees that only dynamic tests enforced:
bit-identical output across the serial/thread/process strategies,
fork-safe workers, lock-guarded shared caches, atomic artifact writes,
namespaced telemetry.  Each rule here pins one of those invariants
statically, so a regression is caught at analysis time — before any
test has to happen to exercise the offending path.

Findings reuse the :class:`~repro.analysis.engine.Finding` shape of the
other families: ``ontology`` carries the file's display path,
``subject`` the enclosing ``Class.method`` (or offending symbol), and
``line``/``column`` the AST position, so text and JSON reports, rule
filtering and severity gating all work unchanged.

Suppression is per-line via ``# sst: disable=<code>`` pragmas (see
:mod:`repro.analysis.astwalk`) or per-finding via the committed
baseline (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.astwalk import (
    ModuleSource,
    ancestors,
    collect_python_files,
    dotted_name,
    enclosing_function,
    iter_calls,
    iter_functions,
    load_module,
    mutated_outer_names,
    parent,
    qualname_of,
)
from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    RuleRegistry,
    run_rules,
    sort_findings,
)

__all__ = [
    "CODE_RULES",
    "CodeContext",
    "METRIC_NAMESPACES",
    "analyze_paths",
]

#: Registry of all code-family rules.
CODE_RULES = RuleRegistry()

#: Registered metric namespace roots.  ``telemetry.count("cache.l2.hits")``
#: is legal; ``telemetry.count("l2hits")`` is not — un-rooted names
#: fragment the prometheus exposition the service endpoint scrapes.
METRIC_NAMESPACES = (
    "align", "analysis", "cache", "cluster", "diskcache", "facade",
    "faults", "graphindex", "index", "kernel", "parallel", "query",
    "resilience", "server", "service", "soqa", "store", "telemetry",
)

#: Wall-clock reads that break run-to-run reproducibility when they
#: feed measures, matrices or cache keys.  Monotonic/perf counters are
#: fine — they only ever measure durations.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random.<fn>`` module-level calls draw from the *global*, unseeded
#: RNG; ``random.Random(seed)`` constructs an owned, seeded stream.
_SEEDED_RANDOM_FACTORIES = frozenset({"random.Random"})

#: Order-sensitive consumers: iterating a bare ``set`` there leaks the
#: hash-seed-dependent iteration order into output or cache keys.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate",
                                    "reversed", "iter"})

#: Executor methods whose function argument runs on a pool worker.
_SUBMIT_METHODS = frozenset({"submit", "map"})

#: Call targets that are not safe to hand a forked process worker via
#: ``initargs`` (inherited handles belong to the parent).
_FORK_UNSAFE_FACTORIES = frozenset({
    "sqlite3.connect", "open", "io.open",
    "threading.Lock", "threading.RLock", "threading.Condition",
})

#: Telemetry hooks taking a metric name as their first argument.
_METRIC_HOOKS = ("telemetry.count", "telemetry.gauge",
                 "telemetry.observe")


@dataclass
class CodeContext:
    """What code rules see: every parsed module of the analyzed paths."""

    modules: list[ModuleSource] = field(default_factory=list)

    def calls(self) -> Iterator[tuple[ModuleSource, ast.Call, str]]:
        """Every call with its resolved dotted target (``""`` when the
        callee is not a plain name chain)."""
        for module in self.modules:
            for call in iter_calls(module.tree):
                yield module, call, module.resolve(call.func) or ""

    def functions(self) -> Iterator[tuple[ModuleSource, ast.FunctionDef]]:
        for module in self.modules:
            for function in iter_functions(module.tree):
                yield module, function

    def classes(self) -> Iterator[tuple[ModuleSource, ast.ClassDef]]:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node


def _matches(resolved: str, targets: Iterable[str]) -> bool:
    """True when ``resolved`` names any target fully qualified or as a
    dotted suffix (``repro.core.telemetry.span`` matches the target
    ``telemetry.span``; a bare local ``span`` does not)."""
    for target in targets:
        if resolved == target or resolved.endswith("." + target):
            return True
    return False


def _code_finding(rule, module: ModuleSource, node: ast.AST, message: str,
                  subject: str = "", hint: str = "",
                  severity: str | None = None) -> Finding:
    """A finding positioned at ``node`` inside ``module``."""
    return rule.finding(
        message, subject=subject or qualname_of(node),
        ontology=module.display, line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", -1) + 1, hint=hint,
        severity=severity)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


@CODE_RULES.rule("wallclock-call", "warning", "code")
def _wallclock_call(rule, context: CodeContext):
    """Determinism: no wall-clock reads — a ``time.time()`` that feeds a
    measure, matrix or cache key breaks bit-identical reruns."""
    for module, call, resolved in context.calls():
        if resolved in _WALLCLOCK_CALLS:
            yield _code_finding(
                rule, module, call,
                f"wall-clock read {resolved}() in similarity code; "
                "results must be bit-identical across reruns",
                hint="inject a clock (see resilience.Deadline) or use "
                     "time.monotonic/perf_counter for durations")


@CODE_RULES.rule("unseeded-random", "warning", "code")
def _unseeded_random(rule, context: CodeContext):
    """Determinism: no draws from the global unseeded RNG — randomness
    must come from an injected, seeded ``random.Random`` stream."""
    for module, call, resolved in context.calls():
        if resolved.startswith("random.") \
                and resolved not in _SEEDED_RANDOM_FACTORIES:
            yield _code_finding(
                rule, module, call,
                f"{resolved}() draws from the global unseeded RNG; "
                "reruns will diverge",
                hint="construct random.Random(seed) and pass it down "
                     "(see repro.ontologies.generator)")


def _is_set_expression(module: ModuleSource, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) \
        and module.resolve(node.func) in ("set", "frozenset")


@CODE_RULES.rule("unsorted-iteration", "warning", "code")
def _unsorted_iteration(rule, context: CodeContext):
    """Determinism: no iteration over a bare ``set`` where order can
    reach output or cache keys — wrap it in ``sorted(...)``."""
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not _is_set_expression(module, node):
                continue
            above = parent(node)
            ordered_sink = None
            if isinstance(above, ast.For) and above.iter is node:
                ordered_sink = "a for loop"
            elif isinstance(above, ast.comprehension) \
                    and above.iter is node:
                ordered_sink = "a comprehension"
            elif isinstance(above, ast.Call) and node in above.args:
                target = module.resolve(above.func) or ""
                if target in _ORDER_SENSITIVE_CALLS:
                    ordered_sink = f"{target}()"
                elif isinstance(above.func, ast.Attribute) \
                        and above.func.attr == "join":
                    ordered_sink = "str.join()"
            if ordered_sink is not None:
                yield _code_finding(
                    rule, module, node,
                    f"set iterated by {ordered_sink}; set order depends "
                    "on the per-process hash seed",
                    hint="wrap the set in sorted(...) before iterating")


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


def _worker_functions(module: ModuleSource
                      ) -> Iterator[tuple[ast.FunctionDef, ast.Call]]:
    """Module-local functions handed to ``pool.submit``/``pool.map``."""
    definitions = {function.name: function
                   for function in iter_functions(module.tree)}
    seen: set[str] = set()
    for call in iter_calls(module.tree):
        if not isinstance(call.func, ast.Attribute) \
                or call.func.attr not in _SUBMIT_METHODS or not call.args:
            continue
        target = call.args[0]
        if isinstance(target, ast.Name) and target.id in definitions \
                and target.id not in seen:
            seen.add(target.id)
            yield definitions[target.id], call


@CODE_RULES.rule("worker-shared-mutation", "error", "code")
def _worker_shared_mutation(rule, context: CodeContext):
    """Concurrency: a function submitted to a pool worker must not
    mutate module-level or closure-captured state — worker results may
    only travel back through return values (the merge-delta protocol)."""
    for module in context.modules:
        for function, _submission in _worker_functions(module):
            for name, node, how in mutated_outer_names(function):
                yield _code_finding(
                    rule, module, node,
                    f"worker function {function.name!r} {how} "
                    f"{name!r} outside its own scope",
                    subject=function.name,
                    hint="return the data and merge it in the parent "
                         "(see CachedRunner.merge)")


def _lock_attribute(class_node: ast.ClassDef,
                    module: ModuleSource) -> str | None:
    """The ``self.<name>`` lock attribute a class initializes, if any."""
    for node in ast.walk(class_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self" \
                and isinstance(node.value, ast.Call) \
                and _matches(module.resolve(node.value.func) or "",
                             ("threading.Lock", "threading.RLock")):
            return target.attr
    return None


def _under_lock(node: ast.AST, lock_name: str) -> bool:
    """True when ``node`` sits inside ``with self.<lock_name>``."""
    for ancestor in ancestors(node):
        if not isinstance(ancestor, ast.With):
            continue
        for item in ancestor.items:
            expression = item.context_expr
            if isinstance(expression, ast.Attribute) \
                    and expression.attr == lock_name \
                    and isinstance(expression.value, ast.Name) \
                    and expression.value.id == "self":
                return True
    return False


def _self_attribute_mutations(method: ast.FunctionDef
                              ) -> Iterator[tuple[str, ast.AST]]:
    """``(attribute, node)`` for every mutation of ``self.<attribute>``."""
    from repro.analysis.astwalk import MUTATING_METHODS

    def self_attr(node: ast.AST) -> str | None:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                attribute = self_attr(target)
                if attribute is not None:
                    yield attribute, node
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            attribute = self_attr(node.func.value)
            if attribute is not None:
                yield attribute, node


@CODE_RULES.rule("unlocked-shared-state", "error", "code")
def _unlocked_shared_state(rule, context: CodeContext):
    """Concurrency: attributes a class guards with its lock anywhere
    must be guarded *everywhere* — one unguarded store reintroduces the
    race (``CachedRunner``-style shared state discipline)."""
    for module, class_node in context.classes():
        lock_name = _lock_attribute(class_node, module)
        if lock_name is None:
            continue
        methods = [node for node in class_node.body
                   if isinstance(node, ast.FunctionDef)]
        guarded: set[str] = set()
        for method in methods:
            for attribute, node in _self_attribute_mutations(method):
                if _under_lock(node, lock_name):
                    guarded.add(attribute)
        guarded.discard(lock_name)
        if not guarded:
            continue
        for method in methods:
            if method.name == "__init__" or (
                    method.name.startswith("__")
                    and method.name.endswith("__")):
                continue  # construction / pickling own the object
            for attribute, node in _self_attribute_mutations(method):
                if attribute in guarded \
                        and not _under_lock(node, lock_name):
                    yield _code_finding(
                        rule, module, node,
                        f"self.{attribute} is mutated without "
                        f"self.{lock_name}, but other methods of "
                        f"{class_node.name} guard it",
                        subject=f"{class_node.name}.{method.name}",
                        hint=f"wrap the mutation in "
                             f"`with self.{lock_name}:`")


def _locally_fork_unsafe(call: ast.Call, module: ModuleSource) -> set[str]:
    """Names bound to fork-unsafe resources in the enclosing function."""
    function = enclosing_function(call)
    unsafe: set[str] = set()
    if function is None:
        return unsafe
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            resolved = module.resolve(node.value.func) or ""
            if _matches(resolved, _FORK_UNSAFE_FACTORIES):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        unsafe.add(target.id)
    return unsafe


@CODE_RULES.rule("fork-unsafe-initargs", "error", "code")
def _fork_unsafe_initargs(rule, context: CodeContext):
    """Concurrency: no open sqlite connections, file handles or locks in
    process-pool ``initargs`` — inherited handles belong to the parent
    and corrupt or deadlock in the child."""
    for module, call, resolved in context.calls():
        if not _matches(resolved, ("ProcessPoolExecutor",)):
            continue
        initargs = next((keyword.value for keyword in call.keywords
                         if keyword.arg == "initargs"), None)
        if not isinstance(initargs, (ast.Tuple, ast.List)):
            continue
        local_unsafe = _locally_fork_unsafe(call, module)
        for element in initargs.elts:
            description = None
            if isinstance(element, ast.Call):
                target = module.resolve(element.func) or ""
                if _matches(target, _FORK_UNSAFE_FACTORIES):
                    description = f"{target}(...)"
            elif isinstance(element, ast.Name) \
                    and element.id in local_unsafe:
                description = element.id
            if description is not None:
                yield _code_finding(
                    rule, module, element,
                    f"fork-unsafe resource {description} passed as a "
                    "process-pool initarg",
                    hint="open the resource inside the worker "
                         "initializer instead (per-process handle)")


#: Calls that block the calling thread outright; inside an ``async
#: def`` they freeze the whole event loop (the ``sst serve`` accept
#: loop serves no one while one coroutine sleeps).
_ASYNC_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen", "socket.create_connection",
    "sqlite3.connect",
})


def _own_flow_calls(function: ast.AST) -> Iterator[ast.Call]:
    """Calls in the function's own control flow — code inside a nested
    ``def``/``lambda`` runs when *that* function is called (possibly on
    an executor thread), so it is not this function's verdict."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@CODE_RULES.rule("async-blocking-call", "error", "code")
def _async_blocking_call(rule, context: CodeContext):
    """Concurrency: no blocking calls inside ``async def`` — a
    ``time.sleep`` (or subprocess / blocking socket call) in a
    coroutine wedges the entire event loop, so the server stops
    accepting connections for its duration."""
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _own_flow_calls(node):
                resolved = module.resolve(call.func) or ""
                if not _matches(resolved, _ASYNC_BLOCKING_CALLS):
                    continue
                yield _code_finding(
                    rule, module, call,
                    f"blocking call {resolved}(...) inside async "
                    f"function {node.name!r} stalls the event loop",
                    subject=node.name,
                    hint="await asyncio.sleep(...) for delays, or move "
                         "blocking work to loop.run_in_executor(...)")


# ---------------------------------------------------------------------------
# Resilience discipline
# ---------------------------------------------------------------------------


def _open_mode(call: ast.Call) -> str | None:
    """The constant mode string of an ``open(...)`` call, if present."""
    mode: ast.AST | None = call.args[1] if len(call.args) > 1 else None
    if mode is None:
        mode = next((keyword.value for keyword in call.keywords
                     if keyword.arg == "mode"), None)
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@CODE_RULES.rule("nonatomic-write", "error", "code")
def _nonatomic_write(rule, context: CodeContext):
    """Resilience: artifact writes go through ``atomic_write_text`` —
    a bare ``open(..., "w")`` interrupted mid-write leaves a truncated
    file the next run trips over."""
    for module, call, resolved in context.calls():
        if resolved in ("open", "io.open"):
            mode = _open_mode(call)
            if mode is not None and any(flag in mode for flag in "wax"):
                yield _code_finding(
                    rule, module, call,
                    f"direct open(..., {mode!r}) write; an interrupted "
                    "run leaves a truncated artifact",
                    hint="use repro.core.resilience.atomic_write_text "
                         "(temp file + os.replace)")
        elif isinstance(call.func, ast.Attribute) \
                and call.func.attr in ("write_text", "write_bytes"):
            yield _code_finding(
                rule, module, call,
                f"direct Path.{call.func.attr}() write; an interrupted "
                "run leaves a truncated artifact",
                hint="use repro.core.resilience.atomic_write_text "
                     "(temp file + os.replace)")


@CODE_RULES.rule("unknown-fault-site", "error", "code")
def _unknown_fault_site(rule, context: CodeContext):
    """Resilience: fault-injection site strings must name a registered
    ``KNOWN_FAULT_SITES`` entry — a typo'd site never fires and the
    chaos suite silently stops testing that path."""
    from repro.core.resilience import KNOWN_FAULT_SITES

    for module, call, resolved in context.calls():
        if not _matches(resolved, ("resilience.maybe_fire",
                                   "resilience.maybe_raise")):
            continue
        if not call.args:
            continue
        site = call.args[0]
        if isinstance(site, ast.Constant) and isinstance(site.value, str) \
                and site.value not in KNOWN_FAULT_SITES:
            yield _code_finding(
                rule, module, call,
                f"fault site {site.value!r} is not registered; known "
                f"sites: {', '.join(KNOWN_FAULT_SITES)}",
                subject=site.value,
                hint="add the site to resilience.KNOWN_FAULT_SITES or "
                     "fix the spelling")


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """A ``raise`` in the handler's *own* control flow — a raise inside
    a nested function/class merely defined in the handler does not
    re-raise, so it must not excuse a swallowed exception."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _broad_exception_names(handler: ast.ExceptHandler,
                           module: ModuleSource) -> list[str]:
    kinds = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return [name for kind in kinds
            for name in [module.resolve(kind) or dotted_name(kind) or ""]
            if name in ("Exception", "BaseException")]


@CODE_RULES.rule("swallowed-exception", "warning", "code")
def _swallowed_exception(rule, context: CodeContext):
    """Resilience: no bare ``except:`` / silent ``except Exception:`` —
    they swallow the typed ``ResilienceError`` hierarchy the supervisor
    and circuit breaker dispatch on."""
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _code_finding(
                    rule, module, node,
                    "bare except: catches everything, including "
                    "KeyboardInterrupt and the ResilienceError hierarchy",
                    severity="error",
                    hint="catch the narrowest exception type that can "
                         "actually occur here")
            elif _broad_exception_names(node, module) \
                    and not _handler_reraises(node):
                caught = ", ".join(_broad_exception_names(node, module))
                yield _code_finding(
                    rule, module, node,
                    f"except {caught} without re-raise swallows the "
                    "typed ResilienceError hierarchy",
                    hint="catch specific types, or re-raise after "
                         "recording the failure")


# ---------------------------------------------------------------------------
# Lifecycle discipline
# ---------------------------------------------------------------------------


def _constant_false_keyword(call: ast.Call, name: str) -> bool:
    """True when ``call`` passes the literal ``name=False``."""
    for keyword in call.keywords:
        if keyword.arg == name \
                and isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is False:
            return True
    return False


@CODE_RULES.rule("abandoning-executor-shutdown", "warning", "code")
def _abandoning_executor_shutdown(rule, context: CodeContext):
    """Lifecycle: ``Executor.shutdown(wait=False)`` abandons in-flight
    work silently — outside a drain-aware teardown (which has already
    waited for, or deliberately counted, the survivors) it drops
    requests the caller believes are still being answered.

    Only literal ``wait=False`` is flagged; a computed ``wait=`` is a
    decision, not an abandonment.  Functions whose name carries
    ``drain`` are the documented escape hatch: by then the drain loop
    owns the accounting (``server.drain.*``).
    """
    for module, call, _resolved in context.calls():
        if not isinstance(call.func, ast.Attribute) \
                or call.func.attr != "shutdown":
            continue
        if not _constant_false_keyword(call, "wait"):
            continue
        function = enclosing_function(call)
        if function is not None and "drain" in function.name:
            continue
        yield _code_finding(
            rule, module, call,
            "shutdown(wait=False) abandons in-flight work without "
            "draining or accounting for it",
            hint="drain first (wait for in-flight work, count what "
                 "was abandoned — see SimilarityServer."
                 "_drain_aware_executor_shutdown), or pragma a "
                 "deliberate abandonment")


def _under_main_thread_guard(node: ast.AST,
                             module: ModuleSource) -> bool:
    """True when ``node`` sits under ``if ... threading.main_thread()``."""
    for ancestor in ancestors(node):
        if not isinstance(ancestor, ast.If):
            continue
        for part in ast.walk(ancestor.test):
            if isinstance(part, ast.Call) and _matches(
                    module.resolve(part.func) or "",
                    ("threading.main_thread",)):
                return True
    return False


@CODE_RULES.rule("signal-off-main-thread", "warning", "code")
def _signal_off_main_thread(rule, context: CodeContext):
    """Lifecycle: ``signal.signal(...)`` raises ``ValueError`` anywhere
    but the main thread — library code cannot know its thread, so a
    bare registration is a latent crash in every embedded or
    background-thread deployment.

    Either install through the event loop (``loop.add_signal_handler``
    runs the callback on the loop, any thread) or guard the fallback
    with an explicit main-thread check, as
    :func:`repro.core.lifecycle.install_signal_drain` does.
    """
    for module, call, resolved in context.calls():
        if not _matches(resolved, ("signal.signal",)):
            continue
        if _under_main_thread_guard(call, module):
            continue
        yield _code_finding(
            rule, module, call,
            "signal.signal(...) without a main-thread guard raises "
            "ValueError in embedded/background-thread servers",
            hint="prefer loop.add_signal_handler, or guard with "
                 "`if threading.current_thread() is "
                 "threading.main_thread():` (see lifecycle."
                 "install_signal_drain)")


# ---------------------------------------------------------------------------
# Observability hygiene
# ---------------------------------------------------------------------------


def _metric_name_parts(argument: ast.AST) -> tuple[str, bool] | None:
    """``(literal_text, complete)`` of a metric-name argument.

    ``complete`` is False for f-strings, where only the leading literal
    segment can be checked statically.
    """
    if isinstance(argument, ast.Constant) \
            and isinstance(argument.value, str):
        return argument.value, True
    if isinstance(argument, ast.JoinedStr):
        head = argument.values[0] if argument.values else None
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, False
        return "", False
    return None


@CODE_RULES.rule("metric-name", "warning", "code")
def _metric_name(rule, context: CodeContext):
    """Observability: metric names must be dotted and rooted in a
    registered namespace, or the prometheus exposition fragments."""
    for module, call, resolved in context.calls():
        if not _matches(resolved, _METRIC_HOOKS) or not call.args:
            continue
        parts = _metric_name_parts(call.args[0])
        if parts is None:
            continue
        literal, complete = parts
        if complete and "." not in literal:
            yield _code_finding(
                rule, module, call,
                f"metric name {literal!r} is not dotted; use "
                "namespace.subsystem.metric",
                subject=literal,
                hint=f"root it in one of: {', '.join(METRIC_NAMESPACES)}")
            continue
        root = literal.split(".", 1)[0]
        # For f-strings only a complete leading root (text up to a dot)
        # is checkable; a bare prefix before the first placeholder is
        # not a verdict either way.
        if (complete or "." in literal) \
                and root and root not in METRIC_NAMESPACES:
            yield _code_finding(
                rule, module, call,
                f"metric name root {root!r} is not a registered "
                "namespace",
                subject=literal,
                hint=f"use one of: {', '.join(METRIC_NAMESPACES)}")


@CODE_RULES.rule("span-discipline", "error", "code")
def _span_discipline(rule, context: CodeContext):
    """Observability: spans are opened with ``with telemetry.span(...)``
    — a span entered by hand leaks open on any exception path and
    corrupts the tracer's thread-local stack."""
    for module, call, resolved in context.calls():
        if not _matches(resolved, ("telemetry.span",)):
            continue
        above = parent(call)
        if isinstance(above, ast.withitem) \
                and above.context_expr is call:
            continue
        yield _code_finding(
            rule, module, call,
            "telemetry.span(...) used outside a with statement; the "
            "span will not close on exceptions",
            hint="write `with telemetry.span(...):` around the work")


# ---------------------------------------------------------------------------
# Performance
# ---------------------------------------------------------------------------

#: The batch kernel module; importing it marks a module as hot-path
#: code expected to score pairs in batches.
_KERNEL_MODULE = "repro.core.kernel"

#: Loop constructs (statement loops and comprehensions) whose bodies
#: multiply a per-pair call into N or N-squared facade re-entries.
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp,
               ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _imports_kernel(module: ModuleSource) -> bool:
    for origin in module.imports.aliases.values():
        if origin == _KERNEL_MODULE \
                or origin.startswith(_KERNEL_MODULE + "."):
            return True
    return False


@CODE_RULES.rule("prefer-batch-kernel", "info", "code")
def _prefer_batch_kernel(rule, context: CodeContext):
    """Performance: a per-pair ``runner.run(a, b)`` inside a loop, in a
    module that already imports the batch kernel, re-enters the facade
    N (or N-squared) times where one kernel batch would do.

    Only modules importing :mod:`repro.core.kernel` are held to this —
    they are the hot paths that chose batch scoring; everything else
    (tests, the runners themselves) stays free to loop.  Deliberate
    per-pair loops (the fallback for measures without a batch form, the
    reference loop the kernel is gated against) carry a pragma.
    """
    for module in context.modules:
        if not _imports_kernel(module):
            continue
        for call in iter_calls(module.tree):
            function = call.func
            if not isinstance(function, ast.Attribute) \
                    or function.attr != "run":
                continue
            if len(call.args) != 2 or call.keywords:
                continue
            if not any(isinstance(above, _LOOP_NODES)
                       for above in ancestors(call)):
                continue
            yield _code_finding(
                rule, module, call,
                "per-pair .run(first, second) inside a loop in a "
                "kernel-importing module; this re-enters the facade "
                "once per pair",
                hint="score the whole batch with "
                     "repro.core.kernel.try_batch (or pragma a "
                     "deliberate fallback loop)")


#: Storage-layer classes held to indexed lookup: suffixes of class
#: names that own a concept collection with a by-name index.
_STORAGE_CLASS_SUFFIXES = ("Store", "Wrapper", "Ontology")

#: Comprehension nodes whose generators can scan a concept collection.
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                        ast.DictComp)


def _concept_scan(node: ast.AST) -> str | None:
    """The spelled form of a full-corpus scan iterable — an argument-less
    ``<x>.concepts()`` call or ``<x>._concepts.values()`` — else None."""
    if not isinstance(node, ast.Call) or node.args or node.keywords:
        return None
    function = node.func
    if not isinstance(function, ast.Attribute):
        return None
    if function.attr == "concepts":
        return ".concepts()"
    if function.attr == "values" \
            and isinstance(function.value, ast.Attribute) \
            and function.value.attr == "_concepts":
        return "._concepts.values()"
    return None


def _compares_name_of(nodes: Iterable[ast.AST],
                      loop_names: set[str]) -> bool:
    """True when any node tests ``<target>.name ==`` (either side)."""
    for top in nodes:
        for node in ast.walk(top):
            if not isinstance(node, ast.Compare) \
                    or not any(isinstance(op, ast.Eq) for op in node.ops):
                continue
            for operand in (node.left, *node.comparators):
                if isinstance(operand, ast.Attribute) \
                        and operand.attr == "name" \
                        and isinstance(operand.value, ast.Name) \
                        and operand.value.id in loop_names:
                    return True
    return False


def _loop_target_names(target: ast.AST) -> set[str]:
    return {name.id for name in ast.walk(target)
            if isinstance(name, ast.Name)}


@CODE_RULES.rule("full-materialization", "info", "code")
def _full_materialization(rule, context: CodeContext):
    """Performance: a storage class scanning every concept to find one
    by name.

    ``for concept in self.concepts(): if concept.name == wanted``
    materializes the whole corpus per lookup — at WordNet scale that is
    a hundred thousand rows pulled through the wrapper to answer one
    probe.  Store/wrapper/ontology classes keep a by-name index
    (``concept(name)`` / the sqlite name column) precisely so a lookup
    never depends on corpus size.
    """
    hint = ("look the concept up through the indexed accessor "
            "(concept(name) / an indexed sqlite query) instead of "
            "scanning the collection")
    for module, class_node in context.classes():
        if not class_node.name.endswith(_STORAGE_CLASS_SUFFIXES):
            continue
        for node in ast.walk(class_node):
            if isinstance(node, ast.For):
                scanned = _concept_scan(node.iter)
                if scanned is not None and _compares_name_of(
                        node.body, _loop_target_names(node.target)):
                    yield _code_finding(
                        rule, module, node,
                        f"loop over {scanned} filters by concept name in "
                        f"{class_node.name}; this materializes every "
                        "concept to find one",
                        hint=hint)
            elif isinstance(node, _COMPREHENSION_NODES):
                for generator in node.generators:
                    scanned = _concept_scan(generator.iter)
                    if scanned is not None and _compares_name_of(
                            [node], _loop_target_names(generator.target)):
                        yield _code_finding(
                            rule, module, node,
                            f"comprehension over {scanned} filters by "
                            f"concept name in {class_node.name}; this "
                            "materializes every concept to find one",
                            hint=hint)


# ---------------------------------------------------------------------------
# General hygiene
# ---------------------------------------------------------------------------


@CODE_RULES.rule("mutable-default-argument", "warning", "code")
def _mutable_default_argument(rule, context: CodeContext):
    """Shared state: a mutable default argument is one hidden object
    shared by every call — and by every pool worker thread."""
    for module, function in context.functions():
        defaults = list(function.args.defaults) \
            + [default for default in function.args.kw_defaults
               if default is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp)) \
                or (isinstance(default, ast.Call)
                    and (module.resolve(default.func) or "")
                    in ("list", "dict", "set", "bytearray"))
            if mutable:
                yield _code_finding(
                    rule, module, default,
                    f"mutable default argument in {function.name}(); "
                    "one shared instance crosses all calls and threads",
                    subject=function.name,
                    hint="default to None and create the object inside")


@CODE_RULES.rule("module-syntax-error", "error", "code")
def _module_syntax_error(rule, context: CodeContext):
    """A file under analysis does not parse.

    Registered for discoverability (``--list-rules``) and rule
    filtering; the actual findings are emitted by :func:`analyze_paths`
    while loading, before any AST exists.
    """
    return ()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_paths(paths: Iterable[str], config: AnalysisConfig | None = None,
                  registry: RuleRegistry | None = None) -> list[Finding]:
    """Run the code rules over Python files and directories.

    Directories are walked recursively for ``*.py``.  Unparseable files
    become ``module-syntax-error`` findings instead of aborting the
    run.  Findings on lines carrying a matching ``# sst:
    disable=<code>`` pragma are dropped here, so every renderer and the
    baseline diff see only live findings.
    """
    registry = registry if registry is not None else CODE_RULES
    config = config if config is not None else AnalysisConfig()
    context = CodeContext()
    error_findings: list[Finding] = []
    syntax_rule = registry.get("module-syntax-error") \
        if "module-syntax-error" in registry else None
    for file_path, display in collect_python_files(paths):
        try:
            context.modules.append(load_module(file_path, display))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            if syntax_rule is None or not config.selects(syntax_rule):
                continue
            line = getattr(error, "lineno", 0) or 0
            finding = Finding(
                severity="error", code="module-syntax-error",
                message=f"cannot analyze: {error}", subject="",
                ontology=display, line=line,
                column=getattr(error, "offset", 0) or 0,
                hint="fix the file before analysis can continue")
            if config.reports(finding):
                error_findings.append(finding)
    findings = run_rules(registry, "code", context, config)
    by_display = {module.display: module for module in context.modules}
    findings = [
        finding for finding in findings
        if not (finding.ontology in by_display
                and by_display[finding.ontology].suppressed(
                    finding.line, finding.code))]
    return sort_findings(findings + error_findings)
