"""The rule engine underneath ``sst lint``.

Static analysis in the toolkit is organized as a registry of
:class:`Rule` objects.  Each rule owns a stable code (e.g.
``taxonomy-cycle``), a default severity, and a ``check`` method that
yields structured :class:`Finding` records.  Two rule families exist:

* ``ontology`` rules inspect an ontology (or a not-yet-linked concept
  set) in SOQA Ontology Meta Model terms — see
  :mod:`repro.analysis.ontology_rules`;
* ``query`` rules walk a parsed SOQA-QL AST against the meta-model
  schema without executing it — see :mod:`repro.analysis.query_check`.

The engine itself is family-agnostic: it filters rules through an
:class:`AnalysisConfig` (per-rule enable/disable, minimum severity),
runs them, sorts the findings deterministically, and renders them as
text or schema-stable JSON for tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import UnknownRuleError

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Rule",
    "RuleRegistry",
    "SEVERITIES",
    "render_json",
    "render_text",
    "severity_rank",
    "sort_findings",
]

#: Recognized severities, mildest first.
SEVERITIES = ("info", "warning", "error")

#: Version of the JSON report schema emitted by :func:`render_json`.
REPORT_SCHEMA_VERSION = 1


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher is worse; unknown ranks lowest)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return -1


@dataclass(frozen=True)
class Finding:
    """One static-analysis result.

    ``subject`` names the element the finding is about (a concept, an
    instance, a query field); ``ontology`` the ontology it lives in (empty
    for query findings).  ``line``/``column`` are 1-based when known and
    ``0`` when the rule has no positional information.  ``hint`` is a
    short fix suggestion.
    """

    severity: str
    code: str
    message: str
    subject: str = ""
    ontology: str = ""
    line: int = 0
    column: int = 0
    hint: str = ""

    def location(self) -> str:
        """``"line L, column C"`` when positions are known, else ``""``."""
        if self.line:
            return f"line {self.line}, column {self.column}"
        return ""

    def as_dict(self) -> dict[str, object]:
        """The finding as a plain mapping with a stable key order."""
        return {
            "severity": self.severity,
            "code": self.code,
            "ontology": self.ontology,
            "subject": self.subject,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        where = self.subject
        if self.ontology:
            where = f"{self.ontology}:{self.subject}" if where \
                else self.ontology
        location = self.location()
        if location:
            where = f"{where} ({location})" if where else location
        prefix = f"{self.severity}[{self.code}]"
        if where:
            return f"{prefix} {where}: {self.message}"
        return f"{prefix} {self.message}"


class Rule:
    """One static-analysis rule.

    Subclasses (or :meth:`RuleRegistry.rule`-decorated functions) provide
    ``check(context)`` yielding :class:`Finding` records.  ``severity`` is
    the default severity; individual findings may deviate (a rule may
    e.g. downgrade a borderline case to a warning).
    """

    code: str = ""
    severity: str = "warning"
    family: str = ""
    description: str = ""

    def check(self, context) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, message: str, subject: str = "", ontology: str = "",
                line: int = 0, column: int = 0, hint: str = "",
                severity: str | None = None) -> Finding:
        """A :class:`Finding` attributed to this rule."""
        return Finding(severity=severity or self.severity, code=self.code,
                       message=message, subject=subject, ontology=ontology,
                       line=line, column=column, hint=hint)


class _FunctionRule(Rule):
    """Adapter turning a plain generator function into a :class:`Rule`."""

    def __init__(self, code: str, severity: str, family: str,
                 description: str,
                 check: Callable[[Rule, object], Iterable[Finding]]):
        self.code = code
        self.severity = severity
        self.family = family
        self.description = description
        self._check = check

    def check(self, context) -> Iterable[Finding]:
        return self._check(self, context)


class RuleRegistry:
    """All known rules, addressable by their stable codes."""

    def __init__(self):
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        """Register ``rule`` under its code (later wins, like wrappers)."""
        self._rules[rule.code] = rule
        return rule

    def rule(self, code: str, severity: str, family: str,
             description: str = ""):
        """Decorator: register a generator function as a rule.

        The decorated function receives ``(rule, context)`` and yields
        findings, typically via ``rule.finding(...)`` so code and default
        severity stay attached to the rule declaration.
        """

        def decorate(function):
            self.register(_FunctionRule(
                code, severity, family,
                description or (function.__doc__ or "").strip().split("\n")[0],
                function))
            return function

        return decorate

    def get(self, code: str) -> Rule:
        """The rule registered under ``code``."""
        try:
            return self._rules[code]
        except KeyError:
            raise UnknownRuleError(code, sorted(self._rules)) from None

    def codes(self, family: str | None = None) -> list[str]:
        """All registered rule codes (optionally one family), sorted."""
        return sorted(code for code, rule in self._rules.items()
                      if family is None or rule.family == family)

    def rules(self, family: str | None = None) -> list[Rule]:
        """All registered rules (optionally one family), by code."""
        return [self._rules[code] for code in self.codes(family)]

    def __contains__(self, code: str) -> bool:
        return code in self._rules


@dataclass(frozen=True)
class AnalysisConfig:
    """Which rules run and which findings are reported.

    ``only`` restricts the run to the named codes (``None`` means all);
    ``disabled`` switches individual codes off; ``min_severity`` drops
    findings milder than the given severity.  Unknown codes raise
    :class:`~repro.errors.UnknownRuleError` via :meth:`validate` so typos
    in ``--rule``/``--disable`` fail loudly instead of silently linting
    nothing.
    """

    only: frozenset[str] | None = None
    disabled: frozenset[str] = field(default_factory=frozenset)
    min_severity: str = "info"

    @classmethod
    def create(cls, only: Iterable[str] | None = None,
               disabled: Iterable[str] = (),
               min_severity: str = "info") -> "AnalysisConfig":
        """Build a config from plain iterables (CLI-friendly)."""
        return cls(only=frozenset(only) if only is not None else None,
                   disabled=frozenset(disabled),
                   min_severity=min_severity)

    def validate(self, *registries: RuleRegistry) -> None:
        """Raise for any configured code no given registry knows.

        Callers that mix rule families (e.g. the ``sst lint`` CLI) pass
        every registry in play, so an ontology-rule filter is legal on a
        run that also checks queries.  :func:`run_rules` itself does not
        validate — a config naming codes of another family must simply
        select nothing there.
        """
        known: set[str] = set()
        for registry in registries:
            known.update(registry.codes())
        for code in sorted(self.disabled | (self.only or frozenset())):
            if code not in known:
                raise UnknownRuleError(code, sorted(known))

    def selects(self, rule: Rule) -> bool:
        """True when ``rule`` should run under this config."""
        if rule.code in self.disabled:
            return False
        if self.only is not None and rule.code not in self.only:
            return False
        return True

    def reports(self, finding: Finding) -> bool:
        """True when ``finding`` is severe enough to report."""
        return severity_rank(finding.severity) >= \
            severity_rank(self.min_severity)


def run_rules(registry: RuleRegistry, family: str, context,
              config: AnalysisConfig | None = None) -> list[Finding]:
    """Run every selected rule of ``family`` over ``context``.

    Returns the findings sorted by :func:`sort_findings`.
    """
    config = config if config is not None else AnalysisConfig()
    findings: list[Finding] = []
    for rule in registry.rules(family):
        if not config.selects(rule):
            continue
        findings.extend(finding for finding in rule.check(context)
                        if config.reports(finding))
    return sort_findings(findings)


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: errors first, then code, place, subject."""
    return sorted(findings, key=lambda finding: (
        -severity_rank(finding.severity), finding.code, finding.ontology,
        finding.line, finding.column, finding.subject, finding.message))


def gate(findings: Iterable[Finding], fail_on: str = "error") -> bool:
    """True when any finding reaches the ``fail_on`` severity."""
    threshold = severity_rank(fail_on)
    return any(severity_rank(finding.severity) >= threshold
               for finding in findings)


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    """Finding counts per severity plus a total."""
    counts = {severity: 0 for severity in reversed(SEVERITIES)}
    total = 0
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
        total += 1
    counts["total"] = total
    return counts


def render_text(findings: list[Finding]) -> str:
    """The findings as one line each, plus a summary line."""
    if not findings:
        return "no findings"
    lines = [str(finding) for finding in findings]
    counts = summarize(findings)
    parts = [f"{counts[severity]} {severity}(s)"
             for severity in reversed(SEVERITIES) if counts.get(severity)]
    lines.append(f"({counts['total']} findings: {', '.join(parts)})")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """The findings as a schema-stable JSON report.

    The report shape is ``{"version", "findings": [...], "summary"}``
    with the per-finding keys of :meth:`Finding.as_dict`; consumers can
    rely on key order and on :func:`sort_findings` ordering.
    """
    report = {
        "version": REPORT_SCHEMA_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "summary": summarize(findings),
    }
    return json.dumps(report, indent=2, sort_keys=False)
