"""Gnuplot script and data-file generation.

Reproduces the paper's visualization pipeline: SST writes a ``.dat``
data file and a ``.gp`` script which, fed to Gnuplot, produce the bar
charts shown in the paper (e.g. Fig. 5).  The artifacts are plain text,
so they are generated and returned (and optionally written to disk) even
on machines without Gnuplot.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.resilience import atomic_write_text
from repro.errors import VisualizationError

__all__ = ["GnuplotArtifacts", "gnuplot_bar_chart"]


@dataclass
class GnuplotArtifacts:
    """A Gnuplot script plus the data file it plots."""

    script: str
    data: str
    script_name: str = "chart.gp"
    data_name: str = "chart.dat"

    def write(self, directory: str | Path) -> tuple[Path, Path]:
        """Write both artifacts into ``directory``; returns their paths.

        Writes are atomic (temp file + rename): an interrupted run
        never leaves a truncated script for Gnuplot to choke on.
        """
        directory = Path(directory)
        script_path = directory / self.script_name
        data_path = directory / self.data_name
        atomic_write_text(script_path, self.script)
        atomic_write_text(data_path, self.data)
        return script_path, data_path


def _escape(label: str) -> str:
    return label.replace('"', "'")


def gnuplot_bar_chart(title: str, labels: list[str], values: list[float],
                      output_name: str = "chart.png",
                      ylabel: str = "similarity") -> GnuplotArtifacts:
    """Artifacts for a labeled bar chart like the paper's Figure 5."""
    if len(labels) != len(values):
        raise VisualizationError(
            f"label/value count mismatch: {len(labels)} vs {len(values)}")
    if not labels:
        raise VisualizationError("cannot plot an empty series")
    data_lines = [f'"{_escape(label)}" {value:.6f}'
                  for label, value in zip(labels, values)]
    data = "\n".join(data_lines) + "\n"
    script = "\n".join([
        f'set title "{_escape(title)}"',
        "set terminal png size 900,480",
        f'set output "{output_name}"',
        "set style data histogram",
        "set style fill solid 0.8 border -1",
        "set boxwidth 0.8",
        f'set ylabel "{_escape(ylabel)}"',
        "set yrange [0:*]",
        "set xtics rotate by -35",
        "set grid ytics",
        'plot "chart.dat" using 2:xtic(1) notitle',
    ]) + "\n"
    return GnuplotArtifacts(script=script, data=data)
