"""Self-contained SVG rendering for similarity charts.

No plotting library is available offline, so the charts the paper's SST
returns as images are rendered here as standalone SVG documents — the
modern equivalent of the toolkit returning a chart object.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import VisualizationError

__all__ = ["render_bar_chart_svg", "render_grouped_bar_chart_svg"]

_PALETTE = ("#4878a8", "#e89c3f", "#6aa56e", "#c05d5d", "#8d6cab",
            "#70a8b8", "#b8a04a", "#a87898")


def _svg_header(width: int, height: int, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica, Arial, sans-serif">',
        f'<title>{escape(title)}</title>',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="{width / 2:.0f}" y="24" font-size="16" '
        f'text-anchor="middle" fill="#222222">{escape(title)}</text>',
    ]


def _axis(left: int, top: int, plot_width: int, plot_height: int,
          max_value: float, tick_count: int = 5) -> list[str]:
    parts = [
        f'<line x1="{left}" y1="{top}" x2="{left}" '
        f'y2="{top + plot_height}" stroke="#444444"/>',
        f'<line x1="{left}" y1="{top + plot_height}" '
        f'x2="{left + plot_width}" y2="{top + plot_height}" '
        f'stroke="#444444"/>',
    ]
    for tick in range(tick_count + 1):
        value = max_value * tick / tick_count
        y = top + plot_height - plot_height * tick / tick_count
        parts.append(
            f'<line x1="{left - 4}" y1="{y:.1f}" x2="{left}" y2="{y:.1f}" '
            f'stroke="#444444"/>')
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end" fill="#444444">{value:.2f}</text>')
        if tick:
            parts.append(
                f'<line x1="{left}" y1="{y:.1f}" '
                f'x2="{left + plot_width}" y2="{y:.1f}" '
                f'stroke="#dddddd" stroke-dasharray="3,3"/>')
    return parts


def render_bar_chart_svg(title: str, labels: list[str],
                         values: list[float], width: int = 900,
                         height: int = 480) -> str:
    """Render one series of labeled bars as an SVG document string."""
    if len(labels) != len(values):
        raise VisualizationError(
            f"label/value count mismatch: {len(labels)} vs {len(values)}")
    if not labels:
        raise VisualizationError("cannot plot an empty series")
    left, top, bottom_margin, right_margin = 70, 40, 130, 20
    plot_width = width - left - right_margin
    plot_height = height - top - bottom_margin
    max_value = max(max(values), 1e-9)
    parts = _svg_header(width, height, title)
    parts.extend(_axis(left, top, plot_width, plot_height, max_value))
    slot = plot_width / len(values)
    bar_width = slot * 0.7
    for index, (label, value) in enumerate(zip(labels, values)):
        bar_height = plot_height * value / max_value
        x = left + slot * index + (slot - bar_width) / 2
        y = top + plot_height - bar_height
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{color}"/>')
        parts.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{y - 4:.1f}" '
            f'font-size="10" text-anchor="middle" '
            f'fill="#222222">{value:.3f}</text>')
        label_x = left + slot * index + slot / 2
        label_y = top + plot_height + 12
        parts.append(
            f'<text x="{label_x:.1f}" y="{label_y:.1f}" font-size="10" '
            f'text-anchor="end" fill="#222222" transform="rotate(-35 '
            f'{label_x:.1f} {label_y:.1f})">{escape(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_grouped_bar_chart_svg(title: str, group_labels: list[str],
                                 series: dict[str, list[float]],
                                 width: int = 900,
                                 height: int = 480) -> str:
    """Render several named series side by side per group label."""
    if not series:
        raise VisualizationError("cannot plot without series")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise VisualizationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(group_labels)} groups")
    if not group_labels:
        raise VisualizationError("cannot plot an empty series")
    left, top, bottom_margin, right_margin = 70, 40, 130, 160
    plot_width = width - left - right_margin
    plot_height = height - top - bottom_margin
    max_value = max((max(values) for values in series.values()),
                    default=0.0)
    max_value = max(max_value, 1e-9)
    parts = _svg_header(width, height, title)
    parts.extend(_axis(left, top, plot_width, plot_height, max_value))
    group_slot = plot_width / len(group_labels)
    bar_slot = group_slot * 0.8 / len(series)
    for series_index, (series_name, values) in enumerate(series.items()):
        color = _PALETTE[series_index % len(_PALETTE)]
        for group_index, value in enumerate(values):
            bar_height = plot_height * value / max_value
            x = (left + group_slot * group_index + group_slot * 0.1
                 + bar_slot * series_index)
            y = top + plot_height - bar_height
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_slot * 0.9:.1f}"'
                f' height="{bar_height:.1f}" fill="{color}"/>')
        legend_y = top + 16 * series_index
        legend_x = width - right_margin + 12
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y}" width="10" height="10" '
            f'fill="{color}"/>')
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y + 9}" font-size="11" '
            f'fill="#222222">{escape(series_name)}</text>')
    for group_index, label in enumerate(group_labels):
        label_x = left + group_slot * group_index + group_slot / 2
        label_y = top + plot_height + 12
        parts.append(
            f'<text x="{label_x:.1f}" y="{label_y:.1f}" font-size="10" '
            f'text-anchor="end" fill="#222222" transform="rotate(-35 '
            f'{label_x:.1f} {label_y:.1f})">{escape(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
