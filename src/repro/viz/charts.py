"""High-level chart objects returned by the SST facade.

A chart bundles its data with every rendering the toolkit supports:
SVG (``to_svg``), terminal ASCII (``to_ascii``), and the Gnuplot
script/data pair the paper's implementation hands to the ``gnuplot``
binary (``to_gnuplot``).  ``save`` writes all artifacts next to each
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.resilience import atomic_write_text
from repro.viz.ascii import render_bar_chart_ascii
from repro.viz.gnuplot import GnuplotArtifacts, gnuplot_bar_chart
from repro.viz.heatmap import render_heatmap_ascii, render_heatmap_svg
from repro.viz.svg import render_bar_chart_svg, render_grouped_bar_chart_svg

__all__ = ["BarChart", "GroupedBarChart", "HeatmapChart"]


@dataclass
class BarChart:
    """One labeled series of similarity values."""

    title: str
    labels: list[str]
    values: list[float]

    def to_svg(self, width: int = 900, height: int = 480) -> str:
        """The chart as a standalone SVG document string."""
        return render_bar_chart_svg(self.title, self.labels, self.values,
                                    width=width, height=height)

    def to_ascii(self, width: int = 50) -> str:
        """The chart drawn with terminal block characters."""
        return render_bar_chart_ascii(self.title, self.labels, self.values,
                                      width=width)

    def to_gnuplot(self, output_name: str = "chart.png") -> GnuplotArtifacts:
        """The Gnuplot script/data pair the paper's SST generates."""
        return gnuplot_bar_chart(self.title, self.labels, self.values,
                                 output_name=output_name)

    def save(self, directory: str | Path, stem: str = "chart") -> list[Path]:
        """Write SVG, Gnuplot script and data file into ``directory``
        (atomically, like every SST artifact write)."""
        directory = Path(directory)
        svg_path = directory / f"{stem}.svg"
        atomic_write_text(svg_path, self.to_svg())
        artifacts = self.to_gnuplot(output_name=f"{stem}.png")
        artifacts.script_name = f"{stem}.gp"
        artifacts.data_name = f"{stem}.dat"
        script_path, data_path = artifacts.write(directory)
        return [svg_path, script_path, data_path]


@dataclass
class HeatmapChart:
    """A square similarity matrix with its labels.

    The "more advanced result visualizations" of the paper's future
    work — returned by the facade's matrix-plot service.
    """

    title: str
    labels: list[str]
    matrix: list[list[float]]

    def to_svg(self, cell_size: int = 46) -> str:
        """The heatmap as a standalone SVG document string."""
        return render_heatmap_svg(self.title, self.labels, self.matrix,
                                  cell_size=cell_size)

    def to_ascii(self) -> str:
        """The heatmap as a shaded character grid."""
        return render_heatmap_ascii(self.title, self.labels, self.matrix)

    def save(self, directory: str | Path,
             stem: str = "heatmap") -> list[Path]:
        """Write the SVG and a plain-text matrix dump (atomically)."""
        directory = Path(directory)
        svg_path = directory / f"{stem}.svg"
        atomic_write_text(svg_path, self.to_svg())
        text_path = directory / f"{stem}.txt"
        atomic_write_text(text_path, self.to_ascii())
        return [svg_path, text_path]


@dataclass
class GroupedBarChart:
    """Several named series over shared group labels.

    Used by the facade's multi-measure plot service (signature S3): one
    group per concept pair, one series per measure.
    """

    title: str
    group_labels: list[str]
    series: dict[str, list[float]] = field(default_factory=dict)

    def to_svg(self, width: int = 900, height: int = 480) -> str:
        """The chart as a standalone SVG document string."""
        return render_grouped_bar_chart_svg(
            self.title, self.group_labels, self.series,
            width=width, height=height)

    def to_ascii(self, width: int = 40) -> str:
        """All series rendered as stacked ASCII bar charts."""
        sections = []
        for name, values in self.series.items():
            sections.append(render_bar_chart_ascii(
                f"{self.title} — {name}", self.group_labels, values,
                width=width))
        return "\n\n".join(sections)

    def save(self, directory: str | Path, stem: str = "chart") -> list[Path]:
        """Write the SVG and per-series Gnuplot artifacts (atomically)."""
        directory = Path(directory)
        paths = [directory / f"{stem}.svg"]
        atomic_write_text(paths[0], self.to_svg())
        for index, (name, values) in enumerate(self.series.items()):
            artifacts = gnuplot_bar_chart(
                f"{self.title} — {name}", self.group_labels, values,
                output_name=f"{stem}-{index}.png")
            artifacts.script_name = f"{stem}-{index}.gp"
            artifacts.data_name = f"{stem}-{index}.dat"
            script_path, data_path = artifacts.write(directory)
            paths.extend([script_path, data_path])
        return paths
