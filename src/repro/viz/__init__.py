"""Visualization backend of the toolkit.

The paper's SST "creates data files and scripts that are automatically
given as an input to Gnuplot".  This package generates exactly those
artifacts (:mod:`repro.viz.gnuplot`) and additionally renders charts
without any external binary, as SVG (:mod:`repro.viz.svg`) or as ASCII
for terminals (:mod:`repro.viz.ascii`).  :mod:`repro.viz.charts` is the
high-level API the SST facade and browser use.
"""

from repro.viz.charts import BarChart, GroupedBarChart
from repro.viz.gnuplot import GnuplotArtifacts, gnuplot_bar_chart

__all__ = ["BarChart", "GnuplotArtifacts", "GroupedBarChart",
           "gnuplot_bar_chart"]
