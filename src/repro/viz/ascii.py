"""ASCII chart rendering for terminals (SST Browser and CLI output)."""

from __future__ import annotations

from repro.errors import VisualizationError

__all__ = ["render_bar_chart_ascii", "render_table"]


def render_bar_chart_ascii(title: str, labels: list[str],
                           values: list[float], width: int = 50) -> str:
    """A horizontal bar chart drawn with block characters.

    >>> print(render_bar_chart_ascii("demo", ["a", "b"], [1.0, 0.5],
    ...                              width=4))  # doctest: +SKIP
    """
    if len(labels) != len(values):
        raise VisualizationError(
            f"label/value count mismatch: {len(labels)} vs {len(values)}")
    if not labels:
        raise VisualizationError("cannot plot an empty series")
    label_width = max(len(label) for label in labels)
    max_value = max(max(values), 1e-9)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar_length = round(width * value / max_value)
        bar = "█" * bar_length if bar_length else "▏"
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.4f}")
    return "\n".join(lines)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """A plain text table with aligned columns and a header rule."""
    if any(len(row) != len(headers) for row in rows):
        raise VisualizationError("all rows must match the header width")
    columns = [headers] + rows
    widths = [max(len(str(row[index])) for row in columns)
              for index in range(len(headers))]
    def format_row(row: list[str]) -> str:
        return " | ".join(str(cell).ljust(width)
                          for cell, width in zip(row, widths)).rstrip()
    lines = [format_row(headers),
             "-+-".join("-" * width for width in widths)]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)
