"""Similarity-matrix heatmaps — the "more advanced result
visualizations" the paper's future work announces (section 6).

Renders a square similarity matrix as an SVG heatmap (color-graded
cells with value annotations) or as an ASCII shade grid for terminals.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import VisualizationError

__all__ = ["render_heatmap_ascii", "render_heatmap_svg"]

#: ASCII shades from empty to full.
_SHADES = " ░▒▓█"


def _check(labels: list[str], matrix: list[list[float]]) -> None:
    if not labels:
        raise VisualizationError("cannot render an empty heatmap")
    if len(matrix) != len(labels) or any(len(row) != len(labels)
                                         for row in matrix):
        raise VisualizationError(
            f"matrix must be {len(labels)}x{len(labels)} to match the "
            "labels")


def _cell_color(value: float) -> str:
    """White (0.0) to deep blue (1.0)."""
    clamped = min(max(value, 0.0), 1.0)
    red = round(255 - 183 * clamped)
    green = round(255 - 135 * clamped)
    blue = round(255 - 87 * clamped)
    return f"rgb({red},{green},{blue})"


def render_heatmap_svg(title: str, labels: list[str],
                       matrix: list[list[float]], cell_size: int = 46,
                       ) -> str:
    """The matrix as a standalone SVG heatmap document."""
    _check(labels, matrix)
    count = len(labels)
    left, top = 150, 140
    width = left + count * cell_size + 20
    height = top + count * cell_size + 20
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica, Arial, sans-serif">',
        f"<title>{escape(title)}</title>",
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="{width / 2:.0f}" y="24" font-size="15" '
        f'text-anchor="middle" fill="#222222">{escape(title)}</text>',
    ]
    for index, label in enumerate(labels):
        column_x = left + index * cell_size + cell_size / 2
        parts.append(
            f'<text x="{column_x:.1f}" y="{top - 8}" font-size="10" '
            f'text-anchor="start" fill="#222222" transform="rotate(-45 '
            f'{column_x:.1f} {top - 8})">{escape(label)}</text>')
        row_y = top + index * cell_size + cell_size / 2 + 4
        parts.append(
            f'<text x="{left - 8}" y="{row_y:.1f}" font-size="10" '
            f'text-anchor="end" fill="#222222">{escape(label)}</text>')
    for row_index, row in enumerate(matrix):
        for column_index, value in enumerate(row):
            x = left + column_index * cell_size
            y = top + row_index * cell_size
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_size}" '
                f'height="{cell_size}" fill="{_cell_color(value)}" '
                f'stroke="#dddddd"/>')
            text_color = "#ffffff" if value > 0.6 else "#333333"
            parts.append(
                f'<text x="{x + cell_size / 2:.1f}" '
                f'y="{y + cell_size / 2 + 4:.1f}" font-size="10" '
                f'text-anchor="middle" fill="{text_color}">'
                f"{value:.2f}</text>")
    parts.append("</svg>")
    return "\n".join(parts)


def render_heatmap_ascii(title: str, labels: list[str],
                         matrix: list[list[float]]) -> str:
    """The matrix as a shaded character grid with a legend."""
    _check(labels, matrix)
    label_width = max(len(label) for label in labels)
    lines = [title, "=" * len(title)]
    header = " " * label_width + " " + " ".join(
        f"{index:>4d}" for index in range(len(labels)))
    lines.append(header)
    for index, (label, row) in enumerate(zip(labels, matrix)):
        cells = []
        for value in row:
            clamped = min(max(value, 0.0), 1.0)
            shade = _SHADES[min(int(clamped * len(_SHADES)),
                                len(_SHADES) - 1)]
            cells.append(f" {shade}{shade}{shade}")
        lines.append(f"{label.rjust(label_width)} " + " ".join(cells))
    lines.append("")
    lines.append("legend: " + "  ".join(
        f"{_SHADES[index]} {index / len(_SHADES):.1f}-"
        f"{(index + 1) / len(_SHADES):.1f}"
        for index in range(len(_SHADES))))
    lines.append("columns: " + ", ".join(
        f"{index}={label}" for index, label in enumerate(labels)))
    return "\n".join(lines)
