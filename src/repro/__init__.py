"""SOQA-SimPack Toolkit (SST) — a Python reproduction.

Reproduces *Detecting Similarities in Ontologies with the SOQA-SimPack
Toolkit* (Ziegler, Kiefer, Sturm, Dittrich, Bernstein; EDBT 2006):
an ontology-language independent API for generic similarity detection
and visualization in ontologies.

Quickstart::

    from repro import Measure, SOQASimPackToolkit, load_corpus

    sst = SOQASimPackToolkit(load_corpus())   # the paper's 943 concepts
    sst.get_similarity("Professor", "base1_0_daml",
                       "AssistantProfessor", "univ-bench_owl",
                       Measure.TFIDF)
    sst.get_most_similar_concepts("Person", "univ-bench_owl",
                                  k=10, measure=Measure.TFIDF)

Layers (bottom-up): :mod:`repro.soqa` (unified ontology access, four
language wrappers, SOQA-QL), :mod:`repro.simpack` (the similarity
measure library), :mod:`repro.core` (the SST facade, runners and the
unified Super-Thing tree), :mod:`repro.viz` (charts), plus the
:mod:`repro.browser` client and the :mod:`repro.align` application.
"""

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.results import ConceptAndSimilarity, QualifiedConcept
from repro.errors import SSTError
from repro.ontologies.library import load_corpus, load_wordnet
from repro.soqa.api import SOQA

__version__ = "1.0.0"

__all__ = [
    "ConceptAndSimilarity",
    "Measure",
    "QualifiedConcept",
    "SOQA",
    "SOQASimPackToolkit",
    "SSTError",
    "load_corpus",
    "load_wordnet",
]
