"""Ontology alignment on top of the SST facade.

The paper motivates SST with "ontology alignment and integration" and
the task of "finding semantically equivalent schema elements".  This
package is the flagship application: :mod:`repro.align.matcher` derives
concept correspondences from SST similarity matrices, and
:mod:`repro.align.evaluation` scores them against a reference alignment
with the usual precision/recall/F-measure.
"""

from repro.align.evaluation import AlignmentQuality, evaluate_alignment
from repro.align.io import (
    alignment_from_json,
    alignment_from_rdf,
    alignment_to_json,
    alignment_to_rdf,
)
from repro.align.matcher import (
    Correspondence,
    InstanceMatcher,
    OntologyMatcher,
)
from repro.align.study import MeasureStudy

__all__ = ["AlignmentQuality", "Correspondence", "InstanceMatcher",
           "MeasureStudy", "OntologyMatcher", "alignment_from_json",
           "alignment_from_rdf", "alignment_to_json", "alignment_to_rdf",
           "evaluate_alignment"]
