"""Measure evaluation study: which measure performs best on a task?

The paper's future work includes "a thorough evaluation to find the
best performing similarity measures in different task domains"
(section 6).  This module is that harness for the alignment task
domain: run every (normalized) registered measure — and optionally
combined measures — as the matcher's scoring function against a
reference alignment, and rank the measures by F-measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.align.evaluation import AlignmentQuality, evaluate_alignment
from repro.align.matcher import OntologyMatcher
from repro.core.facade import SOQASimPackToolkit

__all__ = ["MeasureStudy", "StudyResult"]


@dataclass(frozen=True)
class StudyResult:
    """One measure's performance on the task."""

    measure_name: str
    threshold: float
    alignment_size: int
    quality: AlignmentQuality

    def __str__(self) -> str:
        return (f"{self.measure_name:28s} t={self.threshold:.2f} "
                f"|A|={self.alignment_size:3d}  {self.quality}")


class MeasureStudy:
    """Ranks measures by alignment quality on one ontology pair."""

    def __init__(self, sst: SOQASimPackToolkit, first_ontology: str,
                 second_ontology: str,
                 reference: Iterable[tuple[str, str]],
                 thresholds: Sequence[float] = (0.3, 0.5, 0.7, 0.9)):
        self.sst = sst
        self.first_ontology = first_ontology
        self.second_ontology = second_ontology
        self.reference = list(reference)
        self.thresholds = tuple(thresholds)

    def evaluate_measure(self, measure) -> StudyResult:
        """The measure's best result over the threshold grid.

        Scoring all pairs once per measure and sweeping the threshold
        over the sorted pair list keeps the study at one similarity
        matrix per measure.
        """
        runner = self.sst.runner(measure)
        best: StudyResult | None = None
        for threshold in self.thresholds:
            matcher = OntologyMatcher(self.sst, measure=measure,
                                      threshold=threshold)
            alignment = matcher.match(self.first_ontology,
                                      self.second_ontology)
            quality = evaluate_alignment(alignment, self.reference)
            result = StudyResult(
                measure_name=runner.name,
                threshold=threshold,
                alignment_size=len(alignment),
                quality=quality,
            )
            if best is None or result.quality.f_measure > \
                    best.quality.f_measure:
                best = result
        assert best is not None  # thresholds is non-empty by signature
        return best

    def run(self, measures: Iterable | None = None) -> list[StudyResult]:
        """Evaluate the given measures (default: all normalized builtin
        measures); returns results ranked best-first."""
        if measures is None:
            measures = [info["id"]
                        for info in self.sst.available_measures()
                        if info["normalized"]]
        results = [self.evaluate_measure(measure) for measure in measures]
        results.sort(key=lambda result: (-result.quality.f_measure,
                                         result.measure_name))
        return results

    def report(self, results: Sequence[StudyResult]) -> str:
        """The study as a ranked text table."""
        from repro.viz.ascii import render_table

        rows = [[str(rank + 1), result.measure_name,
                 f"{result.threshold:.2f}",
                 str(result.alignment_size),
                 f"{result.quality.precision:.3f}",
                 f"{result.quality.recall:.3f}",
                 f"{result.quality.f_measure:.3f}"]
                for rank, result in enumerate(results)]
        return render_table(
            ["rank", "measure", "thr", "size", "precision", "recall",
             "f-measure"], rows)
