"""Alignment serialization: JSON and the Alignment-API RDF format.

The paper's closest related work (OLA, Euzénat et al.) lives in the
INRIA Alignment API ecosystem, whose RDF/XML alignment format became
the lingua franca of ontology-matching evaluation.  Alignments produced
by :class:`~repro.align.matcher.OntologyMatcher` can be exported to
(and re-imported from) both that format and a plain JSON form.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree
from xml.sax.saxutils import escape

from repro.align.matcher import Correspondence
from repro.core.results import QualifiedConcept
from repro.errors import SSTError

__all__ = ["alignment_from_json", "alignment_to_json",
           "alignment_from_rdf", "alignment_to_rdf"]

_ALIGN_NS = "http://knowledgeweb.semanticweb.org/heterogeneity/alignment"
_RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

JSON_FORMAT = "sst-alignment/1"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def alignment_to_json(correspondences: list[Correspondence],
                      indent: int | None = 2) -> str:
    """Serialize an alignment to JSON text."""
    document = {
        "format": JSON_FORMAT,
        "correspondences": [{
            "first_ontology": correspondence.first.ontology_name,
            "first_concept": correspondence.first.concept_name,
            "second_ontology": correspondence.second.ontology_name,
            "second_concept": correspondence.second.concept_name,
            "confidence": correspondence.confidence,
        } for correspondence in correspondences],
    }
    return json.dumps(document, indent=indent)


def alignment_from_json(text: str) -> list[Correspondence]:
    """Rebuild an alignment from JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SSTError(f"malformed alignment JSON: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("format") != JSON_FORMAT:
        raise SSTError(f"not a {JSON_FORMAT} document")
    correspondences = []
    for entry in document.get("correspondences", []):
        correspondences.append(Correspondence(
            first=QualifiedConcept(entry["first_ontology"],
                                   entry["first_concept"]),
            second=QualifiedConcept(entry["second_ontology"],
                                    entry["second_concept"]),
            confidence=float(entry["confidence"]),
        ))
    return correspondences


# ---------------------------------------------------------------------------
# Alignment-API RDF
# ---------------------------------------------------------------------------


def _entity_uri(concept: QualifiedConcept) -> str:
    return f"urn:sst:{concept.ontology_name}#{concept.concept_name}"


def _entity_from_uri(uri: str) -> QualifiedConcept:
    if not uri.startswith("urn:sst:") or "#" not in uri:
        raise SSTError(f"unrecognized entity URI {uri!r}")
    ontology_name, _, concept_name = uri[len("urn:sst:"):].partition("#")
    return QualifiedConcept(ontology_name, concept_name)


def alignment_to_rdf(correspondences: list[Correspondence],
                     first_ontology: str = "",
                     second_ontology: str = "") -> str:
    """The alignment in the INRIA Alignment API RDF/XML format.

    ``relation`` is always ``=`` (equivalence) since the greedy matcher
    proposes equivalences; ``measure`` carries the confidence.
    """
    cells = []
    for correspondence in correspondences:
        cells.append(f"""    <map>
      <Cell>
        <entity1 rdf:resource="{escape(_entity_uri(correspondence.first))}"/>
        <entity2 rdf:resource="{escape(_entity_uri(correspondence.second))}"/>
        <relation>=</relation>
        <measure rdf:datatype="http://www.w3.org/2001/XMLSchema#float">{correspondence.confidence:.6f}</measure>
      </Cell>
    </map>""")
    body = "\n".join(cells)
    return f"""<?xml version="1.0" encoding="utf-8"?>
<rdf:RDF xmlns="{_ALIGN_NS}"
         xmlns:rdf="{_RDF_NS}#">
  <Alignment>
    <xml>yes</xml>
    <level>0</level>
    <type>11</type>
    <onto1>{escape(first_ontology)}</onto1>
    <onto2>{escape(second_ontology)}</onto2>
{body}
  </Alignment>
</rdf:RDF>
"""


def alignment_from_rdf(text: str) -> list[Correspondence]:
    """Read an Alignment-API RDF/XML document produced by
    :func:`alignment_to_rdf` (or compatible tools using ``urn:sst``
    entity URIs)."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise SSTError(f"malformed alignment RDF: {exc}") from exc
    correspondences = []
    for cell in root.iter(f"{{{_ALIGN_NS}}}Cell"):
        entity1 = cell.find(f"{{{_ALIGN_NS}}}entity1")
        entity2 = cell.find(f"{{{_ALIGN_NS}}}entity2")
        measure = cell.find(f"{{{_ALIGN_NS}}}measure")
        if entity1 is None or entity2 is None:
            raise SSTError("alignment Cell without entity1/entity2")
        resource_key = f"{{{_RDF_NS}#}}resource"
        confidence = float(measure.text) if measure is not None \
            and measure.text else 1.0
        correspondences.append(Correspondence(
            first=_entity_from_uri(entity1.get(resource_key, "")),
            second=_entity_from_uri(entity2.get(resource_key, "")),
            confidence=confidence,
        ))
    return correspondences
