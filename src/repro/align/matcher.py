"""Deriving concept correspondences from SST similarity calculations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.core.results import QualifiedConcept
from repro.errors import SSTCoreError

__all__ = ["Correspondence", "InstanceMatcher", "OntologyMatcher"]


@dataclass(frozen=True)
class Correspondence:
    """One proposed concept correspondence between two ontologies."""

    first: QualifiedConcept
    second: QualifiedConcept
    confidence: float

    def as_pair(self) -> tuple[str, str]:
        """The correspondence as a bare concept-name pair."""
        return self.first.concept_name, self.second.concept_name

    def __str__(self) -> str:
        return f"{self.first} = {self.second} ({self.confidence:.3f})"


class OntologyMatcher:
    """Greedy one-to-one matcher over SST similarity scores.

    The matcher scores every concept pair of the two ontologies with a
    measure (or an amalgamation of measures registered with the facade),
    then selects correspondences greedily by descending score — the
    standard baseline strategy of alignment systems — subject to a
    confidence ``threshold`` and one-to-one mapping constraints.
    """

    def __init__(self, sst: SOQASimPackToolkit,
                 measure: int | str | Measure = Measure.TFIDF,
                 threshold: float = 0.5,
                 workers: int | None = None,
                 strategy: str | None = None):
        if not 0.0 <= threshold <= 1.0:
            raise SSTCoreError(
                f"threshold must be within [0, 1], got {threshold}")
        self.sst = sst
        self.measure = measure
        self.threshold = threshold
        self.workers = workers
        self.strategy = strategy

    def _concepts_of(self, ontology_name: str) -> list[QualifiedConcept]:
        ontology = self.sst.soqa.ontology(ontology_name)
        return [QualifiedConcept(ontology_name, concept.name)
                for concept in ontology]

    def score_pairs(self, first_ontology: str, second_ontology: str,
                    ) -> list[Correspondence]:
        """All cross-ontology pairs with their scores, best first.

        Candidate scoring is the matcher's hot loop (|O1| x |O2| pairs);
        it runs through the batch engine, so ``workers`` set on the
        matcher (or ``SST_WORKERS``) parallelizes it.
        """
        runner = self.sst.runner(self.measure)
        if not runner.is_normalized():
            raise SSTCoreError(
                f"matching needs a normalized measure; {runner.name} "
                "returns raw values")
        first_concepts = self._concepts_of(first_ontology)
        second_concepts = self._concepts_of(second_ontology)
        candidate_pairs = [(first, second)
                           for first in first_concepts
                           for second in second_concepts]
        engine = self.sst.engine(self.measure, workers=self.workers,
                                 strategy=self.strategy)
        scores = engine.score_pairs(candidate_pairs)
        pairs = [Correspondence(first, second, score)
                 for (first, second), score in zip(candidate_pairs, scores)]
        pairs.sort(key=lambda correspondence: (
            -correspondence.confidence,
            correspondence.first.concept_name,
            correspondence.second.concept_name))
        return pairs

    def match(self, first_ontology: str, second_ontology: str,
              ) -> list[Correspondence]:
        """A one-to-one alignment of the two ontologies.

        Greedy selection by descending confidence; every concept takes
        part in at most one correspondence and scores below the
        threshold are discarded.
        """
        matched_first: set[str] = set()
        matched_second: set[str] = set()
        alignment: list[Correspondence] = []
        for correspondence in self.score_pairs(first_ontology,
                                               second_ontology):
            if correspondence.confidence < self.threshold:
                break  # pairs are sorted; everything below is too weak
            if correspondence.first.concept_name in matched_first:
                continue
            if correspondence.second.concept_name in matched_second:
                continue
            matched_first.add(correspondence.first.concept_name)
            matched_second.add(correspondence.second.concept_name)
            alignment.append(correspondence)
        return alignment

    def top_candidates(self, concept_name: str, ontology_name: str,
                       target_ontology: str, k: int = 5,
                       ) -> list[Correspondence]:
        """The k best correspondence candidates for one concept."""
        anchor = QualifiedConcept(ontology_name, concept_name)
        targets = self._concepts_of(target_ontology)
        engine = self.sst.engine(self.measure, workers=self.workers,
                                 strategy=self.strategy)
        scores = engine.score_against(anchor, targets)
        candidates = [Correspondence(anchor, target, score)
                      for target, score in zip(targets, scores)]
        candidates.sort(key=lambda correspondence: (
            -correspondence.confidence,
            correspondence.second.concept_name))
        return candidates[:k]


class InstanceMatcher:
    """Record linkage: one-to-one matching of *individuals*.

    The paper motivates SST with finding "semantically equivalent schema
    elements" for data integration; the instance-level counterpart is
    linking the individuals themselves.  Scores come from the
    :class:`~repro.core.instances.InstanceSimilarityService` views
    (``features``, ``text``, or ``concepts``); selection is the same
    greedy one-to-one strategy as the concept matcher.
    """

    def __init__(self, sst: SOQASimPackToolkit, view: str = "text",
                 threshold: float = 0.5):
        from repro.core.instances import InstanceSimilarityService

        if not 0.0 <= threshold <= 1.0:
            raise SSTCoreError(
                f"threshold must be within [0, 1], got {threshold}")
        self.service = InstanceSimilarityService(sst)
        self.view = view
        self.threshold = threshold

    def _instances_of(self, ontology_name: str) -> list[str]:
        return [key.instance_name
                for key in self.service.all_instances()
                if key.ontology_name == ontology_name]

    def match(self, first_ontology: str, second_ontology: str,
              ) -> list[Correspondence]:
        """A one-to-one linkage of the two ontologies' individuals."""
        pairs = []
        for first in self._instances_of(first_ontology):
            for second in self._instances_of(second_ontology):
                confidence = self.service.get_similarity(
                    first, first_ontology, second, second_ontology,
                    self.view)
                pairs.append(Correspondence(
                    QualifiedConcept(first_ontology, first),
                    QualifiedConcept(second_ontology, second),
                    confidence))
        pairs.sort(key=lambda correspondence: (
            -correspondence.confidence,
            correspondence.first.concept_name,
            correspondence.second.concept_name))
        matched_first: set[str] = set()
        matched_second: set[str] = set()
        linkage = []
        for correspondence in pairs:
            if correspondence.confidence < self.threshold:
                break
            if correspondence.first.concept_name in matched_first:
                continue
            if correspondence.second.concept_name in matched_second:
                continue
            matched_first.add(correspondence.first.concept_name)
            matched_second.add(correspondence.second.concept_name)
            linkage.append(correspondence)
        return linkage
