"""Alignment quality evaluation: precision, recall, F-measure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.align.matcher import Correspondence

__all__ = ["AlignmentQuality", "evaluate_alignment"]


@dataclass(frozen=True)
class AlignmentQuality:
    """Standard alignment metrics against a reference alignment."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of proposed correspondences that are correct."""
        proposed = self.true_positives + self.false_positives
        if proposed == 0:
            return 0.0
        return self.true_positives / proposed

    @property
    def recall(self) -> float:
        """Fraction of reference correspondences that were found."""
        expected = self.true_positives + self.false_negatives
        if expected == 0:
            return 0.0
        return self.true_positives / expected

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def __str__(self) -> str:
        return (f"precision={self.precision:.3f} recall={self.recall:.3f} "
                f"f-measure={self.f_measure:.3f}")


def evaluate_alignment(proposed: Iterable[Correspondence],
                       reference: Iterable[tuple[str, str]],
                       ) -> AlignmentQuality:
    """Score a proposed alignment against reference name pairs.

    ``reference`` holds ``(first_concept_name, second_concept_name)``
    pairs; matching is case-insensitive on concept names, as alignments
    across languages with different naming conventions (OWL camel case
    vs PowerLoom upper case) would otherwise never match.
    """
    def normalize(pair: tuple[str, str]) -> tuple[str, str]:
        first, second = pair
        return first.lower(), second.lower()

    proposed_pairs = {normalize(correspondence.as_pair())
                      for correspondence in proposed}
    reference_pairs = {normalize(pair) for pair in reference}
    true_positives = len(proposed_pairs & reference_pairs)
    return AlignmentQuality(
        true_positives=true_positives,
        false_positives=len(proposed_pairs) - true_positives,
        false_negatives=len(reference_pairs) - true_positives,
    )
