"""The SOQA-SimPack Toolkit core (the paper's primary contribution).

* :mod:`repro.core.facade` — the SST Facade with the paper's service
  signatures (S1)-(S3) and the k-most-similar/-dissimilar services.
* :mod:`repro.core.runners` — MeasureRunner implementations coupling the
  SimPack measures to ontology data.
* :mod:`repro.core.wrapper` — the SOQAWrapper for SimPack, retrieving
  ontological data in the form the measures expect.
* :mod:`repro.core.unified` — the single ontology tree (Super Thing) all
  loaded ontologies are incorporated into, plus the merged-Thing
  alternative the paper rejects (Fig. 3).
* :mod:`repro.core.registry` — measure ids, names and the runner
  registry through which SST is extended.
* :mod:`repro.core.combined` — Ehrig-style amalgamated measures.
* :mod:`repro.core.parallel` — the batch execution engine that
  partitions pairwise similarity work across worker pools.
"""

from repro.core.facade import SOQASimPackToolkit
from repro.core.parallel import BatchSimilarityEngine
from repro.core.registry import Measure
from repro.core.results import ConceptAndSimilarity, QualifiedConcept
from repro.core.unified import MERGED_THING, SUPER_THING, UnifiedTree

__all__ = [
    "BatchSimilarityEngine",
    "ConceptAndSimilarity",
    "MERGED_THING",
    "Measure",
    "QualifiedConcept",
    "SOQASimPackToolkit",
    "SUPER_THING",
    "UnifiedTree",
]
