"""Zero-dependency metrics and tracing for the SST hot paths.

The ROADMAP's north star is a service under heavy traffic, and a
service that cannot be observed cannot be operated: until now the only
runtime signal SST emitted was an ad-hoc stderr hit-rate line.  This
module is the observability layer everything else reports into:

* a process-global :class:`MetricsRegistry` of **counters**, **gauges**
  and **histograms** (fixed bucket boundaries, prometheus-style
  cumulative exposition), and
* **span-based tracing**: nested, labelled, wall-clock-timed
  :class:`Span` records managed through a thread-local context stack,
  with explicit snapshot/merge so forked process workers can ship
  their metric deltas and span trees back to the parent.

Instrumented call sites never talk to the classes directly — they go
through the module-level hooks :func:`count`, :func:`gauge`,
:func:`observe` and :func:`span`.  Each hook first reads one module
global (:data:`_ENABLED`); when the ``SST_TELEMETRY=off`` kill switch
is set, every hook returns immediately (``span`` hands out a shared
no-op context manager), so the instrumented paths cost one boolean
check and nothing else.

The CLI surfaces this through ``sst trace <subcommand>`` (span tree)
and ``sst metrics [--format text|json|prometheus] <subcommand>``; see
:mod:`repro.cli`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "TELEMETRY_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "count",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "observe",
    "refresh_from_env",
    "render_span_tree",
    "reset",
    "set_enabled",
    "span",
]

#: Environment variable of the kill switch: ``off``/``0``/``false``
#: disables every hook; anything else (including unset) leaves them on.
TELEMETRY_ENV = "SST_TELEMETRY"

#: Default histogram bucket upper bounds, in seconds — spans latencies
#: from sub-millisecond cache hits to multi-second matrix batches.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 60.0)

_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def _env_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() not in _OFF_VALUES


#: The single boolean every hook checks.  ``refresh_from_env`` and
#: ``set_enabled`` are the only writers.
_ENABLED: bool = _env_enabled()


def enabled() -> bool:
    """Whether telemetry hooks are currently live."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Force the telemetry state, overriding the environment.

    ``sst trace`` / ``sst metrics`` call this: an explicit request to
    observe a run beats the ambient kill switch.
    """
    global _ENABLED
    _ENABLED = bool(value)


def refresh_from_env() -> bool:
    """Re-read ``SST_TELEMETRY`` (the CLI does this once per command)."""
    global _ENABLED
    _ENABLED = _env_enabled()
    return _ENABLED


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count (hits, misses, loads, ...)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def state(self) -> int:
        return self._value

    def merge_state(self, state: int) -> None:
        self.inc(int(state))


class Gauge:
    """A point-in-time value (table sizes, node counts, thresholds)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> float:
        return self._value

    def merge_state(self, state: float) -> None:
        # A worker's gauge reading supersedes the parent's: gauges are
        # last-write-wins, not additive.
        self.set(state)


class Histogram:
    """A fixed-boundary latency/size distribution.

    ``boundaries`` are the inclusive upper bounds of the finite
    buckets; one implicit overflow bucket catches everything above the
    last bound.  ``counts``/``total``/``sum`` expose the cumulative
    prometheus-style view.
    """

    __slots__ = ("name", "boundaries", "_counts", "_sum", "_min", "_max",
                 "_lock")

    kind = "histogram"

    def __init__(self, name: str, boundaries=DEFAULT_BUCKETS):
        boundaries = tuple(float(bound) for bound in boundaries)
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(
                f"histogram {name} needs sorted, non-empty boundaries")
        self.name = name
        self.boundaries = boundaries
        self._counts = [0] * (len(boundaries) + 1)
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.boundaries)
        for position, bound in enumerate(self.boundaries):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def total(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> list[int]:
        """Per-bucket counts (finite buckets first, overflow last)."""
        return list(self._counts)

    def state(self) -> dict:
        with self._lock:
            return {"boundaries": list(self.boundaries),
                    "counts": list(self._counts), "sum": self._sum,
                    "min": self._min, "max": self._max}

    def merge_state(self, state: Mapping) -> None:
        if list(state["boundaries"]) != list(self.boundaries):
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched buckets")
        with self._lock:
            for index, delta in enumerate(state["counts"]):
                self._counts[index] += delta
            self._sum += state["sum"]
            for key, better in (("min", min), ("max", max)):
                other = state.get(key)
                if other is None:
                    continue
                mine = getattr(self, f"_{key}")
                setattr(self, f"_{key}",
                        other if mine is None else better(mine, other))


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metric creation is idempotent (``counter("x")`` twice returns the
    same object) and lock-guarded, so any thread can instrument freely.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{kind.kind}")  # type: ignore[attr-defined]
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, boundaries=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, boundaries=boundaries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The metric called ``name``, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default=0):
        """Shortcut: the scalar value of a counter/gauge, or ``default``."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- snapshots and cross-process merge ---------------------------------

    def snapshot(self) -> dict:
        """A picklable ``{name: (kind, state)}`` view of every metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: (metric.kind, metric.state())
                for name, metric in metrics}

    def diff(self, base: Mapping) -> dict:
        """The delta snapshot accumulated since ``base`` was taken.

        Forked process workers call this with the snapshot taken right
        after the fork, so only work done *in the worker* travels back.
        Gauges are not differenced — the latest reading wins.
        """
        delta: dict = {}
        for name, (kind, state) in self.snapshot().items():
            base_entry = base.get(name)
            base_state = base_entry[1] if base_entry is not None else None
            if kind == "counter":
                changed = state - (base_state or 0)
                if changed:
                    delta[name] = (kind, changed)
            elif kind == "gauge":
                if base_state is None or state != base_state:
                    delta[name] = (kind, state)
            else:
                empty = {"counts": [0] * len(state["counts"]), "sum": 0.0,
                         "min": None, "max": None,
                         "boundaries": state["boundaries"]}
                base_hist = base_state or empty
                counts = [now - before for now, before
                          in zip(state["counts"], base_hist["counts"])]
                if any(counts):
                    delta[name] = (kind, {
                        "boundaries": state["boundaries"], "counts": counts,
                        "sum": state["sum"] - base_hist["sum"],
                        "min": state["min"], "max": state["max"]})
        return delta

    def merge(self, delta: Mapping) -> None:
        """Fold a :meth:`diff` delta (e.g. from a worker) into this
        registry."""
        for name, (kind, state) in delta.items():
            if kind == "counter":
                self.counter(name).merge_state(state)
            elif kind == "gauge":
                self.gauge(name).merge_state(state)
            else:
                self.histogram(
                    name, boundaries=state["boundaries"]).merge_state(state)

    # -- exposition --------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready ``{name: value-or-histogram-summary}`` mapping."""
        result: dict = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                state = metric.state()
                total = sum(state["counts"])
                result[name] = {
                    "count": total, "sum": state["sum"],
                    "min": state["min"], "max": state["max"],
                    "mean": state["sum"] / total if total else None,
                    "buckets": {
                        _bucket_label(bound): count
                        for bound, count in zip(
                            list(metric.boundaries) + [float("inf")],
                            state["counts"])},
                }
            else:
                result[name] = metric.value
        return result

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Aligned ``name  value`` lines; histograms as one summary line."""
        lines = []
        entries = []
        for name, value in self.as_dict().items():
            if isinstance(value, dict):
                mean = value["mean"]
                rendered = (f"count={value['count']} sum={value['sum']:.6f}s"
                            + (f" mean={mean * 1000:.3f}ms"
                               if mean is not None else ""))
            elif isinstance(value, float):
                rendered = f"{value:g}"
            else:
                rendered = str(value)
            entries.append((name, rendered))
        if not entries:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in entries)
        for name, rendered in entries:
            lines.append(f"{name:<{width}}  {rendered}")
        return "\n".join(lines)

    def render_prometheus(self, prefix: str = "sst") -> str:
        """Prometheus text exposition (``# TYPE`` lines + samples)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            flat = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
            if isinstance(metric, Histogram):
                state = metric.state()
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for bound, bucket_count in zip(
                        list(metric.boundaries) + [float("inf")],
                        state["counts"]):
                    cumulative += bucket_count
                    label = "+Inf" if bound == float("inf") else f"{bound:g}"
                    lines.append(
                        f'{flat}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{flat}_sum {state['sum']:g}")
                lines.append(f"{flat}_count {cumulative}")
            else:
                lines.append(f"# TYPE {flat} {metric.kind}")
                lines.append(f"{flat} {metric.value:g}")
        return "\n".join(lines)


def _bucket_label(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"le_{bound:g}"


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed, labelled region of work; spans nest into trees.

    Instances are plain data (picklable), so process workers can ship
    finished span trees back to the parent verbatim.
    """

    name: str
    labels: dict = field(default_factory=dict)
    started_at: float = 0.0
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def total_spans(self) -> int:
        """This span plus all descendants."""
        return 1 + sum(child.total_spans() for child in self.children)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first span called ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "duration": self.duration,
                "children": [child.as_dict() for child in self.children]}


class _SpanContext:
    """The context manager behind :func:`span`."""

    __slots__ = ("tracer", "span", "_parent")

    def __init__(self, tracer: "Tracer", span_record: Span,
                 parent: Span | None):
        self.tracer = tracer
        self.span = span_record
        self._parent = parent

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        self.span.started_at = time.perf_counter()
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.span.duration = time.perf_counter() - self.span.started_at
        self.tracer._pop(self.span)
        self.tracer._attach(self.span, self._parent)


class _NoopSpanContext:
    """Shared do-nothing context manager for the disabled state."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpanContext()


class Tracer:
    """Collects span trees via a thread-local context stack.

    Spans opened on a thread nest under that thread's innermost open
    span.  A span with no parent becomes a *root* and is appended to
    :attr:`roots` when it closes; the parallel engine passes an
    explicit ``parent`` so worker-thread spans graft into the main
    thread's tree instead of dangling as extra roots.
    """

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, /, parent: Span | None = None,
             **labels) -> _SpanContext:
        if parent is None:
            parent = self.current()
        return _SpanContext(self, Span(name=name, labels=labels), parent)

    def _push(self, span_record: Span) -> None:
        self._stack().append(span_record)

    def _pop(self, span_record: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_record:
            stack.pop()

    def _attach(self, span_record: Span, parent: Span | None) -> None:
        if parent is not None:
            # Concurrent worker threads may append to one parent.
            with self._lock:
                parent.children.append(span_record)
        else:
            with self._lock:
                self.roots.append(span_record)

    def attach_children(self, parent: Span | None,
                        spans: list[Span]) -> None:
        """Graft finished spans (e.g. from a process worker) into the
        tree."""
        with self._lock:
            if parent is not None:
                parent.children.extend(spans)
            else:
                self.roots.extend(spans)

    def drain(self) -> list[Span]:
        """Remove and return all finished root spans."""
        with self._lock:
            roots, self.roots = self.roots, []
        return roots

    def clear(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()


def render_span_tree(roots: list[Span], *, min_fraction: float = 0.0) -> str:
    """An indented, durations-annotated rendering of span trees.

    ``min_fraction`` prunes children cheaper than that fraction of the
    root (keeps worker-heavy traces readable); 0 shows everything.
    """
    lines: list[str] = []

    def render(span_record: Span, indent: int, budget: float) -> None:
        labels = "".join(
            f" {key}={value}" for key, value in span_record.labels.items())
        lines.append(f"{'  ' * indent}{span_record.name:<{max(1, 40 - 2 * indent)}}"
                     f" {span_record.duration * 1000:10.3f} ms{labels}")
        for child in span_record.children:
            if budget and child.duration < min_fraction * budget:
                continue
            render(child, indent + 1, budget)

    for root in roots:
        render(root, 0, root.duration)
    return "\n".join(lines) if lines else "(no spans recorded)"


# ---------------------------------------------------------------------------
# Process-global state and hooks
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def reset() -> None:
    """Drop all recorded metrics and spans (the CLI calls this per
    command, so in-process invocations don't bleed into each other)."""
    _REGISTRY.clear()
    _TRACER.clear()


def count(name: str, amount: int = 1) -> None:
    """Increment a counter — no-op under the kill switch."""
    if not _ENABLED:
        return
    _REGISTRY.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge — no-op under the kill switch."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float, boundaries=DEFAULT_BUCKETS) -> None:
    """Record a histogram observation — no-op under the kill switch."""
    if not _ENABLED:
        return
    _REGISTRY.histogram(name, boundaries=boundaries).observe(value)


def span(name: str, /, parent: Span | None = None, **labels):
    """Open a traced span context — a shared no-op under the kill
    switch.  ``name`` is positional-only, so a ``name=...`` label is
    legal."""
    if not _ENABLED:
        return _NOOP_SPAN
    return _TRACER.span(name, parent=parent, **labels)


def current_span() -> Span | None:
    """The calling thread's innermost open span (None when disabled)."""
    if not _ENABLED:
        return None
    return _TRACER.current()


def snapshot() -> dict:
    """Snapshot the global registry (for worker-delta bookkeeping)."""
    return _REGISTRY.snapshot()


def diff_since(base: Mapping) -> dict:
    """Delta of the global registry since ``base``."""
    return _REGISTRY.diff(base)


def merge(delta: Mapping) -> None:
    """Merge a worker's metric delta into the global registry."""
    _REGISTRY.merge(delta)
