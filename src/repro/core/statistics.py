"""Descriptive statistics over loaded ontologies.

Supports the browser's overview use case ("quickly survey concepts and
their attributes, methods, relationships, and instances ... as well as
metadata", paper section 4) with per-ontology structural summaries:
concept/element counts, taxonomy depth, branching, and root/leaf
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soqa.api import SOQA
from repro.soqa.metamodel import Ontology

__all__ = ["OntologyStatistics", "corpus_statistics", "ontology_statistics"]


@dataclass(frozen=True)
class OntologyStatistics:
    """A structural summary of one ontology."""

    name: str
    language: str
    concept_count: int
    attribute_count: int
    method_count: int
    relationship_count: int
    instance_count: int
    root_count: int
    leaf_count: int
    max_depth: int
    average_depth: float
    average_branching: float
    multiple_inheritance_count: int

    def as_row(self) -> list[str]:
        """The summary as table cells, for browser/CLI rendering."""
        return [self.name, self.language, str(self.concept_count),
                str(self.attribute_count), str(self.method_count),
                str(self.relationship_count), str(self.instance_count),
                str(self.root_count), str(self.leaf_count),
                str(self.max_depth), f"{self.average_depth:.2f}",
                f"{self.average_branching:.2f}",
                str(self.multiple_inheritance_count)]

    @staticmethod
    def header() -> list[str]:
        """Column names matching :meth:`as_row`."""
        return ["ontology", "language", "concepts", "attributes",
                "methods", "relationships", "instances", "roots",
                "leaves", "depth", "avg depth", "avg branch",
                "multi-inherit"]


def ontology_statistics(ontology: Ontology) -> OntologyStatistics:
    """Compute the structural summary of ``ontology``."""
    from repro.soqa.graph import Taxonomy

    taxonomy = Taxonomy({concept.name: concept.superconcept_names
                         for concept in ontology})
    nodes = taxonomy.nodes()
    depths = [taxonomy.depth(node) for node in nodes]
    inner_nodes = [node for node in nodes if taxonomy.children(node)]
    branching = (sum(len(taxonomy.children(node)) for node in inner_nodes)
                 / len(inner_nodes)) if inner_nodes else 0.0
    return OntologyStatistics(
        name=ontology.name,
        language=ontology.language,
        concept_count=len(ontology),
        attribute_count=len(ontology.all_attributes()),
        method_count=len(ontology.all_methods()),
        relationship_count=len(ontology.all_relationships()),
        instance_count=len(ontology.all_instances()),
        root_count=len(taxonomy.roots()),
        leaf_count=len(taxonomy.leaves()),
        max_depth=taxonomy.max_depth(),
        average_depth=sum(depths) / len(depths) if depths else 0.0,
        average_branching=branching,
        multiple_inheritance_count=sum(
            1 for node in nodes if len(taxonomy.parents(node)) > 1),
    )


def corpus_statistics(soqa: SOQA) -> list[OntologyStatistics]:
    """Summaries for every loaded ontology, in load order."""
    return [ontology_statistics(soqa.ontology(name))
            for name in soqa.ontology_names()]
