"""Instance-level similarity services.

The paper's formal framework covers both resource kinds: "Resources may
be concepts (classes in OWL) of some type or individuals (instances) of
these concepts" (section 2.2).  This module applies the SimPack measure
families to instances:

* **feature view** (mapping M1): an instance's features are its
  attribute names, relationship names, relationship targets, and its
  concept — compared with the vector measures.
* **text view**: the instance's name, attribute values and
  documentation form a document — compared with TFIDF over the instance
  corpus.
* **concept view**: two instances are as similar as the concepts they
  instantiate, under any registered concept measure — lifting the whole
  measure library to instances.

:class:`InstanceSimilarityService` wraps an SST facade and mirrors its
service shapes (pairwise similarity, k most similar).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.facade import SOQASimPackToolkit
from repro.core.registry import Measure
from repro.errors import SSTCoreError, UnknownConceptError
from repro.simpack.base import feature_sets_to_vectors
from repro.simpack.text.index import InvertedIndex
from repro.simpack.text.tfidf import TfidfVectorSpace
from repro.simpack.vector import extended_jaccard_similarity
from repro.soqa.metamodel import Instance

__all__ = ["InstanceSimilarityService", "QualifiedInstance"]


@dataclass(frozen=True, order=True)
class QualifiedInstance:
    """An instance qualified by its ontology name."""

    ontology_name: str
    instance_name: str

    def __str__(self) -> str:
        return f"{self.ontology_name}::{self.instance_name}"


@dataclass(frozen=True)
class InstanceAndSimilarity:
    """One entry of a k-most-similar-instances result."""

    instance_name: str
    ontology_name: str
    concept_name: str
    similarity: float

    def __str__(self) -> str:
        return (f"{self.ontology_name}::{self.instance_name} "
                f"({self.concept_name}) = {self.similarity:.4f}")


class InstanceSimilarityService:
    """Similarity between individuals, in all three resource views."""

    #: The instance-measure names this service accepts.
    MEASURES = ("features", "text", "concepts")

    def __init__(self, sst: SOQASimPackToolkit,
                 concept_measure: int | str | Measure =
                 Measure.CONCEPTUAL_SIMILARITY):
        self.sst = sst
        self.concept_measure = concept_measure
        self._instances: dict[QualifiedInstance, Instance] | None = None
        self._vector_space: TfidfVectorSpace | None = None

    # -- instance registry ------------------------------------------------------

    def _registry(self) -> dict[QualifiedInstance, Instance]:
        if self._instances is None:
            self._instances = {}
            for ontology in self.sst.soqa.ontologies():
                for instance in ontology.all_instances():
                    key = QualifiedInstance(ontology.name, instance.name)
                    self._instances[key] = instance
        return self._instances

    def all_instances(self) -> list[QualifiedInstance]:
        """Every loaded instance, qualified by ontology."""
        return list(self._registry())

    def instance(self, instance_name: str,
                 ontology_name: str) -> Instance:
        """The named instance; raises if unknown."""
        key = QualifiedInstance(ontology_name, instance_name)
        found = self._registry().get(key)
        if found is None:
            raise UnknownConceptError(instance_name, ontology_name)
        return found

    def refresh(self) -> None:
        """Drop caches after the ontology set changed."""
        self._instances = None
        self._vector_space = None

    # -- the three resource views --------------------------------------------------

    def feature_set(self, instance_name: str,
                    ontology_name: str) -> frozenset[str]:
        """Mapping M1 for individuals."""
        instance = self.instance(instance_name, ontology_name)
        features: set[str] = set(instance.attribute_values)
        features.add(instance.concept_name)
        for relation, targets in instance.relationship_targets.items():
            features.add(relation)
            features.update(targets)
        return frozenset(features)

    def document_text(self, instance_name: str,
                      ontology_name: str) -> str:
        """The instance's textual representation for the TFIDF view."""
        instance = self.instance(instance_name, ontology_name)
        parts = [instance.name, instance.concept_name,
                 instance.documentation]
        for attribute, value in instance.attribute_values.items():
            parts.extend([attribute, value])
        for relation, targets in instance.relationship_targets.items():
            parts.append(relation)
            parts.extend(targets)
        return " ".join(part for part in parts if part)

    def vector_space(self) -> TfidfVectorSpace:
        """A TFIDF vector space over all instances' documents."""
        if self._vector_space is None:
            index = InvertedIndex()
            for key in self._registry():
                index.add_document(
                    str(key),
                    self.document_text(key.instance_name,
                                       key.ontology_name))
            self._vector_space = TfidfVectorSpace(index)
        return self._vector_space

    # -- services ----------------------------------------------------------------------

    def get_similarity(self, first_instance: str, first_ontology: str,
                       second_instance: str, second_ontology: str,
                       measure: str = "features") -> float:
        """Similarity of two individuals under an instance measure."""
        if measure == "features":
            first_vector, second_vector = feature_sets_to_vectors(
                self.feature_set(first_instance, first_ontology),
                self.feature_set(second_instance, second_ontology))
            if (first_instance, first_ontology) == (second_instance,
                                                    second_ontology):
                return 1.0
            return extended_jaccard_similarity(first_vector, second_vector)
        if measure == "text":
            space = self.vector_space()
            first_key = QualifiedInstance(first_ontology, first_instance)
            second_key = QualifiedInstance(second_ontology,
                                           second_instance)
            self.instance(first_instance, first_ontology)
            self.instance(second_instance, second_ontology)
            return space.similarity(str(first_key), str(second_key))
        if measure == "concepts":
            first = self.instance(first_instance, first_ontology)
            second = self.instance(second_instance, second_ontology)
            return self.sst.get_similarity(
                first.concept_name, first_ontology,
                second.concept_name, second_ontology,
                self.concept_measure)
        raise SSTCoreError(
            f"unknown instance measure {measure!r}; expected one of "
            f"{', '.join(self.MEASURES)}")

    def get_most_similar_instances(self, instance_name: str,
                                   ontology_name: str, k: int = 10,
                                   measure: str = "features",
                                   ) -> list[InstanceAndSimilarity]:
        """The k most similar individuals across all ontologies."""
        anchor = QualifiedInstance(ontology_name, instance_name)
        self.instance(instance_name, ontology_name)
        scored = []
        for key, instance in self._registry().items():
            if key == anchor:
                continue
            scored.append(InstanceAndSimilarity(
                instance_name=key.instance_name,
                ontology_name=key.ontology_name,
                concept_name=instance.concept_name,
                similarity=self.get_similarity(
                    instance_name, ontology_name,
                    key.instance_name, key.ontology_name, measure)))
        scored.sort(key=lambda entry: (-entry.similarity,
                                       entry.ontology_name,
                                       entry.instance_name))
        return scored[:k]
