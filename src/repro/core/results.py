"""Result types of the SST facade services."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConceptAndSimilarity", "QualifiedConcept"]


@dataclass(frozen=True, order=True)
class QualifiedConcept:
    """A concept qualified by its ontology name.

    Concept names are generally not unique once several ontologies are
    incorporated into one tree (paper section 3), so every SST service
    identifies concepts this way.  The display form is the paper's
    ``ontology:Concept`` prefix notation.
    """

    ontology_name: str
    concept_name: str

    def __str__(self) -> str:
        return f"{self.ontology_name}:{self.concept_name}"


@dataclass(frozen=True)
class ConceptAndSimilarity:
    """One entry of a k-most-similar/-dissimilar result set.

    Mirrors the paper's ``ConceptAndSimilarity`` instances: the concept
    name, the name of its ontology, and the similarity value.
    """

    concept_name: str
    ontology_name: str
    similarity: float

    @property
    def qualified(self) -> QualifiedConcept:
        """The entry's concept as a :class:`QualifiedConcept`."""
        return QualifiedConcept(self.ontology_name, self.concept_name)

    def __str__(self) -> str:
        return f"{self.qualified} = {self.similarity:.4f}"
