"""Service lifecycle: the health state machine behind ``sst serve``.

The ROADMAP's heavy-traffic posture means the service gets *rolled*:
orchestrators send SIGTERM, health-check two different questions
("is the process alive?" vs "should I route traffic here?"), and
expect a draining instance to finish what it accepted.  A binary
up/down flag cannot express that — the ontology-in-the-control-loop
literature (Pessemier et al., PAPERS.md) makes the same point for
observatory software: embedded services need *defined* degraded and
draining states, not a crash.

:class:`ServiceLifecycle` is that definition — a thread-safe state
machine over five states::

    STARTING ──▶ READY ◀──▶ DEGRADED
        │          │            │
        └──────────┴─────┬──────┘
                         ▼
                     DRAINING ──▶ STOPPED

* ``STARTING``  — corpus loading / warm-up; readiness is *false*.
* ``READY``     — serving; the only state advertising readiness.
* ``DEGRADED``  — alive and serving, but saturated (admission control
  is shedding); readiness flips *false* so load balancers back off
  while in-flight work still completes.  Recoverable back to READY.
* ``DRAINING``  — shutdown requested: stop accepting, refuse new work
  with 503 + ``Retry-After``, let admitted work finish.
* ``STOPPED``   — terminal.

Transitions are validated (:class:`~repro.errors.LifecycleError` on
anything not drawn above), idempotent when re-entering the current
state, counted as ``server.lifecycle.transitions``, and mirrored into
the ``server.ready`` / ``server.draining`` gauges so ``/metrics``
always shows the current state.  ``on_transition`` listeners let the
server close its listening socket the moment DRAINING is entered.

:func:`install_signal_drain` wires SIGTERM/SIGINT to a drain callback
on an asyncio loop — via ``loop.add_signal_handler`` where the
platform supports it, falling back to :mod:`signal` only on the main
thread (anywhere else the registration would raise ``ValueError`` at
runtime; embedded servers rely on explicit ``request_drain()``
instead).
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Callable

from repro.core import telemetry
from repro.errors import LifecycleError

__all__ = [
    "DEGRADED",
    "DRAINING",
    "READY",
    "STARTING",
    "STOPPED",
    "ServiceLifecycle",
    "install_signal_drain",
]

STARTING = "starting"
READY = "ready"
DEGRADED = "degraded"
DRAINING = "draining"
STOPPED = "stopped"

#: Every legal edge of the state machine.  Re-entering the current
#: state is always a no-op (not listed, never an error).
_TRANSITIONS: dict[str, frozenset[str]] = {
    STARTING: frozenset({READY, DEGRADED, DRAINING, STOPPED}),
    READY: frozenset({DEGRADED, DRAINING, STOPPED}),
    DEGRADED: frozenset({READY, DRAINING, STOPPED}),
    DRAINING: frozenset({STOPPED}),
    STOPPED: frozenset(),
}


class ServiceLifecycle:
    """Thread-safe five-state service health machine.

    One instance per served process.  Writers call the explicit
    transition helpers (:meth:`mark_ready`, :meth:`degrade`,
    :meth:`restore`, :meth:`begin_drain`, :meth:`mark_stopped`);
    readers ask :meth:`is_ready` (readiness: route traffic here?) and
    :meth:`accepts_work` (liveness of admission: may a request enter
    at all?).  Listeners registered with :meth:`on_transition` run
    outside the lock, in registration order, and exceptions they raise
    are swallowed — a misbehaving listener must not wedge a state
    change mid-drain.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STARTING
        self._entered_at = clock()
        self._reason = ""
        self._listeners: list[Callable[[str, str], None]] = []

    # -- inspection ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def reason(self) -> str:
        """Why the current state was entered (e.g. the degrade cause)."""
        with self._lock:
            return self._reason

    def seconds_in_state(self) -> float:
        with self._lock:
            return max(0.0, self._clock() - self._entered_at)

    def is_ready(self) -> bool:
        """Readiness: should a load balancer route new traffic here?"""
        with self._lock:
            return self._state == READY

    def accepts_work(self) -> bool:
        """Admission liveness: may a new request enter at all?

        DEGRADED still accepts (admission control decides per-request
        whether to shed); DRAINING and STOPPED refuse everything.
        """
        with self._lock:
            return self._state in (READY, DEGRADED)

    def snapshot(self) -> dict:
        """State, reason and dwell time in one consistent read."""
        with self._lock:
            return {
                "state": self._state,
                "reason": self._reason,
                "seconds_in_state": max(0.0,
                                        self._clock() - self._entered_at),
            }

    # -- transitions --------------------------------------------------------

    def on_transition(self,
                      listener: Callable[[str, str], None]) -> None:
        """Register ``listener(old_state, new_state)``."""
        with self._lock:
            self._listeners.append(listener)

    def _transition(self, target: str, reason: str = "") -> bool:
        """Move to ``target``; False when already there, raises on an
        illegal edge."""
        with self._lock:
            current = self._state
            if current == target:
                return False
            if target not in _TRANSITIONS[current]:
                raise LifecycleError(current, target)
            self._state = target
            self._entered_at = self._clock()
            self._reason = reason
            listeners = list(self._listeners)
        telemetry.count("server.lifecycle.transitions")
        telemetry.count(f"server.lifecycle.to_{target}")
        telemetry.gauge("server.ready", 1.0 if target == READY else 0.0)
        telemetry.gauge("server.draining",
                        1.0 if target == DRAINING else 0.0)
        for listener in listeners:
            try:
                listener(current, target)
            except Exception:  # sst: disable=swallowed-exception
                # A listener failure must not abort the state change —
                # especially not the DRAINING edge a signal handler
                # just requested.
                telemetry.count("server.lifecycle.listener_errors")
        return True

    def mark_ready(self) -> bool:
        """STARTING/DEGRADED → READY (warm-up done, or load receded)."""
        return self._transition(READY)

    def degrade(self, reason: str = "saturated") -> bool:
        """READY → DEGRADED: still serving, but shedding; not ready."""
        with self._lock:
            if self._state != READY:
                # Never *enter* degradation while draining or stopped,
                # and don't churn listeners when already degraded.
                return False
        return self._transition(DEGRADED, reason)

    def restore(self) -> bool:
        """DEGRADED → READY once saturation clears."""
        with self._lock:
            if self._state != DEGRADED:
                return False
        return self._transition(READY)

    def begin_drain(self, reason: str = "shutdown requested") -> bool:
        """Any live state → DRAINING.  True only for the first caller,
        so double signals don't restart the drain clock."""
        with self._lock:
            if self._state in (DRAINING, STOPPED):
                return False
        changed = self._transition(DRAINING, reason)
        if changed:
            telemetry.count("server.drain.started")
        return changed

    def mark_stopped(self) -> bool:
        """Terminal: the loop has exited."""
        with self._lock:
            if self._state == STOPPED:
                return False
        return self._transition(STOPPED)


def install_signal_drain(loop, callback: Callable[[], None],
                         signals: tuple = (signal.SIGTERM,
                                           signal.SIGINT)) -> list:
    """Route ``signals`` to ``callback`` for a served asyncio ``loop``.

    Prefers ``loop.add_signal_handler`` (Unix event loops): the
    callback runs *on the loop*, so it may touch asyncio state
    directly.  Where that is unsupported (Windows, uncommon loops) it
    falls back to :func:`signal.signal` — but only on the main thread,
    because CPython rejects handler registration anywhere else; a
    background-thread server simply keeps its explicit
    ``request_drain()`` path.  Returns the signal numbers actually
    installed so callers can report (and tests can assert) coverage.
    """
    installed: list = []
    for signum in signals:
        try:
            loop.add_signal_handler(signum, callback)
            installed.append(signum)
            continue
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        if threading.current_thread() is threading.main_thread():
            signal.signal(signum, lambda _signum, _frame: callback())
            installed.append(signum)
    return installed
